"""Setup shim.

Kept so that editable installs work in offline environments whose
setuptools lacks the ``wheel`` package required by PEP 660 editable
wheels; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
