"""Cross-engine agreement: the paper's Section 5.4 observation.

"The three computational procedures converge to the same value" -- we
check this on the canonical fixtures, on the case study, and on random
MRMs, with tolerances reflecting each engine's accuracy knob.
"""

import numpy as np
import pytest

from repro.algorithms import (DiscretizationEngine, ErlangEngine,
                              SericolaEngine)
from repro.models.workloads import random_mrm


def integerised(model):
    """Random models have integer reward levels already."""
    return model


class TestFixtures:
    def test_two_state(self, two_state_absorbing):
        t, r = 3.0, 1.2
        reference = SericolaEngine(epsilon=1e-12).joint_probability_vector(
            two_state_absorbing, t, r, [1])
        erlang = ErlangEngine(phases=1024).joint_probability_vector(
            two_state_absorbing, t, r, [1])
        assert np.allclose(erlang, reference, atol=2e-4)
        discretization = DiscretizationEngine(step=0.0125) \
            .joint_probability_vector(two_state_absorbing, t, r, [1])
        assert np.allclose(discretization, reference, atol=5e-3)

    def test_three_levels(self, three_level_chain):
        t, r = 2.0, 3.0
        reference = SericolaEngine(epsilon=1e-12).joint_probability_vector(
            three_level_chain, t, r, [2])
        erlang = ErlangEngine(phases=1024).joint_probability_vector(
            three_level_chain, t, r, [2])
        assert np.allclose(erlang, reference, atol=3e-4)
        discretization = DiscretizationEngine(step=0.0125) \
            .joint_probability_vector(three_level_chain, t, r, [2])
        assert np.allclose(discretization, reference, atol=6e-3)

    def test_case_study(self, adhoc_reduced):
        model = adhoc_reduced.model
        goal = adhoc_reduced.goal_state
        t, r = 24.0, 600.0
        init = int(np.argmax(model.initial_distribution))
        reference = SericolaEngine(epsilon=1e-10).joint_probability_vector(
            model, t, r, [goal])[init]
        erlang = ErlangEngine(phases=512).joint_probability_vector(
            model, t, r, [goal])[init]
        assert erlang == pytest.approx(reference, abs=2e-4)
        indicator = np.zeros(model.num_states)
        indicator[goal] = 1.0
        discretization = DiscretizationEngine(step=1.0 / 64) \
            .joint_probability_from(model, t, r, indicator, init)
        assert discretization == pytest.approx(reference, abs=2e-4)


class TestRandomModels:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_sericola_vs_erlang(self, seed):
        model = random_mrm(5, seed=seed, reward_levels=(0.0, 1.0, 3.0))
        t = 1.5
        r = 0.8 * t * model.max_reward
        target = [0, 2]
        reference = SericolaEngine(epsilon=1e-11) \
            .joint_probability_vector(model, t, r, target)
        erlang = ErlangEngine(phases=2048).joint_probability_vector(
            model, t, r, target)
        assert np.allclose(erlang, reference, atol=5e-4)

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_sericola_vs_discretization(self, seed):
        model = random_mrm(4, seed=seed, reward_levels=(0.0, 1.0, 2.0),
                           max_rate=2.0)
        t = 2.0
        r = 0.5 * t * model.max_reward
        target = [1, 3]
        reference = SericolaEngine(epsilon=1e-11) \
            .joint_probability_vector(model, t, r, target)
        indicator = np.zeros(model.num_states)
        indicator[target] = 1.0
        engine = DiscretizationEngine(step=1.0 / 256)
        for s in range(model.num_states):
            value = engine.joint_probability_from(model, t, r,
                                                  indicator, s)
            assert value == pytest.approx(reference[s], abs=8e-3)

    @pytest.mark.parametrize("seed", [8, 9])
    def test_r_large_reduces_to_transient(self, seed):
        from repro.numerics.uniformization import \
            transient_target_probabilities
        model = random_mrm(6, seed=seed)
        t = 1.0
        r = model.max_reward * t * 1.01
        indicator = np.zeros(model.num_states)
        indicator[[0, 3]] = 1.0
        joint = SericolaEngine(epsilon=1e-12).joint_probability_vector(
            model, t, r, [0, 3])
        transient = transient_target_probabilities(model, t, indicator,
                                                   epsilon=1e-13)
        assert np.allclose(joint, transient, atol=1e-9)


class TestMonotonicity:
    def test_joint_monotone_in_r(self, three_level_chain):
        engine = SericolaEngine(epsilon=1e-11)
        t = 2.0
        values = [engine.joint_probability_vector(
            three_level_chain, t, r, [0, 1, 2]) for r in
            np.linspace(0.0, three_level_chain.max_reward * t, 9)]
        for lower, higher in zip(values, values[1:]):
            assert np.all(higher >= lower - 1e-9)

    def test_joint_bounded_by_transient(self, three_level_chain):
        from repro.numerics.uniformization import \
            transient_target_probabilities
        engine = SericolaEngine(epsilon=1e-11)
        t, r = 2.0, 2.5
        indicator = np.array([0.0, 1.0, 1.0])
        joint = engine.joint_probability_vector(three_level_chain, t, r,
                                                [1, 2])
        transient = transient_target_probabilities(
            three_level_chain, t, indicator, epsilon=1e-13)
        assert np.all(joint <= transient + 1e-9)
