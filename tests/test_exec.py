"""Unit tests of the fault-tolerant execution layer (:mod:`repro.exec`).

Covers the policy pieces in isolation (retry backoff, circuit breaker,
fault plans, checkpoint files, error pickling) plus the executor
contracts: thread/process result equality, checkpoint resume, and the
engine ``spec()`` transport round-trip.  The chaos scenarios (injected
crashes, hangs, kills) live in ``test_exec_chaos.py``.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.algorithms.base import PartialSweep, get_engine
from repro.algorithms.cache import clear_caches
from repro.errors import (CheckpointError, NumericalError,
                          ParallelExecutionError, RemoteTaskError,
                          WorkerCrashError, WorkerError)
from repro.exec import (BREAKERS, BreakerRegistry, CircuitBreaker,
                        FaultPlan, ProcessShardExecutor, RetryPolicy,
                        SweepCheckpoint, ThreadShardExecutor,
                        breaker_key, resolve_executor)
from repro.mc.certified import EngineFailure


@pytest.fixture(autouse=True)
def _clean_slate():
    clear_caches()
    BREAKERS.reset()
    yield
    clear_caches()
    BREAKERS.reset()


# ----------------------------------------------------------------------
# error transport: everything the process boundary ships must pickle
# ----------------------------------------------------------------------

class TestErrorPickling:

    def _round_trip(self, obj):
        return pickle.loads(pickle.dumps(obj))

    def test_worker_error(self):
        err = WorkerError(7, NumericalError("boom"), "cell (t=1, r=2)")
        back = self._round_trip(err)
        assert back.index == 7
        assert back.label == "cell (t=1, r=2)"
        assert isinstance(back.cause, NumericalError)
        assert str(back) == str(err)

    def test_worker_error_without_label(self):
        back = self._round_trip(WorkerError(0, ValueError("x")))
        assert back.index == 0 and back.label is None

    def test_parallel_execution_error(self):
        failures = [WorkerError(1, NumericalError("a"), "one"),
                    WorkerError(3, NumericalError("b"), "two")]
        err = ParallelExecutionError(failures, total=8)
        back = self._round_trip(err)
        assert back.total == 8
        assert [f.index for f in back.failures] == [1, 3]
        assert str(back) == str(err)

    def test_worker_crash_error(self):
        back = self._round_trip(WorkerCrashError("hang", 3, -9))
        assert (back.reason, back.worker_id, back.exitcode) == \
            ("hang", 3, -9)

    def test_remote_task_error(self):
        err = RemoteTaskError("ValueError", "negative rate",
                              "Traceback ...")
        back = self._round_trip(err)
        assert back.exc_type == "ValueError"
        assert back.traceback_text == "Traceback ..."

    def test_engine_failure(self):
        failure = EngineFailure("sericola", "breaker open",
                                skipped_breaker=True)
        back = self._round_trip(failure)
        assert back == failure
        assert "skipped (breaker)" in str(back)

    def test_partial_sweep(self):
        grid = np.full((1, 2, 3), np.nan)
        grid[0, 0] = [0.1, 0.2, 0.3]
        completed = np.array([[True, False]])
        failure = WorkerError(1, WorkerCrashError("crash", 0, 13),
                              "cell (t=1.0, r=2.0)")
        partial = PartialSweep(grid=grid, completed=completed,
                               unevaluated=((0, 1),),
                               failures=(failure,))
        back = self._round_trip(partial)
        assert not back.complete
        assert back.unevaluated == ((0, 1),)
        np.testing.assert_array_equal(back.completed, completed)
        assert isinstance(back.failures[0].cause, WorkerCrashError)


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------

class TestRetryPolicy:

    def test_delays_are_deterministic(self):
        a = RetryPolicy(seed=42)
        b = RetryPolicy(seed=42)
        assert [a.delay(5, k) for k in range(1, 5)] == \
            [b.delay(5, k) for k in range(1, 5)]

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.4, jitter=0.0)
        assert policy.delay("cell", 1) == pytest.approx(0.1)
        assert policy.delay("cell", 2) == pytest.approx(0.2)
        assert policy.delay("cell", 3) == pytest.approx(0.4)
        assert policy.delay("cell", 9) == pytest.approx(0.4)  # capped

    def test_jitter_bounded_and_key_dependent(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.5)
        delays = {policy.delay(key, 1) for key in range(20)}
        assert len(delays) > 1  # jitter actually varies by key
        assert all(1.0 <= d <= 1.5 for d in delays)

    def test_gives_up(self):
        policy = RetryPolicy(max_retries=2)
        assert not policy.gives_up(1)
        assert not policy.gives_up(2)
        assert policy.gives_up(3)

    def test_zero_attempt_has_no_delay(self):
        assert RetryPolicy().delay("k", 0) == 0.0

    def test_validation(self):
        with pytest.raises(NumericalError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(NumericalError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(NumericalError):
            RetryPolicy(base_delay=-0.1)


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------

class TestCircuitBreaker:

    def test_opens_after_threshold(self):
        breaker = CircuitBreaker("eng/np", failure_threshold=3,
                                 cooldown=60.0)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker("eng/np", failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_one_probe(self):
        breaker = CircuitBreaker("eng/np", failure_threshold=1,
                                 cooldown=0.0)
        breaker.record_failure()
        assert breaker.state == "half-open"  # cooldown already over
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # second caller still vetoed
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker("eng/np", failure_threshold=1,
                                 cooldown=1000.0)
        breaker.record_failure()
        breaker._opened_at -= 2000.0  # age past the cooldown
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_threshold_validation(self):
        with pytest.raises(NumericalError):
            CircuitBreaker("k", failure_threshold=0)


class TestBreakerRegistry:

    def test_breaker_is_created_once(self):
        registry = BreakerRegistry()
        assert registry.breaker("a") is registry.breaker("a")
        assert registry.breaker("a") is not registry.breaker("b")

    def test_get_never_creates(self):
        registry = BreakerRegistry()
        assert registry.get("missing") is None
        registry.breaker("present")
        assert registry.get("present") is not None

    def test_is_open_and_reset(self):
        registry = BreakerRegistry(failure_threshold=1, cooldown=60.0)
        assert not registry.is_open("k")  # no breaker -> not open
        registry.breaker("k").record_failure()
        assert registry.is_open("k")
        registry.reset()
        assert registry.get("k") is None


def test_breaker_key_includes_engine_and_kernel():
    assert breaker_key(get_engine("sericola")) == "sericola/auto"
    pinned = get_engine("sericola", kernel="numpy")
    assert breaker_key(pinned) == "sericola/numpy"


# ----------------------------------------------------------------------
# fault plans
# ----------------------------------------------------------------------

class TestFaultPlan:

    def test_empty_spec_is_inactive(self):
        plan = FaultPlan.parse(None)
        assert not plan.active
        assert plan.fault_for(0, 0) is None

    def test_rate_selection_is_deterministic(self):
        plan = FaultPlan.parse("rate=0.5;seed=11;kinds=crash,hang")
        again = FaultPlan.parse("rate=0.5;seed=11;kinds=crash,hang")
        assert plan.faulted_cells(64) == again.faulted_cells(64)
        kinds = set(plan.faulted_cells(64).values())
        assert kinds <= {"crash", "hang"}

    def test_rate_roughly_respected(self):
        plan = FaultPlan.parse("rate=0.25;seed=0")
        n = 400
        count = len(plan.faulted_cells(n))
        assert 0.15 * n <= count <= 0.35 * n

    def test_explicit_cells_override(self):
        plan = FaultPlan.parse("crash@3,7;hang@5")
        assert plan.fault_for(3, 0) == "crash"
        assert plan.fault_for(7, 0) == "crash"
        assert plan.fault_for(5, 0) == "hang"
        assert plan.fault_for(4, 0) is None

    def test_attempts_gate(self):
        plan = FaultPlan.parse("crash@0;attempts=2")
        assert plan.fault_for(0, 0) == "crash"
        assert plan.fault_for(0, 1) == "crash"
        assert plan.fault_for(0, 2) is None  # third attempt succeeds

    def test_sleep_only_plan_is_active_but_faultless(self):
        plan = FaultPlan.parse("sleep=0.5")
        assert plan.active and plan.sleep == 0.5
        assert plan.fault_for(0, 0) is None

    def test_parse_errors(self):
        with pytest.raises(NumericalError):
            FaultPlan.parse("rate=2.0")
        with pytest.raises(NumericalError):
            FaultPlan.parse("kinds=meteor")
        with pytest.raises(NumericalError):
            FaultPlan.parse("meteor@3")
        with pytest.raises(NumericalError):
            FaultPlan.parse("crash@x")
        with pytest.raises(NumericalError):
            FaultPlan.parse("bogus")
        with pytest.raises(NumericalError):
            FaultPlan.parse("rate=abc")

    def test_from_env(self):
        plan = FaultPlan.from_env({"REPRO_FAULTS": "rate=0.1;seed=3"})
        assert plan.rate == 0.1 and plan.seed == 3
        assert not FaultPlan.from_env({}).active


# ----------------------------------------------------------------------
# checkpoint files
# ----------------------------------------------------------------------

class TestSweepCheckpoint:

    def _open(self, path, fingerprint="fp", token=("eng", 1e-9),
              times=(1.0, 2.0), rewards=(0.5,), n=3):
        indicator = np.zeros(n)
        indicator[-1] = 1.0
        return SweepCheckpoint.open(str(path), fingerprint, token,
                                    list(times), list(rewards),
                                    indicator)

    def test_round_trip_is_bit_identical(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        vector = np.array([0.1, 1.0 / 3.0, np.pi * 1e-7])
        with self._open(path) as cp:
            cp.append((0, 0), vector)
        with self._open(path) as cp:
            assert (0, 0) in cp and len(cp) == 1
            grid = np.full((2, 1, 3), np.nan)
            completed = np.zeros((2, 1), dtype=bool)
            assert cp.load_into(grid, completed) == [(0, 0)]
            assert grid[0, 0].tobytes() == vector.tobytes()
            assert completed[0, 0] and not completed[1, 0]

    def test_append_deduplicates(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with self._open(path) as cp:
            cp.append((0, 0), np.zeros(3))
            cp.append((0, 0), np.ones(3))
        rows = path.read_text().strip().splitlines()
        assert len(rows) == 2  # header + one cell

    def test_identity_mismatch_raises(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        self._open(path).close()
        with pytest.raises(CheckpointError, match="fingerprint"):
            self._open(path, fingerprint="other")
        with pytest.raises(CheckpointError, match="engine"):
            self._open(path, token=("eng", 1e-3))
        with pytest.raises(CheckpointError, match="times"):
            self._open(path, times=(1.0, 3.0))

    def test_non_checkpoint_file_raises(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(CheckpointError):
            self._open(path)

    def test_corrupt_and_truncated_rows_are_skipped(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with self._open(path) as cp:
            cp.append((0, 0), np.array([1.0, 2.0, 3.0]))
            cp.append((1, 0), np.array([4.0, 5.0, 6.0]))
        lines = path.read_text().splitlines()
        # Flip a character of the first cell's payload and truncate the
        # second mid-write, as a crash would.
        lines[1] = lines[1].replace('"data": "', '"data": "A', 1)
        lines[2] = lines[2][:len(lines[2]) // 2]
        path.write_text("\n".join(lines) + "\n")
        with self._open(path) as cp:
            assert len(cp) == 0  # both rows rejected, cells recompute

    def test_out_of_range_cells_are_skipped(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with self._open(path) as cp:
            cp.append((1, 0), np.zeros(3))
        # Same identity except a shorter time axis: row (1, 0) is now
        # out of range -> identity mismatch is detected first, so craft
        # the row into an otherwise matching file instead.
        data_row = path.read_text().splitlines()[1]
        path2 = tmp_path / "other.jsonl"
        self._open(path2).close()
        with open(path2, "a", encoding="utf-8") as handle:
            row = data_row.replace('"cell": [1, 0]', '"cell": [9, 0]')
            handle.write(row + "\n")
        with self._open(path2) as cp:
            assert len(cp) == 0


# ----------------------------------------------------------------------
# engine spec transport
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", ["sericola", "erlang",
                                  "discretization"])
def test_engine_spec_round_trip(name):
    """``spec()`` must rebuild an engine with the same cache identity
    -- that is what makes worker-computed cells valid cache entries."""
    engine = get_engine(name)
    spec = engine.spec()
    assert spec["engine"] == name
    rebuilt = get_engine(spec["engine"], **spec["options"])
    assert rebuilt._cache_token() == engine._cache_token()


def test_spec_survives_pickle():
    spec = get_engine("sericola", kernel="numpy").spec()
    back = pickle.loads(pickle.dumps(spec))
    assert back == spec


# ----------------------------------------------------------------------
# executor resolution and the thread/process contract
# ----------------------------------------------------------------------

class TestResolveExecutor:

    def test_none_and_thread(self):
        assert isinstance(resolve_executor(None), ThreadShardExecutor)
        resolved = resolve_executor("thread", max_workers=2)
        assert isinstance(resolved, ThreadShardExecutor)
        assert resolved.max_workers == 2

    def test_process(self):
        resolved = resolve_executor("process", max_workers=2)
        assert isinstance(resolved, ProcessShardExecutor)
        assert resolved.max_workers == 2

    def test_instance_passes_through(self):
        executor = ThreadShardExecutor(max_workers=1)
        assert resolve_executor(executor) is executor

    def test_unknown_name_raises(self):
        with pytest.raises(NumericalError, match="unknown executor"):
            resolve_executor("carrier-pigeon")


class TestProcessExecutor:

    TIMES = [0.5, 1.0, 2.0]
    REWARDS = [0.4, 1.2]

    def _reference(self, model):
        engine = get_engine("sericola")
        partial = engine.joint_probability_sweep_partial(
            model, self.TIMES, self.REWARDS, {1})
        assert partial.complete
        return partial.grid

    def test_bit_identical_to_thread_path(self, flip_flop):
        reference = self._reference(flip_flop)
        clear_caches()
        engine = get_engine("sericola")
        partial = engine.joint_probability_sweep_partial(
            flip_flop, self.TIMES, self.REWARDS, {1},
            executor="process")
        assert partial.complete
        assert partial.grid.tobytes() == reference.tobytes()

    def test_results_populate_the_shared_cache(self, flip_flop):
        engine = get_engine("sericola")
        engine.joint_probability_sweep_partial(
            flip_flop, self.TIMES, self.REWARDS, {1},
            executor="process")
        before = engine.stats.as_dict()
        vector = engine.joint_probability_vector(
            flip_flop, self.TIMES[0], self.REWARDS[0], {1})
        assert vector is not None
        assert engine.stats.cache_hits == before["cache_hits"] + 1

    def test_checkpoint_resume_skips_computation(self, flip_flop,
                                                 tmp_path):
        path = str(tmp_path / "cp.jsonl")
        engine = get_engine("sericola")
        first = engine.joint_probability_sweep_partial(
            flip_flop, self.TIMES, self.REWARDS, {1},
            executor="process", checkpoint=path)
        assert first.complete
        clear_caches()
        executor = ProcessShardExecutor()
        second = engine.joint_probability_sweep_partial(
            flip_flop, self.TIMES, self.REWARDS, {1},
            executor=executor, checkpoint=path)
        assert second.complete
        assert second.grid.tobytes() == first.grid.tobytes()
        assert executor.restarts == 0 and executor.retries == 0

    def test_thread_path_checkpoint(self, flip_flop, tmp_path):
        path = str(tmp_path / "cp.jsonl")
        engine = get_engine("sericola")
        first = engine.joint_probability_sweep_partial(
            flip_flop, self.TIMES, self.REWARDS, {1}, checkpoint=path)
        assert first.complete
        clear_caches()
        second = engine.joint_probability_sweep_partial(
            flip_flop, self.TIMES, self.REWARDS, {1}, checkpoint=path)
        assert second.complete
        assert second.grid.tobytes() == first.grid.tobytes()

    def test_closed_executor_refuses_work(self, flip_flop):
        executor = ProcessShardExecutor()
        executor.close()
        engine = get_engine("sericola")
        with pytest.raises(NumericalError, match="closed"):
            engine.joint_probability_sweep_partial(
                flip_flop, self.TIMES, self.REWARDS, {1},
                executor=executor)

    def test_open_breaker_vetoes_the_run(self, flip_flop):
        engine = get_engine("sericola")
        breaker = BREAKERS.breaker(breaker_key(engine))
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        partial = engine.joint_probability_sweep_partial(
            flip_flop, self.TIMES, self.REWARDS, {1},
            executor="process")
        assert not partial.complete
        assert len(partial.unevaluated) == \
            len(self.TIMES) * len(self.REWARDS)


def test_checker_sweep_executor_pass_through(flip_flop):
    """The mc layer reaches the executor: grids agree bit for bit."""
    from repro.mc.checker import ModelChecker
    checker = ModelChecker(flip_flop)
    reference = checker.until_probability_sweep(
        "up", "down", [0.5, 1.0], [0.3, 0.9])
    clear_caches()
    via_process = checker.until_probability_sweep(
        "up", "down", [0.5, 1.0], [0.3, 0.9], executor="process")
    assert via_process.tobytes() == reference.tobytes()
