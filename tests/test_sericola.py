"""Unit tests for the occupation-time (Sericola) engine.

The two-state fixture has closed forms for every entry of H(t, r),
which pins the recursion exactly; larger models are cross-checked in
test_engines_agree.py.
"""

import numpy as np
import pytest

from repro.algorithms.sericola import SericolaEngine
from repro.ctmc import MarkovRewardModel, ModelBuilder
from repro.errors import NumericalError
from repro.numerics.uniformization import transient_target_probabilities

MU = 0.7


class TestClosedForms:
    @pytest.mark.parametrize("t,r", [(3.0, 1.2), (1.0, 0.5), (10.0, 9.0),
                                     (5.0, 0.25)])
    def test_complementary_into_absorbing(self, two_state_absorbing, t, r):
        engine = SericolaEngine(epsilon=1e-12)
        computed = engine.complementary_vector(
            two_state_absorbing, t, r, np.array([0.0, 1.0]))[0]
        assert computed == pytest.approx(
            np.exp(-MU * r) - np.exp(-MU * t), abs=1e-10)

    @pytest.mark.parametrize("t,r", [(3.0, 1.2), (2.0, 1.999)])
    def test_complementary_staying(self, two_state_absorbing, t, r):
        engine = SericolaEngine(epsilon=1e-12)
        computed = engine.complementary_vector(
            two_state_absorbing, t, r, np.array([1.0, 0.0]))[0]
        assert computed == pytest.approx(np.exp(-MU * t), abs=1e-10)

    def test_joint_probability(self, two_state_absorbing):
        engine = SericolaEngine(epsilon=1e-12)
        t, r = 3.0, 1.2
        joint = engine.joint_probability_vector(
            two_state_absorbing, t, r, [1])
        # From a: absorbed with Y <= r  iff  T <= r.
        assert joint[0] == pytest.approx(1.0 - np.exp(-MU * r), abs=1e-10)
        # From the absorbing zero-reward state itself: certain.
        assert joint[1] == pytest.approx(1.0, abs=1e-12)

    def test_all_initial_states_in_one_run(self, three_level_chain):
        engine = SericolaEngine(epsilon=1e-10)
        vector = engine.joint_probability_vector(
            three_level_chain, 2.0, 3.0, [2])
        assert vector.shape == (3,)
        assert np.all((0.0 <= vector) & (vector <= 1.0))


class TestBoundaryCases:
    def test_time_zero(self, three_level_chain):
        engine = SericolaEngine()
        joint = engine.joint_probability_vector(
            three_level_chain, 0.0, 0.0, [0])
        # Y_0 = 0 <= 0 and X_0 = initial state.
        assert np.allclose(joint, [1.0, 0.0, 0.0])

    def test_reward_bound_above_max(self, three_level_chain):
        engine = SericolaEngine(epsilon=1e-12)
        t = 1.5
        r = three_level_chain.max_reward * t + 1.0
        joint = engine.joint_probability_vector(
            three_level_chain, t, r, [2])
        transient = transient_target_probabilities(
            three_level_chain, t, np.array([0.0, 0.0, 1.0]),
            epsilon=1e-13)
        assert np.allclose(joint, transient, atol=1e-9)

    def test_reward_bound_below_min(self):
        # All rewards strictly positive: Y_t >= rho_min * t > r.
        builder = ModelBuilder()
        builder.add_state("x", reward=2.0)
        builder.add_state("y", reward=1.0)
        builder.add_transition("x", "y", 1.0)
        builder.add_transition("y", "x", 1.0)
        model = builder.build()
        engine = SericolaEngine(epsilon=1e-12)
        joint = engine.joint_probability_vector(model, 4.0, 1.0, [0, 1])
        assert np.allclose(joint, 0.0, atol=1e-12)

    def test_uniform_rewards(self):
        # One reward level: Y_t = rho * t deterministically.
        builder = ModelBuilder()
        builder.add_state("x", reward=2.0)
        builder.add_state("y", reward=2.0)
        builder.add_transition("x", "y", 1.0)
        builder.add_transition("y", "x", 1.0)
        model = builder.build()
        engine = SericolaEngine(epsilon=1e-12)
        below = engine.joint_probability_vector(model, 3.0, 5.9, [0, 1])
        above = engine.joint_probability_vector(model, 3.0, 6.0, [0, 1])
        assert np.allclose(below, 0.0, atol=1e-12)
        assert np.allclose(above, 1.0, atol=1e-9)

    def test_no_transitions(self):
        model = MarkovRewardModel(np.zeros((2, 2)), rewards=[3.0, 0.0])
        engine = SericolaEngine()
        joint = engine.joint_probability_vector(model, 2.0, 5.0, [0, 1])
        # State 0 accumulates 6 > 5; state 1 accumulates 0 <= 5.
        assert np.allclose(joint, [0.0, 1.0])

    def test_zero_reward_bound(self, two_state_absorbing):
        engine = SericolaEngine(epsilon=1e-12)
        joint = engine.joint_probability_vector(
            two_state_absorbing, 5.0, 0.0, [1])
        # Y_t > 0 almost surely from the reward-1 state.
        assert joint[0] == pytest.approx(0.0, abs=1e-9)
        assert joint[1] == pytest.approx(1.0, abs=1e-9)


class TestInterface:
    def test_invalid_epsilon(self):
        with pytest.raises(NumericalError):
            SericolaEngine(epsilon=0.0)
        with pytest.raises(NumericalError):
            SericolaEngine(epsilon=1.5)

    def test_invalid_times(self, two_state_absorbing):
        engine = SericolaEngine()
        with pytest.raises(NumericalError):
            engine.joint_probability_vector(two_state_absorbing,
                                            -1.0, 1.0, [0])
        with pytest.raises(NumericalError):
            engine.joint_probability_vector(two_state_absorbing,
                                            1.0, -1.0, [0])

    def test_invalid_target(self, two_state_absorbing):
        with pytest.raises(NumericalError):
            SericolaEngine().joint_probability_vector(
                two_state_absorbing, 1.0, 1.0, [5])

    def test_diagnostics_populated(self, three_level_chain):
        engine = SericolaEngine(epsilon=1e-6)
        engine.joint_probability_vector(three_level_chain, 2.0, 3.0, [2])
        diagnostics = engine.last_diagnostics
        assert diagnostics is not None
        assert diagnostics.truncation_steps > 0
        assert diagnostics.uniformization_rate == pytest.approx(
            three_level_chain.max_exit_rate)
        assert 1 <= diagnostics.level_index <= diagnostics.reward_levels
        assert 0.0 <= diagnostics.normalized_bound < 1.0

    def test_joint_probability_uses_initial_distribution(
            self, two_state_absorbing):
        engine = SericolaEngine(epsilon=1e-12)
        value = engine.joint_probability(two_state_absorbing, 3.0, 1.2,
                                         [1])
        assert value == pytest.approx(1.0 - np.exp(-MU * 1.2), abs=1e-10)


class TestMatrixVariant:
    def test_closed_form_matrix(self, two_state_absorbing):
        engine = SericolaEngine(epsilon=1e-12)
        t, r = 3.0, 1.2
        H = engine.joint_distribution_matrix(two_state_absorbing, t, r)
        assert H[0, 1] == pytest.approx(
            np.exp(-MU * r) - np.exp(-MU * t), abs=1e-10)
        assert H[0, 0] == pytest.approx(np.exp(-MU * t), abs=1e-10)
        assert np.allclose(H[1], 0.0)

    def test_matrix_columns_sum_to_aggregate(self, three_level_chain):
        engine = SericolaEngine(epsilon=1e-11)
        t, r = 2.0, 3.0
        H = engine.joint_distribution_matrix(three_level_chain, t, r)
        aggregated = engine.complementary_vector(
            three_level_chain, t, r, np.ones(3))
        assert np.allclose(H.sum(axis=1), aggregated, atol=1e-9)

    def test_matrix_bounded_by_transient(self, three_level_chain):
        from repro.numerics.uniformization import transient_matrix
        engine = SericolaEngine(epsilon=1e-11)
        t, r = 2.0, 3.0
        H = engine.joint_distribution_matrix(three_level_chain, t, r)
        transient = transient_matrix(three_level_chain, t,
                                     epsilon=1e-12)
        assert np.all(H <= transient + 1e-8)
        assert np.all(H >= -1e-12)


class TestConvergence:
    def test_value_converges_with_epsilon(self, adhoc_reduced):
        model = adhoc_reduced.model
        goal = adhoc_reduced.goal_state
        values = []
        for epsilon in (1e-1, 1e-3, 1e-6):
            engine = SericolaEngine(epsilon=epsilon)
            values.append(engine.joint_probability_vector(
                model, 24.0, 600.0, [goal])[0])
        # Monotone convergence from below (truncation drops positive
        # terms), as in Table 2 of the paper.
        assert values[0] < values[1] < values[2]
        assert values[2] - values[1] < values[1] - values[0]

    def test_steady_state_detection_accuracy(self):
        """The paper's outlook: detection must shorten the series on
        long horizons without exceeding the error bound."""
        from repro.models.workloads import workstation_cluster
        model = workstation_cluster(8, failure_rate=0.5,
                                    repair_rate=5.0)
        t = 200.0
        r = 0.9 * 8 * t
        target = range(4, 9)
        plain_engine = SericolaEngine(epsilon=1e-8)
        plain = plain_engine.joint_probability_vector(model, t, r,
                                                      target)
        detecting = SericolaEngine(epsilon=1e-8,
                                   steady_state_detection=True)
        detected = detecting.joint_probability_vector(model, t, r,
                                                      target)
        assert np.allclose(plain, detected, atol=1e-7)
        assert (detecting.last_diagnostics.truncation_steps
                < plain_engine.last_diagnostics.truncation_steps)

    def test_detection_off_by_default(self, adhoc_reduced):
        engine = SericolaEngine(epsilon=1e-6)
        assert not engine.steady_state_detection

    def test_truncation_matches_table2(self, adhoc_reduced):
        engine = SericolaEngine(epsilon=1e-8)
        engine.joint_probability_vector(adhoc_reduced.model, 24.0,
                                        600.0, [adhoc_reduced.goal_state])
        assert engine.last_diagnostics.truncation_steps == 594
