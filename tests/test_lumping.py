"""Unit tests for ordinary lumpability (bisimulation minimisation)."""

import numpy as np
import pytest

from repro.ctmc import ModelBuilder
from repro.ctmc.lumping import lump
from repro.mc import ModelChecker


def symmetric_pair():
    """Two interchangeable workers feeding one sink: the two 'one
    worker busy' states are bisimilar."""
    builder = ModelBuilder()
    builder.add_state("both_idle", labels=("idle",), reward=0.0)
    builder.add_state("left_busy", labels=("busy",), reward=1.0)
    builder.add_state("right_busy", labels=("busy",), reward=1.0)
    builder.add_state("done", labels=("done",), reward=0.0)
    builder.add_transition("both_idle", "left_busy", 2.0)
    builder.add_transition("both_idle", "right_busy", 2.0)
    builder.add_transition("left_busy", "done", 3.0)
    builder.add_transition("right_busy", "done", 3.0)
    return builder.build(initial_state="both_idle")


class TestBasicLumping:
    def test_symmetric_states_merge(self):
        result = lump(symmetric_pair())
        assert result.num_blocks == 3
        merged = [b for b in result.blocks if len(b) == 2]
        assert merged == [[1, 2]]

    def test_quotient_rates_accumulate(self):
        result = lump(symmetric_pair())
        quotient = result.quotient
        idle = int(result.block_of[0])
        busy = int(result.block_of[1])
        done = int(result.block_of[3])
        assert quotient.rate(idle, busy) == 4.0  # 2 + 2
        assert quotient.rate(busy, done) == 3.0

    def test_rewards_and_labels_preserved(self):
        result = lump(symmetric_pair())
        quotient = result.quotient
        busy = int(result.block_of[1])
        assert quotient.reward(busy) == 1.0
        assert quotient.states_with("busy") == frozenset({busy})

    def test_different_rewards_do_not_merge(self):
        model = symmetric_pair().with_rewards([0.0, 1.0, 2.0, 0.0])
        result = lump(model)
        assert result.num_blocks == 4

    def test_different_labels_do_not_merge(self):
        builder = ModelBuilder()
        builder.add_state("a", labels=("x",))
        builder.add_state("b", labels=("y",))
        model = builder.build()
        assert lump(model).num_blocks == 2

    def test_dropping_labels_coarsens(self):
        builder = ModelBuilder()
        builder.add_state("a", labels=("x",))
        builder.add_state("b", labels=("y",))
        model = builder.build(initial_distribution=[0.5, 0.5])
        result = lump(model, respect_labels=())
        assert result.num_blocks == 1

    def test_rate_refinement_propagates(self):
        # Same labels/rewards, but one state reaches a distinguishable
        # state faster: refinement must separate their predecessors
        # too.
        builder = ModelBuilder()
        builder.add_state("p1")
        builder.add_state("p2")
        builder.add_state("q1")
        builder.add_state("q2")
        builder.add_state("goal", labels=("goal",))
        builder.add_transition("p1", "q1", 1.0)
        builder.add_transition("p2", "q2", 1.0)
        builder.add_transition("q1", "goal", 1.0)
        builder.add_transition("q2", "goal", 5.0)
        model = builder.build(initial_distribution=[0.5, 0.5, 0, 0, 0])
        result = lump(model, respect_initial=False)
        assert result.block_of[0] != result.block_of[1]
        assert result.block_of[2] != result.block_of[3]

    def test_initial_distribution_aggregates(self):
        model = symmetric_pair()
        result = lump(model)
        assert result.quotient.initial_distribution.sum() \
            == pytest.approx(1.0)

    def test_lift_vector(self):
        result = lump(symmetric_pair())
        block_values = np.arange(result.num_blocks, dtype=float)
        lifted = result.lift(block_values)
        assert lifted[1] == lifted[2]
        assert len(lifted) == 4

    def test_lift_set(self):
        result = lump(symmetric_pair())
        busy_block = int(result.block_of[1])
        assert result.lift_set({busy_block}) == frozenset({1, 2})


class TestSemanticPreservation:
    @pytest.mark.parametrize("formula", [
        "P>0.1 [ F[0,2] done ]",
        "P>0.1 [ idle U[0,2][0,1] done ]",
        "P>0.5 [ X busy ]",
    ])
    def test_probabilities_invariant(self, formula):
        model = symmetric_pair()
        result = lump(model)
        original = ModelChecker(model, epsilon=1e-10).check(formula)
        quotient = ModelChecker(result.quotient,
                                epsilon=1e-10).check(formula)
        lifted = result.lift(quotient.probabilities)
        assert np.allclose(lifted, original.probabilities, atol=1e-9)

    def test_adhoc_model_is_already_minimal(self, adhoc):
        result = lump(adhoc)
        assert result.num_blocks == adhoc.num_states

    def test_cluster_collapse_without_labels(self):
        # A symmetric model whose per-station identity is dropped.
        from repro.models.workloads import workstation_cluster
        model = workstation_cluster(6)
        result = lump(model)
        # Birth-death chains are already minimal.
        assert result.num_blocks == model.num_states

    def test_replicated_model_shrinks(self):
        """Two independent copies of a 2-state component, observed only
        through the count of 'up' copies: 4 states lump to 3."""
        builder = ModelBuilder()
        for left in (0, 1):
            for right in (0, 1):
                count = left + right
                builder.add_state(f"s{left}{right}",
                                  labels=(f"up{count}",),
                                  reward=float(count))
        def idx(l, r):
            return l * 2 + r
        for left in (0, 1):
            for right in (0, 1):
                if left == 1:
                    builder.add_transition(idx(left, right),
                                           idx(0, right), 1.0)
                else:
                    builder.add_transition(idx(left, right),
                                           idx(1, right), 2.0)
                if right == 1:
                    builder.add_transition(idx(left, right),
                                           idx(left, 0), 1.0)
                else:
                    builder.add_transition(idx(left, right),
                                           idx(left, 1), 2.0)
        model = builder.build(initial_state="s11")
        result = lump(model)
        assert result.num_blocks == 3
