"""Unit tests for the synthetic model generators."""

import numpy as np
import pytest

from repro.models import workloads


class TestRandomMRM:
    def test_shape_and_seeding(self):
        first = workloads.random_mrm(6, seed=1)
        second = workloads.random_mrm(6, seed=1)
        assert first.num_states == 6
        assert np.allclose(first.rate_matrix.toarray(),
                           second.rate_matrix.toarray())

    def test_different_seeds_differ(self):
        first = workloads.random_mrm(6, seed=1)
        second = workloads.random_mrm(6, seed=2)
        assert not np.allclose(first.rate_matrix.toarray(),
                               second.rate_matrix.toarray())

    def test_connected_by_default(self):
        from repro.ctmc import graph
        model = workloads.random_mrm(8, density=0.0, seed=3)
        assert graph.reachable(model, [0]) == set(range(8))

    def test_reward_levels_respected(self):
        model = workloads.random_mrm(10, seed=4,
                                     reward_levels=(0.0, 5.0))
        assert set(np.unique(model.rewards)) <= {0.0, 5.0}


class TestBirthDeath:
    def test_structure(self):
        model = workloads.birth_death_mrm(4)
        assert model.num_states == 5
        assert model.rate(0, 1) == 1.0
        assert model.rate(1, 0) == 1.5
        assert model.rate(4, 3) == 1.5
        assert model.is_absorbing(4) is False

    def test_labels(self):
        model = workloads.birth_death_mrm(3)
        assert model.states_with("empty") == frozenset({0})
        assert model.states_with("full") == frozenset({3})

    def test_occupancy_rewards(self):
        model = workloads.birth_death_mrm(3, reward_per_job=2.0)
        assert model.reward(2) == 4.0


class TestDegradableMultiprocessor:
    def test_reward_is_capacity(self):
        model = workloads.degradable_multiprocessor(3)
        assert [model.reward(k) for k in range(4)] == [0.0, 1.0, 2.0,
                                                       3.0]

    def test_failure_rates_scale_with_capacity(self):
        model = workloads.degradable_multiprocessor(3, failure_rate=0.1)
        assert model.rate(3, 2) == pytest.approx(0.3)
        assert model.rate(1, 0) == pytest.approx(0.1)

    def test_coverage_adds_crash_transition(self):
        model = workloads.degradable_multiprocessor(
            3, failure_rate=0.1, coverage=0.9)
        assert model.rate(3, 0) == pytest.approx(0.3 * 0.1)
        assert model.rate(3, 2) == pytest.approx(0.3 * 0.9)

    def test_labels(self):
        model = workloads.degradable_multiprocessor(2)
        assert model.states_with("down") == frozenset({0})
        assert model.states_with("degraded") == frozenset({1})
        assert model.states_with("operational") == frozenset({1, 2})

    def test_starts_fully_operational(self):
        model = workloads.degradable_multiprocessor(4)
        assert model.initial_distribution[4] == 1.0


class TestWorkstationCluster:
    def test_default_availability_threshold(self):
        model = workloads.workstation_cluster(8)
        assert model.states_with("available") == frozenset(range(6, 9))

    def test_outage_label(self):
        model = workloads.workstation_cluster(4)
        assert model.states_with("outage") == frozenset({0})

    def test_single_repair_unit(self):
        model = workloads.workstation_cluster(4, repair_rate=2.0)
        for k in range(4):
            assert model.rate(k, k + 1) == 2.0


class TestCycle:
    def test_ring_structure(self):
        model = workloads.cycle_mrm(5, rate=2.0)
        for s in range(5):
            assert model.rate(s, (s + 1) % 5) == 2.0
        assert model.num_transitions == 5


class TestCrowd:
    def test_shape_and_labels(self):
        model = workloads.crowd_mrm(10, 7)
        assert model.num_states == 70
        # lobby = site 0, exit = last site (7 members each).
        assert model.states_with("lobby") == frozenset(range(7))
        assert model.states_with("exit") == frozenset(range(63, 70))
        assert model.initial_distribution[0] == 1.0

    def test_member_axis_is_replica_symmetric(self):
        from repro.ctmc.lumping import try_lump
        model = workloads.crowd_mrm(10, 7)
        lumping = try_lump(model, respect_initial=False)
        assert lumping is not None
        assert lumping.num_blocks == 10
        # Every block is one site: all members share a block.
        sites = np.arange(70) // 7
        for site in range(10):
            blocks = set(lumping.block_of[sites == site].tolist())
            assert len(blocks) == 1

    def test_rates_and_rewards_depend_on_site_only(self):
        model = workloads.crowd_mrm(8, 5)
        rewards = np.asarray(model.rewards).reshape(8, 5)
        assert (rewards == rewards[:, :1]).all()
        assert set(np.unique(rewards)) <= {0.0, 1.0, 2.0}

    def test_connected(self):
        from repro.ctmc import graph
        model = workloads.crowd_mrm(4, 3)
        assert graph.reachable(model, [0]) == set(range(12))

    def test_validation(self):
        with pytest.raises(ValueError):
            workloads.crowd_mrm(1, 5)
        with pytest.raises(ValueError):
            workloads.crowd_mrm(5, 0)


class TestVirus:
    def test_state_count_is_triangular(self):
        model = workloads.virus_mrm(20)
        assert model.num_states == 21 * 22 // 2

    def test_scales_to_1e5_states(self):
        model = workloads.virus_mrm(450)
        assert model.num_states == 101_926

    def test_labels_and_rewards(self):
        model = workloads.virus_mrm(12, outbreak_fraction=0.5)
        extinct = model.states_with("extinct")
        outbreak = model.states_with("outbreak")
        assert extinct and outbreak and not (extinct & outbreak)
        # Reward = number of infected; extinct states earn nothing.
        rewards = np.asarray(model.rewards)
        assert all(rewards[s] == 0.0 for s in extinct)
        assert all(rewards[s] >= 6.0 for s in outbreak)

    def test_initial_single_infection(self):
        model = workloads.virus_mrm(10)
        support = np.flatnonzero(model.initial_distribution)
        assert len(support) == 1
        assert model.rewards[support[0]] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            workloads.virus_mrm(1)
