"""Unit tests for the interval bounds of CSRL."""

import math

import pytest

from repro.errors import FormulaError
from repro.logic.intervals import Interval


class TestConstruction:
    def test_default_is_unbounded(self):
        interval = Interval()
        assert interval.is_trivial
        assert interval.lower == 0.0
        assert math.isinf(interval.upper)

    def test_upto(self):
        interval = Interval.upto(5.0)
        assert interval.lower == 0.0
        assert interval.upper == 5.0
        assert interval.is_downward_closed
        assert not interval.is_trivial

    def test_general_interval(self):
        interval = Interval(1.0, 2.0)
        assert not interval.is_downward_closed
        assert not interval.is_point

    def test_point_interval(self):
        assert Interval(3.0, 3.0).is_point

    def test_negative_lower_rejected(self):
        with pytest.raises(FormulaError):
            Interval(-1.0, 2.0)

    def test_empty_interval_rejected(self):
        with pytest.raises(FormulaError):
            Interval(3.0, 2.0)

    def test_infinite_lower_rejected(self):
        with pytest.raises(FormulaError):
            Interval(math.inf, math.inf)

    def test_nan_rejected(self):
        with pytest.raises(FormulaError):
            Interval(math.nan, 1.0)


class TestOperations:
    def test_contains(self):
        interval = Interval(1.0, 3.0)
        assert 1.0 in interval
        assert 3.0 in interval
        assert 2.0 in interval
        assert 0.5 not in interval
        assert 3.5 not in interval

    def test_unbounded_contains_everything(self):
        assert 1e100 in Interval.unbounded()

    def test_intersect(self):
        assert Interval(0.0, 2.0).intersect(Interval(1.0, 3.0)) \
            == Interval(1.0, 2.0)

    def test_intersect_empty(self):
        assert Interval(0.0, 1.0).intersect(Interval(2.0, 3.0)) is None

    def test_intersect_touching(self):
        assert Interval(0.0, 1.0).intersect(Interval(1.0, 2.0)) \
            == Interval(1.0, 1.0)

    def test_scaled(self):
        assert Interval(1.0, 4.0).scaled(0.5) == Interval(0.5, 2.0)

    def test_scaled_keeps_infinity(self):
        scaled = Interval(1.0, math.inf).scaled(2.0)
        assert scaled.lower == 2.0
        assert math.isinf(scaled.upper)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(FormulaError):
            Interval(0.0, 1.0).scaled(-1.0)

    def test_equality_and_hash(self):
        assert Interval(0.0, 5.0) == Interval.upto(5.0)
        assert hash(Interval(0.0, 5.0)) == hash(Interval.upto(5.0))


class TestFormatting:
    def test_trivial(self):
        assert str(Interval.unbounded()) == "[0,inf)"

    def test_integral_bounds_print_as_ints(self):
        assert str(Interval.upto(24.0)) == "[0,24]"

    def test_fractional_bounds(self):
        assert str(Interval(0.0, 2.5)) == "[0,2.5]"

    def test_infinite_upper_with_lower(self):
        assert str(Interval(1.0, math.inf)) == "[1,inf]"
