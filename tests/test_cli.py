"""Tests for the command-line interface."""

import pytest

from repro import cli
from repro.ctmc import ModelBuilder, io


@pytest.fixture
def model_on_disk(tmp_path):
    builder = ModelBuilder()
    builder.add_state("a", labels=("green",), reward=1.0)
    builder.add_state("b", labels=("red",), reward=0.0)
    builder.add_transition("a", "b", 0.7)
    io.save_mrm(builder.build(), tmp_path / "model")
    return str(tmp_path / "model")


class TestCheckCommand:
    def test_holding_formula_exits_zero(self, model_on_disk, capsys):
        code = cli.main(["check", "--model", model_on_disk,
                         "--formula", "P>0.5 [ green U[0,3][0,1.2] red ]"])
        assert code == 0
        output = capsys.readouterr().out
        assert "holds initially: True" in output
        assert "0.56" in output  # 1 - exp(-0.7*1.2) = 0.568...

    def test_failing_formula_exits_one(self, model_on_disk, capsys):
        code = cli.main(["check", "--model", model_on_disk,
                         "--formula", "P>0.99 [ F[0,0.1] red ]"])
        assert code == 1

    def test_engine_selection(self, model_on_disk, capsys):
        code = cli.main(["check", "--model", model_on_disk,
                         "--engine", "erlang",
                         "--formula", "P>0.5 [ green U[0,3][0,1.2] red ]"])
        assert code == 0

    def test_boolean_formula(self, model_on_disk, capsys):
        code = cli.main(["check", "--model", model_on_disk,
                         "--formula", "green | red"])
        assert code == 0


class TestLumpCommand:
    @pytest.fixture
    def symmetric_on_disk(self, tmp_path):
        builder = ModelBuilder()
        builder.add_state("idle")
        builder.add_state("left", labels=("busy",))
        builder.add_state("right", labels=("busy",))
        builder.add_transition("idle", "left", 1.0)
        builder.add_transition("idle", "right", 1.0)
        io.save_mrm(builder.build(), tmp_path / "sym")
        return str(tmp_path / "sym")

    def test_reports_sizes(self, symmetric_on_disk, capsys):
        assert cli.main(["lump", "--model", symmetric_on_disk]) == 0
        output = capsys.readouterr().out
        assert "original: 3 states" in output
        assert "quotient: 2 states" in output

    def test_writes_quotient(self, symmetric_on_disk, tmp_path,
                             capsys):
        out = str(tmp_path / "quotient")
        assert cli.main(["lump", "--model", symmetric_on_disk,
                         "--output", out]) == 0
        loaded = io.load_mrm(out)
        assert loaded.num_states == 2


class TestExportCommand:
    def test_dot_output(self, model_on_disk, capsys):
        assert cli.main(["export-dot", "--model", model_on_disk]) == 0
        output = capsys.readouterr().out
        assert output.startswith("digraph")
        assert "->" in output


class TestOtherCommands:
    def test_engines_listed(self, capsys):
        assert cli.main(["engines"]) == 0
        output = capsys.readouterr().out
        assert "sericola" in output
        assert "erlang" in output
        assert "discretization" in output

    def test_describe_case_study(self, capsys):
        assert cli.main(["case-study", "--describe"]) == 0
        output = capsys.readouterr().out
        assert "doze" in output
        assert "underlying MRM" in output

    def test_no_command_prints_help(self, capsys):
        assert cli.main([]) == 2
        assert "usage" in capsys.readouterr().out
