"""Unit tests for the stochastic reward net substrate."""

import numpy as np
import pytest

from repro.errors import ModelError, StateSpaceError
from repro.srn import StochasticRewardNet, build_mrm
from repro.srn.reachability import explore


def flip_net():
    net = StochasticRewardNet()
    net.add_place("on", tokens=1)
    net.add_place("off")
    net.add_timed_transition("turn_off", 2.0, inputs=["on"],
                             outputs=["off"])
    net.add_timed_transition("turn_on", 5.0, inputs=["off"],
                             outputs=["on"])
    net.set_reward(lambda m: 3.0 if m["on"] else 0.0)
    return net


class TestNetConstruction:
    def test_duplicate_place_rejected(self):
        net = StochasticRewardNet()
        net.add_place("p")
        with pytest.raises(ModelError):
            net.add_place("p")

    def test_negative_tokens_rejected(self):
        net = StochasticRewardNet()
        with pytest.raises(ModelError):
            net.add_place("p", tokens=-1)

    def test_unknown_place_in_arc_rejected(self):
        net = StochasticRewardNet()
        net.add_place("p")
        with pytest.raises(ModelError, match="unknown place"):
            net.add_timed_transition("t", 1.0, inputs=["q"])

    def test_duplicate_transition_rejected(self):
        net = flip_net()
        with pytest.raises(ModelError):
            net.add_timed_transition("turn_on", 1.0)

    def test_immediate_needs_positive_weight(self):
        net = StochasticRewardNet()
        net.add_place("p", tokens=1)
        with pytest.raises(ModelError):
            net.add_immediate_transition("t", weight=0.0, inputs=["p"])

    def test_describe_mentions_everything(self):
        text = flip_net().describe()
        assert "turn_off" in text
        assert "on" in text

    def test_initial_marking(self):
        marking = flip_net().initial_marking()
        assert marking["on"] == 1
        assert marking["off"] == 0


class TestStateSpace:
    def test_flip_flop_mrm(self):
        model = build_mrm(flip_net())
        assert model.num_states == 2
        on = next(iter(model.states_with("on")))
        off = next(iter(model.states_with("off")))
        assert model.rate(on, off) == 2.0
        assert model.rate(off, on) == 5.0
        assert model.reward(on) == 3.0
        assert model.reward(off) == 0.0

    def test_arc_multiplicities(self):
        net = StochasticRewardNet()
        net.add_place("tokens", tokens=4)
        net.add_place("done")
        net.add_timed_transition("consume_two", 1.0,
                                 inputs=[("tokens", 2)],
                                 outputs=["done"])
        model = build_mrm(net)
        # Markings: 4, 2, 0 tokens (plus 'done' counts).
        assert model.num_states == 3

    def test_inhibitor_arc(self):
        net = StochasticRewardNet()
        net.add_place("queue")
        net.add_place("source", tokens=1)
        net.add_timed_transition(
            "arrive", 1.0, inputs=["source"],
            outputs=["source", "queue"],
            inhibitors=[("queue", 3)])
        model = build_mrm(net)
        # queue can hold 0..3 tokens; at 3 the inhibitor stops growth.
        assert model.num_states == 4

    def test_guard(self):
        net = StochasticRewardNet()
        net.add_place("level", tokens=0)
        net.add_place("pump", tokens=1)
        net.add_timed_transition(
            "fill", 1.0, inputs=["pump"], outputs=["pump", "level"],
            guard=lambda m: m["level"] < 2)
        model = build_mrm(net)
        assert model.num_states == 3

    def test_marking_dependent_rate(self):
        net = StochasticRewardNet()
        net.add_place("jobs", tokens=3)
        net.add_timed_transition("serve", lambda m: 2.0 * m["jobs"],
                                 inputs=["jobs"])
        model = build_mrm(net)
        # Rates 6, 4, 2 down the ladder.
        idx = {model.name_of(s): s for s in range(model.num_states)}
        assert model.rate(idx["jobs*3"], idx["jobs*2"]) == 6.0
        assert model.rate(idx["jobs*2"], idx["jobs"]) == 4.0

    def test_state_space_limit(self):
        net = StochasticRewardNet()
        net.add_place("unbounded")
        net.add_place("gen", tokens=1)
        net.add_timed_transition("spawn", 1.0, inputs=["gen"],
                                 outputs=["gen", "unbounded"])
        with pytest.raises(StateSpaceError, match="tangible markings"):
            build_mrm(net, max_states=50)

    def test_custom_labels(self):
        net = flip_net()
        net.add_label("shining", lambda m: m["on"] > 0)
        model = build_mrm(net)
        assert model.states_with("shining") == model.states_with("on")


class TestImmediateTransitions:
    def test_vanishing_marking_eliminated(self):
        net = StochasticRewardNet()
        net.add_place("idle", tokens=1)
        net.add_place("choice")
        net.add_place("left")
        net.add_place("right")
        net.add_timed_transition("go", 1.0, inputs=["idle"],
                                 outputs=["choice"])
        net.add_immediate_transition("pick_left", weight=1.0,
                                     inputs=["choice"], outputs=["left"])
        net.add_immediate_transition("pick_right", weight=3.0,
                                     inputs=["choice"], outputs=["right"])
        model = build_mrm(net)
        # 'choice' is vanishing: states are idle, left, right.
        assert model.num_states == 3
        idle = next(iter(model.states_with("idle")))
        left = next(iter(model.states_with("left")))
        right = next(iter(model.states_with("right")))
        assert model.rate(idle, left) == pytest.approx(0.25)
        assert model.rate(idle, right) == pytest.approx(0.75)

    def test_chained_immediates(self):
        net = StochasticRewardNet()
        net.add_place("a", tokens=1)
        net.add_place("b")
        net.add_place("c")
        net.add_place("d")
        net.add_timed_transition("start", 2.0, inputs=["a"],
                                 outputs=["b"])
        net.add_immediate_transition("hop1", inputs=["b"], outputs=["c"])
        net.add_immediate_transition("hop2", inputs=["c"], outputs=["d"])
        model = build_mrm(net)
        assert model.num_states == 2
        a = next(iter(model.states_with("a")))
        d = next(iter(model.states_with("d")))
        assert model.rate(a, d) == 2.0

    def test_priorities(self):
        net = StochasticRewardNet()
        net.add_place("a", tokens=1)
        net.add_place("win")
        net.add_place("lose")
        net.add_place("go")
        net.add_timed_transition("start", 1.0, inputs=["a"],
                                 outputs=["go"])
        net.add_immediate_transition("low", priority=1, inputs=["go"],
                                     outputs=["lose"])
        net.add_immediate_transition("high", priority=2, inputs=["go"],
                                     outputs=["win"])
        model = build_mrm(net)
        win = next(iter(model.states_with("win")))
        start = next(iter(model.states_with("a")))
        assert model.rate(start, win) == 1.0
        assert model.states_with("lose") == frozenset()

    def test_vanishing_initial_marking(self):
        net = StochasticRewardNet()
        net.add_place("boot", tokens=1)
        net.add_place("run")
        net.add_immediate_transition("init", inputs=["boot"],
                                     outputs=["run"])
        net.add_timed_transition("tick", 1.0, inputs=["run"],
                                 outputs=["run"])
        model = build_mrm(net)
        assert model.num_states == 1
        assert model.initial_distribution[0] == 1.0

    def test_vanishing_cycle_detected(self):
        net = StochasticRewardNet()
        net.add_place("x", tokens=1)
        net.add_place("y")
        net.add_immediate_transition("xy", inputs=["x"], outputs=["y"])
        net.add_immediate_transition("yx", inputs=["y"], outputs=["x"])
        with pytest.raises(StateSpaceError, match="zero-time loop"):
            explore(net)
