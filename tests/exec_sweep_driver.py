"""Subprocess helper for the chaos tests: drive one checkpointed sweep.

Runs a process-executor sweep of a fixed, deterministically built model
and prints machine-readable progress facts::

    resumed=<cells served from the checkpoint before computing>
    computed=<cells evaluated by this run>
    checksum=<BLAKE2b of the final grid's raw float64 bytes>

The chaos tests launch this script, ``kill -9`` it mid-sweep, assert
the worker processes it spawned do not linger, then re-run it and
compare ``checksum`` against an in-process fault-free reference --
proving checkpointed resume is exact across hard parent death.
"""

from __future__ import annotations

import argparse
import hashlib
import sys

import numpy as np

from repro.algorithms.base import get_engine
from repro.ctmc import ModelBuilder
from repro.exec import ProcessShardExecutor

#: The (t, r) grid every driver invocation sweeps.
TIMES = [0.5, 1.0, 1.5, 2.0]
REWARDS = [0.4, 0.8, 1.6]
TARGET = {2}


def build_model():
    """A three-level reward chain, bit-for-bit reproducible."""
    builder = ModelBuilder()
    builder.add_state("fast", labels=("busy",), reward=3.0)
    builder.add_state("slow", labels=("busy",), reward=1.0)
    builder.add_state("stopped", labels=("halt",), reward=0.0)
    builder.add_transition("fast", "slow", 2.0)
    builder.add_transition("slow", "fast", 1.0)
    builder.add_transition("slow", "stopped", 0.5)
    return builder.build(initial_state="fast")


def grid_checksum(grid: np.ndarray) -> str:
    return hashlib.blake2b(
        np.ascontiguousarray(grid, dtype="<f8").tobytes(),
        digest_size=16).hexdigest()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--checkpoint", required=True)
    parser.add_argument("--faults", default=None)
    parser.add_argument("--max-workers", type=int, default=2)
    args = parser.parse_args(argv)

    import os
    resumed = 0
    if os.path.exists(args.checkpoint):
        with open(args.checkpoint, "r", encoding="utf-8") as handle:
            resumed = max(0, sum(1 for _ in handle) - 1)  # sans header

    model = build_model()
    engine = get_engine("sericola")
    executor = ProcessShardExecutor(
        max_workers=args.max_workers,
        heartbeat_interval=0.05, heartbeat_timeout=1.0,
        faults=args.faults)
    try:
        partial = engine.joint_probability_sweep_partial(
            model, TIMES, REWARDS, TARGET, executor=executor,
            checkpoint=args.checkpoint)
    finally:
        executor.close()
    if not partial.complete:
        print(f"incomplete={len(partial.unevaluated)}", flush=True)
        return 1
    total = len(TIMES) * len(REWARDS)
    print(f"resumed={resumed}", flush=True)
    print(f"computed={total - resumed}", flush=True)
    print(f"checksum={grid_checksum(partial.grid)}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
