"""Unit tests for the linear solvers and stationary distributions."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ctmc import CTMC, ModelBuilder
from repro.errors import ConvergenceError, ModelError, NumericalError
from repro.numerics.linear import (bscc_stationary_distributions,
                                   solve_linear_system,
                                   stationary_distribution)


def diagonally_dominant_system(n, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(-1.0, 1.0, size=(n, n))
    matrix += np.diag(np.abs(matrix).sum(axis=1) + 1.0)
    rhs = rng.uniform(-1.0, 1.0, size=n)
    return sp.csr_matrix(matrix), rhs


class TestSolvers:
    @pytest.mark.parametrize("method", ["direct", "jacobi", "gauss-seidel"])
    def test_methods_agree(self, method):
        matrix, rhs = diagonally_dominant_system(8, 42)
        solution = solve_linear_system(matrix, rhs, method=method,
                                       tolerance=1e-13)
        assert np.allclose(matrix @ solution, rhs, atol=1e-9)

    def test_dense_input_accepted(self):
        solution = solve_linear_system(np.array([[2.0, 0.0], [0.0, 4.0]]),
                                       [2.0, 8.0])
        assert np.allclose(solution, [1.0, 2.0])

    def test_unknown_method(self):
        with pytest.raises(NumericalError, match="unknown"):
            solve_linear_system(np.eye(2), [1.0, 1.0], method="qr")

    def test_non_square_rejected(self):
        with pytest.raises(NumericalError, match="square"):
            solve_linear_system(np.ones((2, 3)), [1.0, 1.0])

    def test_rhs_shape_rejected(self):
        with pytest.raises(NumericalError, match="rhs"):
            solve_linear_system(np.eye(3), [1.0, 1.0])

    def test_zero_diagonal_rejected_iteratively(self):
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(NumericalError, match="diagonal"):
            solve_linear_system(matrix, [1.0, 1.0], method="jacobi")

    def test_divergent_jacobi_raises(self):
        # Spectral radius > 1: Jacobi diverges and must say so.
        matrix = np.array([[1.0, 5.0], [5.0, 1.0]])
        with pytest.raises(ConvergenceError):
            solve_linear_system(matrix, [1.0, 1.0], method="jacobi",
                                max_iterations=50)


class TestStationary:
    def test_two_state_flip_flop(self):
        builder = ModelBuilder()
        builder.add_state("u")
        builder.add_state("d")
        builder.add_transition("u", "d", 1.0)
        builder.add_transition("d", "u", 3.0)
        pi = stationary_distribution(builder.build())
        assert np.allclose(pi, [0.75, 0.25])

    def test_birth_death_detailed_balance(self):
        from repro.models.workloads import birth_death_mrm
        model = birth_death_mrm(5, arrival_rate=1.0, service_rate=2.0)
        pi = stationary_distribution(model)
        # M/M/1/c: pi_k proportional to (lambda/mu)^k.
        expected = 0.5 ** np.arange(6)
        expected /= expected.sum()
        assert np.allclose(pi, expected)

    def test_reducible_chain_rejected(self):
        builder = ModelBuilder()
        builder.add_state("a")
        builder.add_state("b")
        builder.add_transition("a", "b", 1.0)
        with pytest.raises(ModelError, match="irreducible"):
            stationary_distribution(builder.build())

    def test_bscc_stationary_distributions(self):
        # 0 -> {1 <-> 2} and 0 -> {3}.
        rates = np.zeros((4, 4))
        rates[0, 1] = rates[0, 3] = 1.0
        rates[1, 2] = 2.0
        rates[2, 1] = 2.0
        chain = CTMC(rates)
        results = dict()
        for members, pi in bscc_stationary_distributions(chain):
            results[tuple(members)] = pi
        assert set(results) == {(1, 2), (3,)}
        assert np.allclose(results[(1, 2)], [0.5, 0.5])
        assert np.allclose(results[(3,)], [1.0])

    def test_stationary_is_fixed_point(self):
        from repro.models.workloads import random_mrm
        model = random_mrm(7, seed=3)
        pi = stationary_distribution(model, check_irreducible=False)
        assert np.allclose(pi @ model.generator_matrix().toarray(), 0.0,
                           atol=1e-9)
