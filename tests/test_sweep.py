"""Sweep evaluation and threaded fan-out.

Covers the shared-prefix ``(t, r)`` grid layer on top of the engines:

* :meth:`JointEngine.joint_probability_sweep` agrees with a per-point
  loop of scalar :meth:`joint_probability_vector` calls (to 1e-10, in
  practice bit-identical) for all three engines -- on random MRMs, on
  the reduced case-study model, on impulse models (discretisation and
  pseudo-Erlang; the occupation-time engine rejects impulses), and on
  grids containing the ``t == 0`` and ``r == 0`` edge rows;
* sweep and scalar calls share the result cache per grid point, and
  ``stats.sweep_points`` accounts the grid cells served;
* the threaded fan-out returns results in task order with merged
  worker statistics, bit-identical to the sequential run;
* the model checker's grid API matches per-formula checks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (DiscretizationEngine, ErlangEngine,
                              SericolaEngine, clear_caches, joint_cache,
                              parallel_joint_sweeps,
                              parallel_joint_vectors, threaded_map)
from repro.algorithms.parallel import resolve_workers
from repro.ctmc import ModelBuilder
from repro.errors import NumericalError
from repro.mc.checker import ModelChecker
from repro.models.adhoc import Q3_REWARD_BOUND, Q3_TIME_BOUND
from repro.models.workloads import random_mrm
from repro.numerics.uniformization import (
    transient_target_probabilities, transient_target_probabilities_sweep)


def engines():
    return [SericolaEngine(epsilon=1e-12),
            ErlangEngine(phases=48),
            DiscretizationEngine(step=1.0 / 16)]


TIMES = [0.0, 0.5, 1.0, 2.0]
REWARDS = [0.0, 0.5, 1.5, 3.0]


def scalar_grid(engine, model, times, rewards, target):
    grid = np.empty((len(times), len(rewards), model.num_states))
    for i, t in enumerate(times):
        for j, r in enumerate(rewards):
            grid[i, j] = engine.joint_probability_vector(
                model, t, r, target)
    return grid


@pytest.fixture
def impulse_model():
    builder = ModelBuilder()
    builder.add_state("a", labels=("green",), reward=0.0)
    builder.add_state("b", labels=("green",), reward=1.0)
    builder.add_state("c", reward=2.0)
    builder.add_transition("a", "b", 0.8, impulse=1.0)
    builder.add_transition("b", "c", 1.2)
    builder.add_transition("c", "a", 0.5, impulse=2.0)
    return builder.build(initial_state="a")


# ----------------------------------------------------------------------
# sweep == per-point scalar loop
# ----------------------------------------------------------------------

class TestSweepEquivalence:
    @pytest.mark.parametrize("engine", engines(), ids=lambda e: e.name)
    def test_random_mrm_with_edge_rows(self, engine):
        model = random_mrm(12, seed=20020623,
                           reward_levels=(0.0, 1.0, 2.0))
        target = set(model.states_with("green")) or {0}
        clear_caches()
        swept = engine.joint_probability_sweep(model, TIMES, REWARDS,
                                               target)
        clear_caches()
        loop = scalar_grid(engine, model, TIMES, REWARDS, target)
        np.testing.assert_allclose(swept, loop, atol=1e-10)

    @pytest.mark.parametrize(
        "engine",
        [SericolaEngine(epsilon=1e-12), ErlangEngine(phases=48),
         DiscretizationEngine(step=1.0 / 32)],  # exit rates up to 19.5
        ids=lambda e: e.name)
    def test_adhoc_reduced(self, adhoc_reduced, engine):
        model = adhoc_reduced.model
        target = {adhoc_reduced.goal_state}
        times = [Q3_TIME_BOUND / 4, Q3_TIME_BOUND / 2]
        rewards = [Q3_REWARD_BOUND / 4, Q3_REWARD_BOUND]
        clear_caches()
        swept = engine.joint_probability_sweep(model, times, rewards,
                                               target)
        clear_caches()
        loop = scalar_grid(engine, model, times, rewards, target)
        np.testing.assert_allclose(swept, loop, atol=1e-10)

    @pytest.mark.parametrize(
        "engine",
        [ErlangEngine(phases=48), DiscretizationEngine(step=1.0 / 16)],
        ids=lambda e: e.name)
    def test_impulse_model(self, impulse_model, engine):
        target = set(impulse_model.states_with("green"))
        times = [0.0, 0.5, 1.5]
        rewards = [0.0, 1.0, 2.5]
        clear_caches()
        swept = engine.joint_probability_sweep(impulse_model, times,
                                               rewards, target)
        clear_caches()
        loop = scalar_grid(engine, impulse_model, times, rewards, target)
        np.testing.assert_allclose(swept, loop, atol=1e-10)

    def test_sericola_rejects_impulses(self, impulse_model):
        engine = SericolaEngine()
        with pytest.raises(NumericalError, match="state-based"):
            engine.joint_probability_sweep(impulse_model, [1.0], [1.0],
                                           {0})

    @pytest.mark.parametrize("engine", engines(), ids=lambda e: e.name)
    def test_duplicate_grid_entries_collapse(self, flip_flop, engine):
        clear_caches()
        swept = engine.joint_probability_sweep(
            flip_flop, [1.0, 1.0], [2.0, 2.0], {1})
        np.testing.assert_array_equal(swept[0, 0], swept[1, 1])
        vector = engine.joint_probability_vector(flip_flop, 1.0, 2.0,
                                                 {1})
        np.testing.assert_allclose(swept[0, 0], vector, atol=1e-12)

    @pytest.mark.parametrize("engine", engines(), ids=lambda e: e.name)
    def test_negative_bounds_rejected(self, flip_flop, engine):
        with pytest.raises(NumericalError):
            engine.joint_probability_sweep(flip_flop, [-1.0], [1.0], {1})
        with pytest.raises(NumericalError):
            engine.joint_probability_sweep(flip_flop, [1.0], [-1.0], {1})


# ----------------------------------------------------------------------
# cache interoperability and counters
# ----------------------------------------------------------------------

class TestSweepCache:
    def test_scalar_prefills_sweep(self, three_level_chain):
        engine = SericolaEngine(epsilon=1e-12)
        clear_caches()
        vector = engine.joint_probability_vector(three_level_chain,
                                                 1.0, 1.5, {2})
        hits_before = engine.stats.cache_hits
        swept = engine.joint_probability_sweep(
            three_level_chain, [1.0, 2.0], [1.5], {2})
        assert engine.stats.cache_hits == hits_before + 1
        np.testing.assert_array_equal(swept[0, 0], vector)

    def test_sweep_prefills_scalar(self, three_level_chain):
        engine = SericolaEngine(epsilon=1e-12)
        clear_caches()
        swept = engine.joint_probability_sweep(
            three_level_chain, [1.0, 2.0], [0.5, 1.5], {2})
        hits_before = engine.stats.cache_hits
        vector = engine.joint_probability_vector(three_level_chain,
                                                 2.0, 0.5, {2})
        assert engine.stats.cache_hits == hits_before + 1
        np.testing.assert_array_equal(vector, swept[1, 0])

    def test_sweep_points_counter(self, flip_flop):
        engine = DiscretizationEngine(step=1.0 / 8)
        clear_caches()
        engine.joint_probability_sweep(flip_flop, [1.0, 2.0],
                                       [1.0, 2.0, 4.0], {1})
        assert engine.stats.sweep_points == 6
        assert engine.stats.cache_misses == 6
        engine.joint_probability_sweep(flip_flop, [1.0, 2.0],
                                       [1.0, 2.0, 4.0], {1})
        assert engine.stats.sweep_points == 12
        assert engine.stats.cache_hits == 6

    def test_partial_grid_only_computes_missing(self, flip_flop):
        engine = SericolaEngine(epsilon=1e-12)
        clear_caches()
        engine.joint_probability_sweep(flip_flop, [1.0], [1.0], {1})
        misses_before = engine.stats.cache_misses
        engine.joint_probability_sweep(flip_flop, [1.0, 2.0],
                                       [1.0, 3.0], {1})
        assert engine.stats.cache_misses == misses_before + 3
        assert engine.stats.cache_hits >= 1


# ----------------------------------------------------------------------
# threaded fan-out
# ----------------------------------------------------------------------

class TestParallelFanOut:
    def test_resolve_workers(self):
        assert resolve_workers(None, 0) == 0
        assert resolve_workers(None, 3) <= 3
        assert resolve_workers(4, 2) == 2
        assert resolve_workers(1, 100) == 1

    def test_threaded_map_keeps_order(self):
        items = list(range(50))
        assert threaded_map(lambda x: x * x, items, max_workers=4) == \
            [x * x for x in items]

    def test_parallel_sweeps_match_sequential(self):
        models = [random_mrm(8, seed=s, reward_levels=(0.0, 1.0, 2.0))
                  for s in (1, 2, 3)]
        queries = [(m, [0.5, 1.0], [1.0, 2.0], {0, 1}) for m in models]
        engine = SericolaEngine(epsilon=1e-12)
        clear_caches()
        sequential = [engine.joint_probability_sweep(*q)
                      for q in queries]
        clear_caches()
        engine.stats.reset()
        threaded = parallel_joint_sweeps(engine, queries, max_workers=3)
        for seq, thr in zip(sequential, threaded):
            np.testing.assert_array_equal(seq, thr)
        # the clones' counters were merged back into the engine
        assert engine.stats.sweep_points == 4 * len(queries)
        assert engine.stats.cache_misses == 4 * len(queries)

    def test_parallel_vectors_match_sequential(self):
        models = [random_mrm(8, seed=s, reward_levels=(0.0, 1.0, 2.0))
                  for s in (4, 5)]
        queries = [(m, 1.0, 1.5, {0}) for m in models]
        engine = ErlangEngine(phases=32)
        clear_caches()
        sequential = [engine.joint_probability_vector(*q)
                      for q in queries]
        clear_caches()
        engine.stats.reset()
        threaded = parallel_joint_vectors(engine, queries,
                                          max_workers=2)
        for seq, thr in zip(sequential, threaded):
            np.testing.assert_array_equal(seq, thr)
        assert engine.stats.cache_misses == len(queries)

    def test_erlang_threaded_columns_deterministic(self):
        model = random_mrm(8, seed=6, reward_levels=(0.0, 1.0, 2.0))
        serial = ErlangEngine(phases=32, max_workers=1)
        threaded = ErlangEngine(phases=32, max_workers=4)
        clear_caches()
        first = serial.joint_probability_sweep(
            model, [0.5, 1.0], [0.0, 1.0, 2.0], {0, 2})
        clear_caches()
        second = threaded.joint_probability_sweep(
            model, [0.5, 1.0], [0.0, 1.0, 2.0], {0, 2})
        np.testing.assert_array_equal(first, second)

    def test_worker_clone_shares_cache_token(self):
        engine = SericolaEngine(epsilon=1e-10)
        clone = engine._worker_clone()
        assert clone._cache_token() == engine._cache_token()
        assert clone.stats is not engine.stats


# ----------------------------------------------------------------------
# model checker routing
# ----------------------------------------------------------------------

class TestCheckerSweep:
    def test_grid_matches_per_formula_checks(self, three_level_chain):
        checker = ModelChecker(three_level_chain,
                               engine=SericolaEngine(epsilon=1e-12))
        times = [0.5, 1.0, 2.0]
        rewards = [0.5, 2.0]
        clear_caches()
        grid = checker.until_probability_sweep("busy", "halt", times,
                                               rewards)
        assert grid.shape == (3, 2, three_level_chain.num_states)
        for i, t in enumerate(times):
            for j, r in enumerate(rewards):
                clear_caches()
                vector = checker.probability_vector(
                    checker._normalize(
                        f"P>0 [ busy U[0,{t}][0,{r}] halt ]").path)
                np.testing.assert_allclose(grid[i, j], vector,
                                           atol=1e-10)

    def test_multi_pair_fan_out(self, three_level_chain):
        checker = ModelChecker(three_level_chain,
                               engine=SericolaEngine(epsilon=1e-12))
        times, rewards = [0.5, 1.5], [1.0, 3.0]
        pairs = [("busy", "halt"), ("true", "halt")]
        clear_caches()
        grids = checker.until_probability_sweeps(pairs, times, rewards,
                                                 max_workers=2)
        assert len(grids) == 2
        clear_caches()
        for (left, right), grid in zip(pairs, grids):
            direct = checker.until_probability_sweep(left, right,
                                                     times, rewards)
            np.testing.assert_allclose(grid, direct, atol=1e-12)


# ----------------------------------------------------------------------
# uniformisation-level sweep primitive
# ----------------------------------------------------------------------

class TestTransientSweep:
    def test_matches_scalar_transient(self, three_level_chain):
        indicator = np.array([0.0, 1.0, 1.0])
        times = [0.0, 0.25, 1.0, 4.0]
        swept = transient_target_probabilities_sweep(
            three_level_chain, times, indicator)
        for i, t in enumerate(times):
            single = transient_target_probabilities(
                three_level_chain, t, indicator)
            np.testing.assert_allclose(swept[i], single, atol=1e-12)

    def test_rejects_negative_times(self, three_level_chain):
        with pytest.raises(NumericalError):
            transient_target_probabilities_sweep(
                three_level_chain, [-1.0], np.array([1.0, 0.0, 0.0]))
