"""Property-based tests (hypothesis) for core invariants.

These fuzz the numerical substrate and the logic layer with random
inputs, checking the mathematical invariants that must hold for *any*
model or formula:

* Poisson weights are a probability distribution matching scipy;
* transient distributions remain stochastic and match `expm`;
* the joint distribution is a CDF in r, bounded by the transient
  probability, and consistent across engines;
* the duality transform is an involution and swaps time/reward;
* formulas round-trip through the printer and parser.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st
from scipy import stats

from repro.algorithms import ErlangEngine, SericolaEngine
from repro.ctmc import CTMC, MarkovRewardModel
from repro.logic import ast, parse_formula
from repro.logic.intervals import Interval
from repro.mc.transform import dual_model
from repro.numerics.poisson import poisson_weights, right_truncation_point
from repro.numerics.uniformization import (transient_distribution,
                                           transient_target_probabilities)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

rates_strategy = st.floats(min_value=0.05, max_value=20.0,
                           allow_nan=False)


@st.composite
def small_mrms(draw, max_states=5, reward_levels=(0.0, 1.0, 2.5)):
    """Random small MRMs with a decent mix of structure."""
    n = draw(st.integers(min_value=2, max_value=max_states))
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            if i != j and draw(st.booleans()):
                matrix[i, j] = draw(rates_strategy)
    rewards = [draw(st.sampled_from(reward_levels)) for _ in range(n)]
    return MarkovRewardModel(matrix, rewards=rewards)


ap_names = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s not in ("true", "false", "inf"))


@st.composite
def state_formulas(draw, depth=3):
    if depth == 0:
        return draw(st.one_of(
            st.builds(ast.Atomic, ap_names),
            st.just(ast.TRUE), st.just(ast.FALSE)))
    choice = draw(st.integers(min_value=0, max_value=6))
    if choice == 0:
        return ast.Not(draw(state_formulas(depth=depth - 1)))
    if choice == 1:
        return ast.And(draw(state_formulas(depth=depth - 1)),
                       draw(state_formulas(depth=depth - 1)))
    if choice == 2:
        return ast.Or(draw(state_formulas(depth=depth - 1)),
                      draw(state_formulas(depth=depth - 1)))
    if choice == 3:
        return ast.Implies(draw(state_formulas(depth=depth - 1)),
                           draw(state_formulas(depth=depth - 1)))
    if choice == 4:
        return draw(st.one_of(
            st.builds(ast.Atomic, ap_names),
            st.just(ast.TRUE)))
    comparison = draw(st.sampled_from(("<", "<=", ">", ">=")))
    bound = draw(st.floats(min_value=0.0, max_value=1.0,
                           allow_nan=False))
    if choice == 5:
        return ast.SteadyState(comparison, bound,
                               draw(state_formulas(depth=depth - 1)))
    return ast.Prob(comparison, bound, draw(path_formulas(depth - 1)))


@st.composite
def intervals(draw):
    if draw(st.booleans()):
        return Interval.unbounded()
    lower = draw(st.floats(min_value=0.0, max_value=10.0,
                           allow_nan=False))
    width = draw(st.floats(min_value=0.0, max_value=10.0,
                           allow_nan=False))
    return Interval(lower, lower + width)


@st.composite
def path_formulas(draw, depth=1):
    time = draw(intervals())
    reward = draw(intervals())
    kind = draw(st.integers(min_value=0, max_value=3))
    if kind == 0:
        return ast.Next(draw(state_formulas(depth=depth)), time, reward)
    if kind == 1:
        return ast.Eventually(draw(state_formulas(depth=depth)), time,
                              reward)
    if kind == 2:
        return ast.Globally(draw(state_formulas(depth=depth)), time,
                            reward)
    return ast.Until(draw(state_formulas(depth=depth)),
                     draw(state_formulas(depth=depth)), time, reward)


# ----------------------------------------------------------------------
# numeric properties
# ----------------------------------------------------------------------

class TestPoissonProperties:
    @given(rate=st.floats(min_value=0.0, max_value=3000.0,
                          allow_nan=False),
           epsilon=st.floats(min_value=1e-12, max_value=1e-2))
    @settings(max_examples=60, deadline=None)
    def test_weights_match_scipy(self, rate, epsilon):
        weights = poisson_weights(rate, epsilon=epsilon)
        assert weights.weights.sum() == pytest.approx(1.0, abs=1e-9)
        ks = np.arange(weights.left, weights.right + 1)
        # Renormalisation after trimming inflates each weight by at
        # most the discarded tail mass (<= epsilon).
        assert np.allclose(weights.weights,
                           stats.poisson.pmf(ks, rate),
                           atol=max(1e-9, epsilon))

    @given(rate=st.floats(min_value=0.1, max_value=2000.0),
           epsilon=st.floats(min_value=1e-10, max_value=1e-2))
    @settings(max_examples=40, deadline=None)
    def test_truncation_point_definition(self, rate, epsilon):
        n = right_truncation_point(rate, epsilon)
        assert stats.poisson.cdf(n, rate) > 1.0 - epsilon - 1e-12


class TestTransientProperties:
    @given(model=small_mrms(), t=st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=30, deadline=None)
    def test_distribution_stays_stochastic(self, model, t):
        pi = transient_distribution(model, t, epsilon=1e-12)
        assert pi.min() >= -1e-10
        assert pi.sum() == pytest.approx(1.0, abs=1e-8)

    @given(model=small_mrms(), t=st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=30, deadline=None)
    def test_forward_equals_backward(self, model, t):
        indicator = np.zeros(model.num_states)
        indicator[0] = 1.0
        forward = transient_distribution(model, t, epsilon=1e-12)[0]
        backward = transient_target_probabilities(model, t, indicator,
                                                  epsilon=1e-12)
        alpha = model.initial_distribution
        assert float(alpha @ backward) == pytest.approx(forward,
                                                        abs=1e-8)


class TestJointDistributionProperties:
    @given(model=small_mrms(),
           t=st.floats(min_value=0.1, max_value=3.0),
           fraction=st.floats(min_value=0.0, max_value=1.2))
    @settings(max_examples=30, deadline=None)
    def test_joint_is_bounded_and_consistent(self, model, t, fraction):
        r = fraction * model.max_reward * t
        target = set(range(0, model.num_states, 2))
        engine = SericolaEngine(epsilon=1e-10)
        joint = engine.joint_probability_vector(model, t, r, target)
        indicator = np.zeros(model.num_states)
        for s in target:
            indicator[s] = 1.0
        transient = transient_target_probabilities(model, t, indicator,
                                                   epsilon=1e-12)
        assert np.all(joint >= -1e-9)
        assert np.all(joint <= transient + 1e-7)

    @given(model=small_mrms(),
           t=st.floats(min_value=0.1, max_value=2.0),
           fractions=st.tuples(
               st.floats(min_value=0.0, max_value=1.0),
               st.floats(min_value=0.0, max_value=1.0)))
    @settings(max_examples=25, deadline=None)
    def test_joint_monotone_in_r(self, model, t, fractions):
        low = min(fractions) * model.max_reward * t
        high = max(fractions) * model.max_reward * t
        engine = SericolaEngine(epsilon=1e-10)
        target = set(range(model.num_states))
        small = engine.joint_probability_vector(model, t, low, target)
        large = engine.joint_probability_vector(model, t, high, target)
        assert np.all(large >= small - 1e-7)

    @given(model=small_mrms(max_states=4),
           t=st.floats(min_value=0.2, max_value=2.0),
           fraction=st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=15, deadline=None)
    def test_sericola_agrees_with_erlang(self, model, t, fraction):
        r = fraction * model.max_reward * t
        assume(r > 0.0)
        # The random Erlang bound has standard deviation r/sqrt(k), so
        # near an *atom* of Y_t (a no-jump trajectory accumulates
        # exactly rho(s) * t, with probability e^{-E(s) t} > 0) the
        # approximation converges only as O(k^{-1/2}) -- e.g. three
        # absorbing states with rho(0) t just above r give an exact
        # Gamma tail of ~0.018 at k = 1024.  The O(1/k) tolerance
        # below is valid at continuity points only, so keep r clear
        # of every atom by several standard deviations.
        sigma = r / 32.0  # k = 1024
        assume(all(abs(r - model.reward(s) * t) > 6.0 * sigma
                   for s in range(model.num_states)))
        target = {0}
        sericola = SericolaEngine(epsilon=1e-10) \
            .joint_probability_vector(model, t, r, target)
        erlang = ErlangEngine(phases=1024) \
            .joint_probability_vector(model, t, r, target)
        # The Erlang error is O(1/k) with a model-dependent constant:
        # away from atoms the observed error halves with every
        # doubling of k, but the constant varies with the rate/reward
        # structure and reaches ~1e-2 at k = 1024 on some generated
        # models.
        assert np.allclose(sericola, erlang, atol=2e-2)


class TestDualityProperties:
    @given(model=small_mrms(reward_levels=(0.5, 1.0, 2.0, 4.0)))
    @settings(max_examples=30, deadline=None)
    def test_involution(self, model):
        double = dual_model(dual_model(model))
        assert np.allclose(double.rate_matrix.toarray(),
                           model.rate_matrix.toarray(), atol=1e-12)
        assert np.allclose(double.rewards, model.rewards, atol=1e-12)

    @given(model=small_mrms(reward_levels=(0.5, 1.0, 3.0)),
           t=st.floats(min_value=0.2, max_value=2.0),
           r=st.floats(min_value=0.2, max_value=2.0))
    @settings(max_examples=15, deadline=None)
    def test_time_reward_swap(self, model, t, r):
        """The duality theorem concerns *hitting* events: on a model
        whose target is absorbing with reward zero (the shape every
        Theorem-1 reduction has), ``Pr{Y_t <= r, X_t = goal}`` is the
        probability of absorption within time t and reward r, and the
        dual swaps the two bounds.  (On arbitrary models the
        instant-of-time joint is *not* duality-invariant.)"""
        rates = model.rate_matrix.tolil(copy=True)
        rates.rows[0] = []
        rates.data[0] = []
        rewards = model.rewards.copy()
        rewards[0] = 0.0
        reduced = MarkovRewardModel(rates.tocsr(), rewards=rewards)
        assume(reduced.max_exit_rate > 0.0)
        engine = SericolaEngine(epsilon=1e-10)
        original = engine.joint_probability_vector(reduced, t, r, {0})
        dual = engine.joint_probability_vector(dual_model(reduced), r,
                                               t, {0})
        assert np.allclose(original, dual, atol=1e-6)


class TestLumpingProperties:
    @given(model=small_mrms())
    @settings(max_examples=25, deadline=None)
    def test_lumping_preserves_transient_probabilities(self, model):
        """For any model, any labelled set's transient probability is
        invariant under the coarsest ordinary lumping."""
        from repro.ctmc.lumping import lump
        result = lump(model)
        t = 1.3
        # Pick a label-respecting target: states labelled 'green'.
        target = model.states_with("green")
        if not target:
            return
        indicator = np.zeros(model.num_states)
        for s in target:
            indicator[s] = 1.0
        direct = transient_target_probabilities(model, t, indicator,
                                                epsilon=1e-12)
        quotient_indicator = np.zeros(result.num_blocks)
        for block in result.quotient.states_with("green"):
            quotient_indicator[block] = 1.0
        quotient = transient_target_probabilities(
            result.quotient, t, quotient_indicator, epsilon=1e-12)
        assert np.allclose(result.lift(quotient), direct, atol=1e-8)

    @given(model=small_mrms())
    @settings(max_examples=25, deadline=None)
    def test_lumping_is_idempotent(self, model):
        from repro.ctmc.lumping import lump
        once = lump(model)
        twice = lump(once.quotient)
        assert twice.num_blocks == once.num_blocks


class TestImpulseProperties:
    @given(model=small_mrms(max_states=3,
                            reward_levels=(0.0, 1.0)),
           t=st.floats(min_value=0.25, max_value=1.5),
           impulse=st.integers(min_value=1, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_discretization_vs_erlang_with_impulses(self, model, t,
                                                    impulse):
        """The two impulse-capable engines agree on random models with
        a uniform impulse on every transition."""
        from repro.algorithms import DiscretizationEngine
        matrix = model.rate_matrix.copy()
        if matrix.nnz == 0:
            return
        impulses = matrix.copy()
        impulses.data = np.full_like(impulses.data, float(impulse))
        spiked = model.with_impulse_rewards(impulses)
        step = 1.0 / 64
        aligned = max(step, round(t / step) * step)
        # The engines agree only at continuity points of the
        # accumulated-reward CDF: the pseudo-Erlang expansion converges
        # in distribution, so an atom exactly at the bound (e.g. an
        # absorbing chain whose every path collects the same impulses)
        # splits its mass across the bound however many phases are
        # used.  The 0.375 offset moves r off the achievable-reward
        # atoms (integer impulse multiples plus the rate term) while
        # staying on the discretisation grid (24/64).  Even off the
        # atoms the phase approximation converges only at O(1/k) with
        # a model-dependent constant; 2048 phases has been observed to
        # leave a gap just over the 0.05 tolerance (0.051 on a 2-state
        # chain at t=0.375), 4096 halves it to safely within.
        r = ((impulse + model.max_reward) * max(1.0, aligned) * 1.5
             + 0.375)
        erlang = ErlangEngine(phases=4096).joint_probability_vector(
            spiked, aligned, r, {0})
        engine = DiscretizationEngine(step=step)
        indicator = np.zeros(spiked.num_states)
        indicator[0] = 1.0
        for s in range(spiked.num_states):
            discretized = engine.joint_probability_from(
                spiked, aligned, r, indicator, s)
            assert erlang[s] == pytest.approx(discretized, abs=0.05)


# ----------------------------------------------------------------------
# logic properties
# ----------------------------------------------------------------------

class TestFormulaProperties:
    @given(formula=state_formulas())
    @settings(max_examples=150, deadline=None)
    def test_print_parse_roundtrip(self, formula):
        assert parse_formula(str(formula)) == formula

    @given(formula=state_formulas())
    @settings(max_examples=80, deadline=None)
    def test_subformula_count_at_least_ap_count(self, formula):
        subformulas = list(formula.subformulas())
        assert len(subformulas) >= len(formula.atomic_propositions())

    @given(formula=state_formulas(depth=2), model=small_mrms())
    @settings(max_examples=30, deadline=None)
    def test_checker_boolean_consistency(self, model, formula):
        """Sat(!phi) is the complement of Sat(phi) for any phi that the
        checker can handle; skip formulas outside the decidable
        fragment (non-downward-closed bounds)."""
        from repro.errors import ReproError
        from repro.mc import ModelChecker
        checker = ModelChecker(model, epsilon=1e-8)
        try:
            positive = checker.satisfaction_set(formula)
            negative = checker.satisfaction_set(ast.Not(formula))
        except ReproError:
            assume(False)
        assert positive | negative == frozenset(range(model.num_states))
        assert positive & negative == frozenset()
