"""Unit tests for the performability measures module."""

import numpy as np
import pytest

from repro.ctmc import ModelBuilder
from repro.mc import measures
from repro.models.workloads import degradable_multiprocessor


class TestPerformabilityDistribution:
    def test_two_state_closed_form(self, two_state_absorbing):
        # Y_t = min(T, t) with T ~ Exp(mu): Pr{Y_t <= r} = 1 - e^{-mu r}
        # for r < t (and 1 for r >= t).
        t, r = 3.0, 1.2
        value = measures.performability_distribution(
            two_state_absorbing, t, r)
        assert value == pytest.approx(1.0 - np.exp(-0.7 * r), abs=1e-9)

    def test_r_at_least_t_is_certain(self, two_state_absorbing):
        value = measures.performability_distribution(
            two_state_absorbing, 3.0, 3.0)
        assert value == pytest.approx(1.0, abs=1e-9)

    def test_cdf_monotone(self, three_level_chain):
        t = 2.0
        grid = np.linspace(0.0, 6.0, 13)
        values = [measures.performability_distribution(
            three_level_chain, t, r) for r in grid]
        assert all(later >= earlier - 1e-9
                   for earlier, later in zip(values, values[1:]))
        assert values[-1] == pytest.approx(1.0, abs=1e-9)

    def test_engine_selection(self, two_state_absorbing):
        t, r = 2.0, 1.0
        sericola = measures.performability_distribution(
            two_state_absorbing, t, r, engine="sericola")
        from repro.algorithms import ErlangEngine
        erlang = measures.performability_distribution(
            two_state_absorbing, t, r, engine=ErlangEngine(phases=1024))
        assert erlang == pytest.approx(sericola, abs=5e-4)

    def test_vector_variant(self, two_state_absorbing):
        vector = measures.performability_distribution_vector(
            two_state_absorbing, 3.0, 1.2)
        assert vector.shape == (2,)
        assert vector[1] == pytest.approx(1.0)  # zero-reward absorbing

    def test_meyer_multiprocessor_example(self):
        """Meyer's setting: accumulated computation of a degradable
        multiprocessor.  With no repair and 2 processors the work done
        by time t is stochastically below 2t, and the distribution at
        r = 2t must be 1."""
        model = degradable_multiprocessor(2, failure_rate=0.5,
                                          repair_rate=0.0)
        t = 1.0
        assert measures.performability_distribution(model, t, 2 * t) \
            == pytest.approx(1.0, abs=1e-9)
        partial = measures.performability_distribution(model, t, t)
        assert 0.0 < partial < 1.0


class TestExpectedRewards:
    def test_expected_rate_at_time_zero(self, three_level_chain):
        assert measures.expected_reward_rate(three_level_chain, 0.0) \
            == pytest.approx(3.0)

    def test_accumulated_at_most_peak(self, three_level_chain):
        t = 2.0
        value = measures.expected_accumulated_reward(three_level_chain, t)
        assert 0.0 < value <= 3.0 * t

    def test_long_run_reward_rate_irreducible(self, flip_flop):
        rates = measures.long_run_reward_rate(flip_flop)
        # pi = (0.75, 0.25), rewards (2, 0).
        assert np.allclose(rates, 1.5)

    def test_long_run_reward_rate_reducible(self):
        builder = ModelBuilder()
        builder.add_state("start", reward=9.0)
        builder.add_state("left", reward=2.0)
        builder.add_state("right", reward=4.0)
        builder.add_transition("start", "left", 1.0)
        builder.add_transition("start", "right", 3.0)
        model = builder.build()
        rates = measures.long_run_reward_rate(model)
        assert rates[0] == pytest.approx(0.25 * 2.0 + 0.75 * 4.0)
        assert rates[1] == pytest.approx(2.0)
        assert rates[2] == pytest.approx(4.0)
