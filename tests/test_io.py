"""Unit tests for the MRMC-style file I/O."""

import numpy as np
import pytest

from repro.ctmc import ModelBuilder, io
from repro.errors import ModelError


@pytest.fixture
def model():
    builder = ModelBuilder()
    builder.add_state("a", labels=("green",), reward=2.5)
    builder.add_state("b", labels=("green", "red"))
    builder.add_state("c", reward=1.0)
    builder.add_transition("a", "b", 0.5)
    builder.add_transition("b", "c", 1.25)
    builder.add_transition("c", "a", 3.0)
    return builder.build(initial_state="a")


class TestRoundTrip:
    def test_full_round_trip(self, model, tmp_path):
        base = tmp_path / "model"
        io.save_mrm(model, base)
        loaded = io.load_mrm(base)
        assert loaded.num_states == model.num_states
        assert np.allclose(loaded.rate_matrix.toarray(),
                           model.rate_matrix.toarray())
        assert np.allclose(loaded.rewards, model.rewards)
        assert loaded.states_with("green") == model.states_with("green")
        assert loaded.states_with("red") == model.states_with("red")

    def test_round_trip_preserves_exact_floats(self, model, tmp_path):
        base = tmp_path / "model"
        io.save_mrm(model, base)
        loaded = io.load_mrm(base)
        # repr-based serialisation is lossless for doubles.
        assert loaded.rate(1, 2) == 1.25

    def test_missing_optional_files(self, model, tmp_path):
        base = tmp_path / "model"
        io.write_tra(model, str(base) + ".tra")
        loaded = io.load_mrm(base)
        assert np.allclose(loaded.rewards, 0.0)
        assert loaded.atomic_propositions == []

    def test_initial_state_selection(self, model, tmp_path):
        base = tmp_path / "model"
        io.save_mrm(model, base)
        loaded = io.load_mrm(base, initial_state=2)
        assert loaded.initial_distribution[2] == 1.0

    def test_initial_state_out_of_range(self, model, tmp_path):
        base = tmp_path / "model"
        io.save_mrm(model, base)
        with pytest.raises(ModelError):
            io.load_mrm(base, initial_state=10)


class TestTraParsing:
    def test_reads_basic_file(self, tmp_path):
        path = tmp_path / "m.tra"
        path.write_text("STATES 2\nTRANSITIONS 1\n1 2 0.5\n")
        matrix = io.read_tra(path)
        assert matrix.shape == (2, 2)
        assert matrix[0, 1] == 0.5

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "m.tra"
        path.write_text(
            "% a comment\nSTATES 2\n\nTRANSITIONS 1\n# more\n1 2 0.5\n")
        assert io.read_tra(path).nnz == 1

    def test_missing_states_header(self, tmp_path):
        path = tmp_path / "m.tra"
        path.write_text("1 2 0.5\n")
        with pytest.raises(ModelError, match="STATES"):
            io.read_tra(path)

    def test_transition_count_mismatch(self, tmp_path):
        path = tmp_path / "m.tra"
        path.write_text("STATES 2\nTRANSITIONS 5\n1 2 0.5\n")
        with pytest.raises(ModelError, match="promises"):
            io.read_tra(path)

    def test_out_of_range_state(self, tmp_path):
        path = tmp_path / "m.tra"
        path.write_text("STATES 2\nTRANSITIONS 1\n1 7 0.5\n")
        with pytest.raises(ModelError, match="outside"):
            io.read_tra(path)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "m.tra"
        path.write_text("STATES 2\nTRANSITIONS 1\n1 2 0.5 9\n")
        with pytest.raises(ModelError, match="expected"):
            io.read_tra(path)

    def test_duplicate_transitions_accumulate(self, tmp_path):
        path = tmp_path / "m.tra"
        path.write_text("STATES 2\nTRANSITIONS 2\n1 2 0.5\n1 2 0.25\n")
        assert io.read_tra(path)[0, 1] == 0.75


class TestLabParsing:
    def test_declaration_enforced(self, tmp_path):
        path = tmp_path / "m.lab"
        path.write_text("#DECLARATION\ngreen\n#END\n1 red\n")
        with pytest.raises(ModelError, match="not declared"):
            io.read_lab(path, 2)

    def test_declared_but_unused_label_is_empty(self, tmp_path):
        path = tmp_path / "m.lab"
        path.write_text("#DECLARATION\ngreen red\n#END\n1 green\n")
        labels = io.read_lab(path, 2)
        assert labels["red"] == set()
        assert labels["green"] == {0}

    def test_without_declaration_block(self, tmp_path):
        path = tmp_path / "m.lab"
        path.write_text("1 green\n2 green red\n")
        labels = io.read_lab(path, 2)
        assert labels["green"] == {0, 1}
        assert labels["red"] == {1}

    def test_state_out_of_range(self, tmp_path):
        path = tmp_path / "m.lab"
        path.write_text("5 green\n")
        with pytest.raises(ModelError, match="outside"):
            io.read_lab(path, 2)


class TestRewiRoundTrip:
    def test_impulse_round_trip(self, tmp_path):
        builder = ModelBuilder()
        builder.add_state("a")
        builder.add_state("b")
        builder.add_transition("a", "b", 1.0, impulse=2.5)
        builder.add_transition("b", "a", 2.0)
        model = builder.build()
        base = tmp_path / "model"
        io.save_mrm(model, base)
        assert (tmp_path / "model.rewi").exists()
        loaded = io.load_mrm(base)
        assert loaded.has_impulse_rewards
        assert loaded.impulse(0, 1) == 2.5
        assert loaded.impulse(1, 0) == 0.0

    def test_no_rewi_without_impulses(self, model, tmp_path):
        io.save_mrm(model, tmp_path / "model")
        assert not (tmp_path / "model.rewi").exists()

    def test_rewi_state_out_of_range(self, tmp_path):
        path = tmp_path / "m.rewi"
        path.write_text("1 9 2.0\n")
        with pytest.raises(ModelError, match="outside"):
            io.read_rewi(path, 2)

    def test_rewi_malformed_line(self, tmp_path):
        path = tmp_path / "m.rewi"
        path.write_text("1 2\n")
        with pytest.raises(ModelError, match="expected"):
            io.read_rewi(path, 2)


class TestRewParsing:
    def test_reads_rewards(self, tmp_path):
        path = tmp_path / "m.rew"
        path.write_text("1 2.5\n3 1.0\n")
        rewards = io.read_rew(path, 3)
        assert np.allclose(rewards, [2.5, 0.0, 1.0])

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "m.rew"
        path.write_text("1 2.5 extra\n")
        with pytest.raises(ModelError, match="expected"):
            io.read_rew(path, 2)

    def test_zero_rewards_not_written(self, model, tmp_path):
        path = tmp_path / "m.rew"
        io.write_rew(model, path)
        content = path.read_text()
        assert "2 " not in content  # state b has reward 0
        assert content.count("\n") == 2
