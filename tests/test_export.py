"""Tests for the DOT export helpers."""

import pytest

from repro.ctmc.export import model_to_dot, srn_to_dot
from repro.models.adhoc import adhoc_model, build_adhoc_srn


class TestModelExport:
    def test_basic_structure(self, two_state_absorbing):
        dot = model_to_dot(two_state_absorbing)
        assert dot.startswith("digraph mrm {")
        assert dot.rstrip().endswith("}")
        assert "s0 -> s1" in dot
        assert "0.7" in dot

    def test_rewards_and_labels_shown(self, two_state_absorbing):
        dot = model_to_dot(two_state_absorbing)
        assert "rho=1" in dot
        assert "green" in dot

    def test_absorbing_state_double_circle(self, two_state_absorbing):
        dot = model_to_dot(two_state_absorbing)
        assert "peripheries=2" in dot

    def test_initial_state_bold(self, two_state_absorbing):
        dot = model_to_dot(two_state_absorbing)
        assert "style=bold" in dot

    def test_impulses_on_edges(self):
        from repro.ctmc import ModelBuilder
        builder = ModelBuilder()
        builder.add_state("a")
        builder.add_state("b")
        builder.add_transition("a", "b", 2.0, impulse=5.0)
        dot = model_to_dot(builder.build())
        assert "2 / +5" in dot

    def test_case_study_renders(self, adhoc):
        dot = model_to_dot(adhoc, graph_name="station")
        assert "digraph station" in dot
        assert dot.count("->") == adhoc.num_transitions


class TestSrnExport:
    def test_case_study_net(self):
        dot = srn_to_dot(build_adhoc_srn())
        assert "p_call_idle" in dot
        assert "t_launch" in dot
        assert "p_call_idle -> t_launch" in dot
        assert "t_wake_up -> p_call_idle" in dot

    def test_inhibitors_and_immediates(self):
        from repro.srn import StochasticRewardNet
        net = StochasticRewardNet()
        net.add_place("p", tokens=2)
        net.add_place("q")
        net.add_timed_transition("t", 1.0, inputs=[("p", 2)],
                                 inhibitors=["q"])
        net.add_immediate_transition("i", inputs=["q"])
        dot = srn_to_dot(net)
        assert "arrowhead=odot" in dot
        assert "fillcolor=black" in dot
        assert 'label="2"' in dot

    def test_marking_dependent_rate_placeholder(self):
        from repro.srn import StochasticRewardNet
        net = StochasticRewardNet()
        net.add_place("p", tokens=1)
        net.add_timed_transition("t", lambda m: m["p"] * 2.0,
                                 inputs=["p"])
        assert "f(m)" in srn_to_dot(net)
