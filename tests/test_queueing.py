"""Tests for the M/M/1/K-with-breakdowns SRN model (impulse rewards
through the whole SRN -> MRM -> engines pipeline)."""

import numpy as np
import pytest

from repro.algorithms import DiscretizationEngine
from repro.mc import ModelChecker
from repro.models.queueing import mm1_breakdown_model
from repro.sim import estimate_joint_probability


@pytest.fixture(scope="module")
def queue():
    return mm1_breakdown_model(capacity=3, repair_cost=10.0)


class TestStructure:
    def test_state_count(self, queue):
        assert queue.num_states == 2 * 4

    def test_impulses_present(self, queue):
        assert queue.has_impulse_rewards
        # Every repair transition carries cost 10.
        impulses = queue.impulse_matrix
        assert impulses.nnz == 4  # one repair per queue length
        assert np.allclose(impulses.data, 10.0)

    def test_rewards(self, queue):
        busy = queue.states_with("busy")
        for s in range(queue.num_states):
            expected = 3.0 if s in busy else 0.0
            assert queue.reward(s) == expected

    def test_capacity_inhibitor(self, queue):
        # The arrival transition (rate 1.0) is inhibited in full
        # states: their exit rates are exactly serve+fail (up) and
        # repair (down).
        full = queue.states_with("full")
        assert len(full) == 2  # up and down variants
        up = queue.states_with("up")
        for s in full & up:
            assert queue.exit_rates[s] == pytest.approx(2.0 + 0.05)
        for s in full - up:
            assert queue.exit_rates[s] == pytest.approx(0.5)

    def test_service_requires_up(self, queue):
        # A down state with jobs can only be left by repair or
        # arrival: never directly to a state with fewer jobs.
        down = queue.states_with("down")
        idle = queue.states_with("idle")
        up = queue.states_with("up")
        for s in down - idle:
            for target in queue.successors(s):
                if target in down:
                    continue  # arrival while down
                assert target in up  # repair keeps the queue length


class TestAnalysis:
    def test_cost_bounded_service_outage(self, queue):
        """P3-type query on an impulse model: reach 'full' within
        t = 10 with total cost (energy + repairs) below 20."""
        checker = ModelChecker(
            queue, engine=DiscretizationEngine(step=1.0 / 64))
        result = checker.check("P>=0 [ true U[0,10][0,20] full ]")
        initial = int(np.argmax(queue.initial_distribution))
        value = result.probability_of(initial)
        assert 0.0 < value < 1.0

    def test_numeric_vs_simulation(self, queue):
        t, r = 6.0, 15.0
        target = set(queue.states_with("busy"))
        engine = DiscretizationEngine(step=1.0 / 64)
        indicator = np.zeros(queue.num_states)
        for s in target:
            indicator[s] = 1.0
        initial = int(np.argmax(queue.initial_distribution))
        numeric = engine.joint_probability_from(queue, t, r, indicator,
                                                initial)
        estimate = estimate_joint_probability(
            queue, t, r, target, samples=20_000, seed=5,
            initial_state=initial)
        assert abs(numeric - estimate.value) <= \
            estimate.half_width + 0.01

    def test_long_run_energy(self, queue):
        from repro.mc.measures import long_run_reward_rate
        rates = long_run_reward_rate(queue)
        # Busy some of the time: strictly between 0 and 3.
        assert np.all(rates > 0.0)
        assert np.all(rates < 3.0)
