"""Validation of the case-study model against facts from the paper.

These tests pin the reconstruction of Section 5 down to everything the
text lets us verify:

* the underlying MRM has nine (recurrent) states;
* the Q3 reduction has three transient + two absorbing states;
* the uniformisation rate of the reduced model is 19.5/h, so that
  lambda * t = 468 reproduces Table 2's truncation column exactly;
* per-state rewards are the sums of Table 1's place currents;
* the engines reproduce the paper's convergence *shapes* (Tables 2-4);
* the headline Q3 value is close to the paper's 0.49540399 (the
  residual ~0.3% gap is the model-reconstruction tolerance discussed
  in EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.algorithms import (DiscretizationEngine, ErlangEngine,
                              SericolaEngine)
from repro.mc import ModelChecker
from repro.models import adhoc


class TestStructure:
    def test_nine_states(self, adhoc):
        assert adhoc.num_states == 9

    def test_irreducible(self, adhoc):
        from repro.ctmc import graph
        assert graph.bottom_sccs(adhoc) == [set(range(9))]

    def test_reduction_shape(self, adhoc_reduced):
        model = adhoc_reduced.model
        assert model.num_states == 5
        transient = [s for s in range(5) if not model.is_absorbing(s)]
        assert len(transient) == 3

    def test_uniformization_rate(self, adhoc_reduced):
        assert adhoc_reduced.model.max_exit_rate == pytest.approx(19.5)

    def test_rewards_are_additive(self, adhoc):
        by_name = {adhoc.name_of(s): adhoc.reward(s)
                   for s in range(adhoc.num_states)}
        assert by_name["call_idle+adhoc_idle"] == 100.0
        assert by_name["call_idle+adhoc_active"] == 200.0
        assert by_name["call_active+adhoc_active"] == 350.0
        assert by_name["doze"] == 20.0

    def test_initial_marking(self, adhoc):
        initial = int(np.argmax(adhoc.initial_distribution))
        assert adhoc.name_of(initial) == "call_idle+adhoc_idle"

    def test_table1_rates(self, adhoc):
        idx = {adhoc.name_of(s): s for s in range(9)}
        both_idle = idx["call_idle+adhoc_idle"]
        assert adhoc.rate(both_idle, idx["doze"]) == 12.0
        assert adhoc.rate(both_idle,
                          idx["call_idle+adhoc_active"]) == 6.0
        assert adhoc.rate(both_idle,
                          idx["call_initiated+adhoc_idle"]) == 0.75
        assert adhoc.rate(idx["doze"], both_idle) == 3.75
        assert adhoc.rate(idx["call_active+adhoc_idle"],
                          both_idle) == 15.0

    def test_doze_needs_both_threads_idle(self, adhoc):
        idx = {adhoc.name_of(s): s for s in range(9)}
        assert adhoc.rate(idx["call_idle+adhoc_active"],
                          idx["doze"]) == 0.0


class TestProperties:
    @pytest.fixture(scope="class")
    def checker(self):
        return ModelChecker(adhoc.adhoc_model(), epsilon=1e-9)

    def test_q2_time_bounded(self, checker):
        result = checker.check(adhoc.Q2)
        # An incoming call rings every ~80 min on average; within 24 h
        # one arrives almost surely.
        initial = 0
        assert result.probability_of(initial) > 0.99
        assert result.holds_initially

    def test_q1_reward_bounded(self, checker):
        result = checker.check(adhoc.Q1)
        initial = 0
        # 600 mAh at >= 100 mA lasts at most 6 h; a ring at rate
        # 0.75/h is not certain within that window, but likely.
        assert 0.5 < result.probability_of(initial) < 1.0

    def test_q3_value_close_to_paper(self, checker):
        result = checker.check(adhoc.Q3)
        value = result.probability_of(0)
        assert value == pytest.approx(adhoc.Q3_REFERENCE_VALUE,
                                      abs=2e-3)

    def test_q3_decision_is_borderline(self, checker):
        # The paper's point: the probability is ~0.4954, *just* below
        # the 0.5 bound, so Q3 does not hold in the initial state.
        result = checker.check(adhoc.Q3)
        assert not result.holds_initially


class TestTable2Shape:
    def test_truncation_depths(self, adhoc_reduced):
        for epsilon, depth, _value in adhoc.TABLE2_OCCUPATION_TIME:
            engine = SericolaEngine(epsilon=epsilon)
            engine.joint_probability_vector(
                adhoc_reduced.model, adhoc.Q3_TIME_BOUND,
                adhoc.Q3_REWARD_BOUND, [adhoc_reduced.goal_state])
            assert engine.last_diagnostics.truncation_steps == depth

    def test_convergence_from_below(self, adhoc_reduced):
        values = []
        for epsilon, _depth, _value in adhoc.TABLE2_OCCUPATION_TIME:
            engine = SericolaEngine(epsilon=epsilon)
            values.append(engine.joint_probability_vector(
                adhoc_reduced.model, adhoc.Q3_TIME_BOUND,
                adhoc.Q3_REWARD_BOUND, [adhoc_reduced.goal_state])[0])
        assert all(np.diff(values) > 0.0)

    def test_truncation_deficit_tracks_paper(self, adhoc_reduced):
        """The *shape* of Table 2: how far each epsilon row falls short
        of the converged value must match the paper's rows closely
        (this is independent of the small model-parameter residual)."""
        paper_exact = adhoc.TABLE2_OCCUPATION_TIME[-1][2]
        ours = {}
        for epsilon, _depth, _value in adhoc.TABLE2_OCCUPATION_TIME:
            engine = SericolaEngine(epsilon=epsilon)
            ours[epsilon] = engine.joint_probability_vector(
                adhoc_reduced.model, adhoc.Q3_TIME_BOUND,
                adhoc.Q3_REWARD_BOUND, [adhoc_reduced.goal_state])[0]
        our_exact = ours[1e-8]
        for epsilon, _depth, paper_value in \
                adhoc.TABLE2_OCCUPATION_TIME[:-1]:
            paper_deficit = paper_exact - paper_value
            our_deficit = our_exact - ours[epsilon]
            assert our_deficit == pytest.approx(
                paper_deficit, rel=0.25, abs=1e-6)


class TestTable3Shape:
    @pytest.fixture(scope="class")
    def exact(self, adhoc_reduced):
        engine = SericolaEngine(epsilon=1e-10)
        return engine.joint_probability_vector(
            adhoc_reduced.model, 24.0, 600.0,
            [adhoc_reduced.goal_state])[0]

    def test_erlang_converges_from_below(self, adhoc_reduced, exact):
        values = []
        for phases in (1, 4, 16, 64, 256):
            engine = ErlangEngine(phases=phases)
            values.append(engine.joint_probability_vector(
                adhoc_reduced.model, 24.0, 600.0,
                [adhoc_reduced.goal_state])[0])
        assert all(np.diff(values) > 0.0)
        assert all(value < exact for value in values)

    def test_relative_errors_track_paper(self, adhoc_reduced, exact):
        """Table 3's error column: the pseudo-Erlang relative error at
        each k must be within a factor ~1.6 of the paper's."""
        for phases, _value, paper_error_pct in \
                adhoc.TABLE3_PSEUDO_ERLANG[:9]:
            engine = ErlangEngine(phases=phases)
            value = engine.joint_probability_vector(
                adhoc_reduced.model, 24.0, 600.0,
                [adhoc_reduced.goal_state])[0]
            error_pct = 100.0 * (exact - value) / exact
            assert error_pct == pytest.approx(paper_error_pct, rel=0.6)


class TestTable4Shape:
    def test_discretization_errors_shrink(self, adhoc_reduced):
        engine_exact = SericolaEngine(epsilon=1e-10)
        exact = engine_exact.joint_probability_vector(
            adhoc_reduced.model, 24.0, 600.0,
            [adhoc_reduced.goal_state])[0]
        indicator = np.zeros(adhoc_reduced.model.num_states)
        indicator[adhoc_reduced.goal_state] = 1.0
        init = int(np.argmax(adhoc_reduced.model.initial_distribution))
        errors = []
        for step in (1.0 / 64, 1.0 / 128):
            engine = DiscretizationEngine(step=step)
            value = engine.joint_probability_from(
                adhoc_reduced.model, 24.0, 600.0, indicator, init)
            errors.append(abs(value - exact))
        assert errors[1] < errors[0]
        assert errors[0] / exact < 0.0005  # paper: 0.05 percent
