"""Fault injection and robustness: certified intervals, graceful
degradation, worker failure isolation, budgets and cache eviction."""

from __future__ import annotations

import itertools
import threading
import time

import numpy as np
import pytest

from repro.algorithms import (DiscretizationEngine, ErlangEngine,
                              SericolaEngine, clear_caches, deadline_map,
                              joint_cache, richardson_bracket,
                              threaded_map, value_nbytes)
from repro.algorithms.base import JointEngine
from repro.algorithms.cache import LRUCache
from repro.ctmc import CTMC, ModelBuilder
from repro.ctmc.mrm import MarkovRewardModel
from repro.errors import (BudgetExhaustedError, ConvergenceError,
                          ModelError, NumericalError,
                          ParallelExecutionError, RewardError,
                          UnsupportedFormulaError, WorkerError)
from repro.mc import (Budget, CertifiedChecker, ModelChecker, Verdict,
                      interval_verdict)
from repro.models import adhoc
from repro.srn import StochasticRewardNet, build_mrm


def _engines():
    return [SericolaEngine(epsilon=1e-8),
            ErlangEngine(phases=16),
            DiscretizationEngine(step=1.0 / 16)]


class FailingEngine(JointEngine):
    """An engine whose every computation raises (injected fault)."""

    name = "failing"

    def _compute_joint_vector(self, model, t, r, indicator):
        raise ConvergenceError("injected non-convergence")

    def _compute_joint_interval(self, model, t, r, indicator):
        raise ConvergenceError("injected non-convergence")


# ----------------------------------------------------------------------
# satellite 1: model construction hardening
# ----------------------------------------------------------------------

class TestModelHardening:
    def test_nan_rate_names_entry(self):
        with pytest.raises(ModelError, match=r"finite.*\(0, 1\).*NaN"):
            CTMC([[0.0, float("nan")], [1.0, 0.0]])

    def test_infinite_rate_names_entry(self):
        with pytest.raises(ModelError,
                           match=r"finite.*\(1, 0\).*infinite"):
            CTMC([[0.0, 1.0], [float("inf"), 0.0]])

    def test_generator_matrix_detected(self):
        # Q = R - diag(E) has negative diagonal entries only.
        with pytest.raises(ModelError, match="generator matrix Q"):
            CTMC([[-1.0, 1.0], [2.0, -2.0]])

    def test_negative_off_diagonal_names_entry(self):
        with pytest.raises(ModelError,
                           match=r"non-negative.*\(0, 1\)"):
            CTMC([[0.0, -3.0], [1.0, 0.0]])

    def test_nan_initial_distribution(self):
        with pytest.raises(ModelError, match="finite"):
            CTMC([[0.0, 1.0], [1.0, 0.0]],
                 initial_distribution=[float("nan"), 1.0])

    def test_empty_state_space(self):
        with pytest.raises(ModelError, match="at least one state"):
            CTMC(np.zeros((0, 0)))

    def test_nan_reward_names_state(self):
        with pytest.raises(RewardError, match="state 1 is NaN"):
            MarkovRewardModel([[0.0, 1.0], [1.0, 0.0]],
                              rewards=[1.0, float("nan")])

    def test_infinite_reward_names_state(self):
        with pytest.raises(RewardError, match="state 0 is infinite"):
            MarkovRewardModel([[0.0, 1.0], [1.0, 0.0]],
                              rewards=[float("inf"), 0.0])

    def test_negative_reward_names_state(self):
        with pytest.raises(RewardError, match="state 1 is -2.0"):
            MarkovRewardModel([[0.0, 1.0], [1.0, 0.0]],
                              rewards=[1.0, -2.0])

    def test_nan_impulse_names_transition(self):
        with pytest.raises(RewardError, match=r"\(0, 1\).*NaN"):
            MarkovRewardModel([[0.0, 1.0], [1.0, 0.0]],
                              impulse_rewards={(0, 1): float("nan")})

    def test_builder_rejects_nan_state_reward(self):
        builder = ModelBuilder()
        with pytest.raises(ModelError, match="'bad'.*non-finite"):
            builder.add_state("bad", reward=float("nan"))

    def test_builder_rejects_nan_rate(self):
        builder = ModelBuilder()
        builder.add_state("a")
        builder.add_state("b")
        with pytest.raises(ModelError,
                           match="non-finite rate.*'a' -> 'b'"):
            builder.add_transition("a", "b", float("nan"))

    def test_builder_rejects_infinite_impulse(self):
        builder = ModelBuilder()
        builder.add_state("a")
        builder.add_state("b")
        with pytest.raises(ModelError, match="non-finite impulse"):
            builder.add_transition("a", "b", 1.0,
                                   impulse=float("inf"))

    def test_builder_rejects_nan_set_reward(self):
        builder = ModelBuilder()
        builder.add_state("a")
        with pytest.raises(ModelError, match="non-finite reward"):
            builder.set_reward("a", float("nan"))

    def test_srn_rejects_nan_rate_function(self):
        net = StochasticRewardNet()
        net.add_place("p", tokens=1)
        net.add_timed_transition("t", rate=lambda m: float("nan"),
                                 inputs=["p"], outputs=["p"])
        with pytest.raises(ModelError, match="non-finite rate"):
            build_mrm(net)

    def test_srn_rejects_nan_reward_function(self):
        net = StochasticRewardNet()
        net.add_place("p", tokens=1)
        net.add_timed_transition("t", rate=1.0,
                                 inputs=["p"], outputs=["p"])
        net.set_reward(lambda m: float("nan"))
        with pytest.raises(ModelError, match="non-finite reward"):
            build_mrm(net)


# ----------------------------------------------------------------------
# tentpole: certified interval soundness
# ----------------------------------------------------------------------

class TestIntervalSoundness:
    @pytest.mark.parametrize("engine", _engines(),
                             ids=lambda e: e.name)
    def test_interval_contains_point_value(self, flip_flop, engine):
        point = engine.joint_probability_vector(flip_flop, 1.5, 2.0, [1])
        lower, upper = engine.joint_probability_interval(
            flip_flop, 1.5, 2.0, [1])
        assert np.all(lower <= point + 1e-12)
        assert np.all(point <= upper + 1e-12)
        assert np.all(lower >= 0.0) and np.all(upper <= 1.0)

    @pytest.mark.parametrize("engine", _engines(),
                             ids=lambda e: e.name)
    def test_interval_contains_closed_form(self, two_state_absorbing,
                                           engine):
        # Pr{Y_t <= r, X_t = b | X_0 = a} = 1 - e^{-mu r} for r < t.
        t, r, mu = 2.0, 1.0, 0.7
        exact = 1.0 - np.exp(-mu * r)
        lower, upper = engine.joint_probability_interval(
            two_state_absorbing, t, r, [1])
        assert lower[0] <= exact <= upper[0]

    @pytest.mark.parametrize("engine", _engines(),
                             ids=lambda e: e.name)
    def test_refinement_shrinks_interval(self, three_level_chain,
                                         engine):
        lower, upper = engine.joint_probability_interval(
            three_level_chain, 1.0, 2.0, [2])
        refined = engine.refined()
        assert refined is not None
        tighter_lo, tighter_up = refined.joint_probability_interval(
            three_level_chain, 1.0, 2.0, [2])
        assert np.max(tighter_up - tighter_lo) <= \
            np.max(upper - lower) + 1e-15
        # The refined enclosure must overlap the coarse one (both are
        # sound, so both contain the exact value).
        assert np.all(np.maximum(lower, tighter_lo)
                      <= np.minimum(upper, tighter_up) + 1e-12)

    @pytest.mark.parametrize("engine", _engines(),
                             ids=lambda e: e.name)
    def test_interval_sweep_matches_scalar(self, flip_flop, engine):
        clear_caches()
        times, rewards = [0.5, 1.0], [0.5, 1.5]
        lower, upper = engine.joint_probability_interval_sweep(
            flip_flop, times, rewards, [1])
        for i, t in enumerate(times):
            for j, r in enumerate(rewards):
                lo, up = engine._worker_clone().joint_probability_interval(
                    flip_flop, t, r, [1])
                assert lower[i, j] == pytest.approx(lo, abs=1e-12)
                assert upper[i, j] == pytest.approx(up, abs=1e-12)

    def test_richardson_bracket_contains_both_points(self):
        lower, upper = richardson_bracket(np.array([0.4]),
                                          np.array([0.45]))
        assert lower[0] <= 0.4 <= upper[0]
        assert lower[0] <= 0.45 <= upper[0]
        assert lower[0] >= 0.0 and upper[0] <= 1.0

    def test_extreme_rate_scales(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=1.0)
        builder.add_state("z", reward=0.0)
        builder.add_transition("a", "z", 1e8)
        fast = builder.build()
        exact = 1.0 - np.exp(-1e8 * 0.5e-8)
        lower, upper = SericolaEngine(
            epsilon=1e-10).joint_probability_interval(
                fast, 1e-8, 0.5e-8, [1])
        assert lower[0] <= exact <= upper[0]

        builder = ModelBuilder()
        builder.add_state("a", reward=1e-8)
        builder.add_state("z", reward=0.0)
        builder.add_transition("a", "z", 1e-8)
        slow = builder.build()
        exact = 1.0 - np.exp(-1e-8 * 0.5e8)
        lower, upper = SericolaEngine(
            epsilon=1e-10).joint_probability_interval(
                slow, 1e8, 1e-8 * 0.5e8, [1])
        assert lower[0] <= exact <= upper[0]

    @pytest.mark.parametrize("engine", _engines(),
                             ids=lambda e: e.name)
    def test_degenerate_single_absorbing_state(self, engine):
        builder = ModelBuilder()
        builder.add_state("only", reward=0.0)
        model = builder.build()
        lower, upper = engine.joint_probability_interval(
            model, 2.0, 1.0, [0])
        assert lower[0] <= 1.0 <= upper[0] + 1e-12
        assert upper[0] == pytest.approx(1.0)

    @pytest.mark.parametrize("engine", _engines(),
                             ids=lambda e: e.name)
    def test_degenerate_all_zero_rewards(self, engine):
        builder = ModelBuilder()
        builder.add_state("u", reward=0.0)
        builder.add_state("d", reward=0.0)
        builder.add_transition("u", "d", 1.0)
        builder.add_transition("d", "u", 3.0)
        model = builder.build()
        # Y_t = 0, so the joint probability equals the transient one.
        point = engine.joint_probability_vector(model, 1.0, 0.0, [1])
        lower, upper = engine.joint_probability_interval(
            model, 1.0, 0.0, [1])
        assert np.all(lower <= point + 1e-12)
        assert np.all(point <= upper + 1e-12)


class TestReferenceIntervals:
    """Acceptance: on the Table 2--4 reference query every engine's
    certified interval contains its own point value and the three
    engines' intervals mutually overlap."""

    def test_engines_bracket_reference_query(self, adhoc_reduced):
        model = adhoc_reduced.model
        goal = [adhoc_reduced.goal_state]
        t, r = adhoc.Q3_TIME_BOUND, adhoc.Q3_REWARD_BOUND
        engines = [SericolaEngine(epsilon=1e-6),
                   ErlangEngine(phases=32),
                   DiscretizationEngine(step=1.0 / 32)]
        intervals = []
        for engine in engines:
            point = engine.joint_probability_vector(model, t, r, goal)
            lower, upper = engine.joint_probability_interval(
                model, t, r, goal)
            assert np.all(lower <= point + 1e-12), engine.name
            assert np.all(point <= upper + 1e-12), engine.name
            intervals.append((engine.name, lower, upper))
        for (n1, lo1, up1), (n2, lo2, up2) in \
                itertools.combinations(intervals, 2):
            assert np.all(np.maximum(lo1, lo2)
                          <= np.minimum(up1, up2) + 1e-12), (n1, n2)


# ----------------------------------------------------------------------
# satellite 2: worker failure isolation
# ----------------------------------------------------------------------

class TestWorkerFailureIsolation:
    @staticmethod
    def _flaky(item):
        if item % 3 == 1:
            raise ValueError(f"boom on {item}")
        return item * 10

    def test_threaded_map_wraps_failures_with_context(self):
        # One worker per task, so nothing is cancelled and *both*
        # failures are guaranteed to run and be collected.
        with pytest.raises(ParallelExecutionError) as excinfo:
            threaded_map(self._flaky, list(range(6)), max_workers=6,
                         labels=[f"item-{i}" for i in range(6)])
        error = excinfo.value
        assert isinstance(error, NumericalError)
        assert error.total == 6
        indices = sorted(f.index for f in error.failures)
        assert indices == [1, 4]
        for failure in error.failures:
            assert isinstance(failure, WorkerError)
            assert f"item-{failure.index}" in str(failure)
            assert "boom" in str(failure)
            assert isinstance(failure.cause, ValueError)

    def test_threaded_map_sequential_path_wraps_too(self):
        with pytest.raises(ParallelExecutionError) as excinfo:
            threaded_map(self._flaky, [1], max_workers=1)
        assert excinfo.value.failures[0].index == 0

    def test_threaded_map_success_unchanged(self):
        assert threaded_map(lambda x: x + 1, [1, 2, 3],
                            max_workers=2) == [2, 3, 4]

    def test_deadline_map_isolates_failures(self):
        results, completed, failures = deadline_map(
            self._flaky, list(range(5)), deadline=None, max_workers=2)
        assert [results[i] for i in (0, 2, 3)] == [0, 20, 30]
        assert list(completed) == [True, False, True, True, False]
        assert {f.index for f in failures} == {1, 4}

    def test_deadline_map_expired_deadline_cancels(self):
        started = []

        def slow(item):
            started.append(item)
            time.sleep(0.05)
            return item

        past = time.monotonic() - 1.0
        results, completed, failures = deadline_map(
            slow, list(range(8)), deadline=past, max_workers=2)
        assert not failures
        # The cancel sweep prevents the bulk of the grid from ever
        # starting; at most the tasks the two workers had already
        # picked up can complete.
        assert sum(completed) < 8
        assert len(started) < 8
        assert all(results[i] is None
                   for i, done in enumerate(completed) if not done)


# ----------------------------------------------------------------------
# tentpole: mid-sweep deadline with partial results
# ----------------------------------------------------------------------

class SlowSericola(SericolaEngine):
    """Sericola with an injected per-computation delay."""

    delay = 0.08

    def _compute_joint_vector(self, model, t, r, indicator):
        time.sleep(self.delay)
        return super()._compute_joint_vector(model, t, r, indicator)


class TestPartialSweep:
    TIMES = [0.5, 1.0, 1.5]
    REWARDS = [0.5, 1.5]

    def test_deadline_returns_partial_grid(self, flip_flop):
        clear_caches()
        engine = SlowSericola(epsilon=1e-8)
        before = {t.ident for t in threading.enumerate()}
        deadline = time.monotonic() + 2.2 * SlowSericola.delay
        partial = engine.joint_probability_sweep_partial(
            flip_flop, self.TIMES, self.REWARDS, [1],
            deadline=deadline, max_workers=1)
        leftover = [t for t in threading.enumerate()
                    if t.ident not in before and t.is_alive()]
        assert not leftover, "worker threads left running"
        done = int(partial.completed.sum())
        assert 0 < done < 6
        assert len(partial.unevaluated) == 6 - done
        assert not partial.complete
        assert not partial.failures
        # Completed cells hold finite values, unevaluated ones NaN.
        for i in range(len(self.TIMES)):
            for j in range(len(self.REWARDS)):
                if partial.completed[i, j]:
                    assert np.all(np.isfinite(partial.grid[i, j]))
                else:
                    assert (i, j) in partial.unevaluated
                    assert np.all(np.isnan(partial.grid[i, j]))

    def test_completed_cells_survive_in_shared_cache(self, flip_flop):
        clear_caches()
        engine = SlowSericola(epsilon=1e-8)
        deadline = time.monotonic() + 2.2 * SlowSericola.delay
        partial = engine.joint_probability_sweep_partial(
            flip_flop, self.TIMES, self.REWARDS, [1],
            deadline=deadline, max_workers=1)
        assert not partial.complete
        # A retry without deadline completes the grid; the finished
        # cells are cache hits (no recomputation) and keep their values.
        fresh = SericolaEngine(epsilon=1e-8)
        resumed = fresh.joint_probability_sweep_partial(
            flip_flop, self.TIMES, self.REWARDS, [1])
        assert resumed.complete
        assert fresh.stats.cache_hits >= int(partial.completed.sum())
        for i in range(len(self.TIMES)):
            for j in range(len(self.REWARDS)):
                if partial.completed[i, j]:
                    assert resumed.grid[i, j] == pytest.approx(
                        partial.grid[i, j], abs=1e-15)

    def test_cell_failure_is_isolated(self, flip_flop):
        clear_caches()

        class FlakyCell(SericolaEngine):
            def _compute_joint_vector(self, model, t, r, indicator):
                if r == 1.5:
                    raise ConvergenceError("injected cell failure")
                return super()._compute_joint_vector(model, t, r,
                                                     indicator)

        partial = FlakyCell(
            epsilon=1e-8).joint_probability_sweep_partial(
                flip_flop, self.TIMES, self.REWARDS, [1],
                max_workers=2)
        assert partial.completed[:, 0].all()
        assert not partial.completed[:, 1].any()
        assert len(partial.failures) == 3
        for failure in partial.failures:
            assert "r=1.5" in str(failure)
            assert "injected cell failure" in str(failure)
        assert set(partial.unevaluated) == {(0, 1), (1, 1), (2, 1)}


# ----------------------------------------------------------------------
# tentpole: budgets, verdicts and the fallback chain
# ----------------------------------------------------------------------

class TestBudget:
    def test_round_accounting(self):
        budget = Budget(max_rounds=2)
        assert budget.take_round() and budget.take_round()
        assert not budget.take_round()
        assert budget.rounds_used == 2
        budget.restart()
        assert budget.take_round()

    def test_deadline_expiry(self):
        budget = Budget(seconds=0.01)
        assert not budget.expired
        time.sleep(0.03)
        assert budget.expired
        assert not budget.take_round()
        assert budget.remaining_seconds() == 0.0

    def test_validation(self):
        with pytest.raises(NumericalError, match="positive"):
            Budget(seconds=-1.0)
        with pytest.raises(NumericalError, match="max_rounds"):
            Budget(max_rounds=0)
        assert Budget.unlimited().remaining_seconds() == np.inf


class TestVerdicts:
    def test_interval_verdict_matrix(self):
        assert interval_verdict(0.1, 0.2, "<", 0.5) is Verdict.TRUE
        assert interval_verdict(0.6, 0.7, "<", 0.5) is Verdict.FALSE
        assert interval_verdict(0.4, 0.6, "<", 0.5) is Verdict.UNKNOWN
        assert interval_verdict(0.6, 0.7, ">=", 0.5) is Verdict.TRUE
        assert interval_verdict(0.1, 0.2, ">", 0.5) is Verdict.FALSE
        assert interval_verdict(0.5, 0.5, "<=", 0.5) is Verdict.TRUE

    def test_only_true_is_truthy(self):
        assert Verdict.TRUE
        assert not Verdict.FALSE
        assert not Verdict.UNKNOWN


class TestCertifiedChecker:
    FORMULA = "P>0.5 [ up U[0,1][0,3] down ]"

    def test_agrees_with_exact_checker(self, flip_flop):
        exact = ModelChecker(flip_flop).check(self.FORMULA)
        result = CertifiedChecker(flip_flop).check(self.FORMULA)
        expected = (Verdict.TRUE if exact.holds_initially
                    else Verdict.FALSE)
        assert result.verdict is expected
        assert np.all(result.lower <= exact.probabilities + 1e-9)
        assert np.all(exact.probabilities <= result.upper + 1e-9)
        assert not result.degraded

    def test_unknown_near_threshold_without_refinement(self, flip_flop):
        coarse = DiscretizationEngine(step=0.5)
        point = ModelChecker(
            flip_flop, engine=coarse).check(self.FORMULA)
        bound = float(point.probabilities[0])
        formula = f"P<{bound} [ up U[0,1][0,3] down ]"
        result = CertifiedChecker(
            flip_flop, chain=(DiscretizationEngine(step=0.5),),
            budget=Budget(max_rounds=1)).check(formula)
        assert result.verdict is Verdict.UNKNOWN
        assert result.lower[0] < bound < result.upper[0]
        assert any("budget" in f.reason for f in result.failures)

    def test_adaptive_refinement_decides(self, flip_flop):
        coarse = DiscretizationEngine(step=0.5)
        point = ModelChecker(
            flip_flop, engine=coarse).check(self.FORMULA)
        bound = float(point.probabilities[0])
        formula = f"P<{bound} [ up U[0,1][0,3] down ]"
        result = CertifiedChecker(
            flip_flop, chain=(DiscretizationEngine(step=0.5),),
            budget=Budget(max_rounds=8)).check(formula)
        assert result.verdict is not Verdict.UNKNOWN
        assert result.rounds_used > 1

    def test_e2e_graceful_degradation(self, flip_flop):
        """Acceptance: primary engine forced to fail -> correct verdict
        from the fallback, failure recorded in the result."""
        exact = ModelChecker(flip_flop).check(self.FORMULA)
        expected = (Verdict.TRUE if exact.holds_initially
                    else Verdict.FALSE)
        result = CertifiedChecker(
            flip_flop,
            chain=(FailingEngine(), "sericola")).check(self.FORMULA)
        assert result.verdict is expected
        assert result.engine == "sericola"
        assert result.degraded
        assert result.failures[0].engine == "failing"
        assert "injected non-convergence" in result.failures[0].reason

    def test_every_engine_failing_reports_unknown(self, flip_flop):
        result = CertifiedChecker(
            flip_flop,
            chain=(FailingEngine(), FailingEngine())).check(self.FORMULA)
        assert result.verdict is Verdict.UNKNOWN
        assert result.engine is None
        assert np.all(result.lower == 0.0)
        assert np.all(result.upper == 1.0)
        assert len(result.failures) == 2

    def test_target_width_drives_refinement(self, flip_flop):
        result = CertifiedChecker(
            flip_flop, chain=(SericolaEngine(epsilon=1e-2),),
            target_width=1e-4,
            budget=Budget(max_rounds=12)).check(self.FORMULA)
        assert result.width <= 1e-4
        assert result.rounds_used > 1

    def test_unsupported_formulas_raise(self, flip_flop):
        with pytest.raises(UnsupportedFormulaError, match="outermost P"):
            CertifiedChecker(flip_flop).check("up")
        with pytest.raises(UnsupportedFormulaError, match="finite"):
            CertifiedChecker(flip_flop).check(
                "P>0.5 [ up U[0,3] down ]")

    def test_checker_front_end_and_budget_errors(self, flip_flop):
        checker = ModelChecker(flip_flop)
        result = checker.check_certified(self.FORMULA)
        assert result.verdict in (Verdict.TRUE, Verdict.FALSE)
        assert isinstance(BudgetExhaustedError("x"), NumericalError)


# ----------------------------------------------------------------------
# satellite 3: cache byte cap and eviction accounting
# ----------------------------------------------------------------------

class TestCacheEviction:
    def test_value_nbytes(self):
        array = np.zeros(128)
        assert value_nbytes(array) == array.nbytes
        pair = (np.zeros(4), np.zeros(4))
        assert value_nbytes(pair) >= 2 * 32
        assert value_nbytes({"a": np.zeros(2)}) >= 16

    def test_byte_cap_evicts_lru(self):
        cache = LRUCache(maxsize=100, max_bytes=3 * 800)
        for name in "abcd":
            cache.put(name, np.zeros(100))  # 800 bytes each
        assert cache.get("a") is None       # oldest evicted
        assert cache.get("d") is not None
        assert cache.evictions == 1
        assert cache.nbytes <= 3 * 800

    def test_newest_entry_always_kept(self):
        cache = LRUCache(maxsize=100, max_bytes=8)
        evicted = cache.put("huge", np.zeros(1000))
        assert cache.get("huge") is not None
        assert evicted == 0

    def test_engine_counts_evictions(self, flip_flop):
        clear_caches()
        original = joint_cache.max_bytes
        joint_cache.max_bytes = 16
        try:
            engine = SericolaEngine(epsilon=1e-8)
            for r in (0.5, 1.0, 1.5, 2.0):
                engine.joint_probability_vector(flip_flop, 1.0, r, [1])
            assert engine.stats.cache_evictions > 0
            assert engine.stats.as_dict()["cache_evictions"] > 0
        finally:
            joint_cache.max_bytes = original
            clear_caches()

    def test_stats_merge_carries_evictions(self):
        from repro.algorithms.cache import EngineStats
        a, b = EngineStats(), EngineStats()
        b.cache_evictions = 3
        a.merge(b)
        assert a.cache_evictions == 3
