"""Unit tests for the embedded DTMC and unbounded reachability."""

import numpy as np
import pytest

from repro.ctmc import CTMC, ModelBuilder
from repro.numerics.dtmc import embedded_dtmc, reachability_probabilities


class TestEmbedded:
    def test_rows_are_stochastic(self):
        rates = np.array([[0.0, 1.0, 3.0],
                          [2.0, 0.0, 2.0],
                          [0.0, 0.0, 0.0]])
        jump = embedded_dtmc(CTMC(rates))
        assert np.allclose(np.asarray(jump.sum(axis=1)).ravel(), 1.0)

    def test_jump_probabilities(self):
        rates = np.array([[0.0, 1.0, 3.0],
                          [0.0, 0.0, 0.0],
                          [0.0, 0.0, 0.0]])
        jump = embedded_dtmc(CTMC(rates))
        assert jump[0, 1] == pytest.approx(0.25)
        assert jump[0, 2] == pytest.approx(0.75)

    def test_absorbing_states_self_loop(self):
        rates = np.array([[0.0, 1.0], [0.0, 0.0]])
        jump = embedded_dtmc(CTMC(rates))
        assert jump[1, 1] == 1.0


class TestReachability:
    def gamblers_ruin(self, p_up):
        """Random walk on 0..4 with absorbing ends."""
        builder = ModelBuilder()
        for i in range(5):
            builder.add_state(f"n{i}")
        for i in range(1, 4):
            builder.add_transition(i, i + 1, p_up)
            builder.add_transition(i, i - 1, 1.0 - p_up)
        return builder.build(initial_state=2)

    def test_symmetric_gamblers_ruin(self):
        model = self.gamblers_ruin(0.5)
        everything = set(range(5))
        probs = reachability_probabilities(model, everything, {4})
        assert np.allclose(probs, [0.0, 0.25, 0.5, 0.75, 1.0])

    def test_biased_gamblers_ruin(self):
        p = 2.0 / 3.0
        model = self.gamblers_ruin(p)
        everything = set(range(5))
        probs = reachability_probabilities(model, everything, {4})
        # Classic formula with ratio q/p = 1/2.
        ratio = (1.0 - p) / p
        expected = [(1 - ratio ** k) / (1 - ratio ** 4) for k in range(5)]
        assert np.allclose(probs, expected)

    def test_rates_do_not_matter(self):
        # Unbounded reachability only sees the jump chain: scaling all
        # rates of a state must not change it.
        builder = ModelBuilder()
        builder.add_state("a")
        builder.add_state("b")
        builder.add_state("c")
        builder.add_transition("a", "b", 100.0)
        builder.add_transition("a", "c", 300.0)
        model = builder.build()
        probs = reachability_probabilities(model, {0, 1, 2}, {2})
        assert probs[0] == pytest.approx(0.75)

    def test_phi_constrains_paths(self):
        builder = ModelBuilder()
        builder.add_state("a")
        builder.add_state("blocked")
        builder.add_state("goal")
        builder.add_transition("a", "blocked", 1.0)
        builder.add_transition("a", "goal", 1.0)
        builder.add_transition("blocked", "goal", 1.0)
        model = builder.build()
        # Without passing through 'blocked', only the direct jump counts.
        probs = reachability_probabilities(model, {0}, {2})
        assert probs[0] == pytest.approx(0.5)

    def test_psi_state_has_probability_one(self):
        model = self.gamblers_ruin(0.5)
        probs = reachability_probabilities(model, set(), {2})
        assert probs[2] == 1.0
        assert probs[1] == 0.0

    @pytest.mark.parametrize("solver", ["direct", "jacobi", "gauss-seidel"])
    def test_solver_choices_agree(self, solver):
        model = self.gamblers_ruin(0.4)
        probs = reachability_probabilities(model, set(range(5)), {4},
                                           method=solver)
        reference = reachability_probabilities(model, set(range(5)), {4})
        assert np.allclose(probs, reference, atol=1e-9)
