"""Tests for the :mod:`repro.obs` observability layer.

Covers the tracer/metrics/convergence units, the JSON-lines
round-trip, the worker-span attachment of the thread fan-out, the
deadline-missed counter, EngineStats atomicity -- and the two
bit-identity guarantees: observability on vs off never changes engine
outputs, and the disabled instrumentation path stays within noise on
the Table-4 reference query.
"""

from __future__ import annotations

import json
import math
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (DiscretizationEngine, ErlangEngine,
                              SericolaEngine, clear_caches)
from repro.algorithms.cache import EngineStats
from repro.algorithms.parallel import (deadline_map, remaining,
                                       threaded_map)
from repro.mc.checker import ModelChecker
from repro.obs import OBS, REGISTRY, span
from repro.obs.convergence import ConvergenceRecorder
from repro.obs.export import (build_tree, cache_hit_ratios, dump_jsonl,
                              parse_jsonl, record_shape,
                              render_profile, span_shape)
from repro.obs.metrics import MetricsRegistry, record_engine_stats
from repro.obs.trace import Tracer


@pytest.fixture(autouse=True)
def clean_observability():
    """Every test starts and ends with observability off and empty."""
    OBS.disable()
    OBS.reset()
    REGISTRY.reset()
    yield
    OBS.disable()
    OBS.reset()
    REGISTRY.reset()


# ----------------------------------------------------------------------
# tracer


class TestTracer:
    def test_nesting_and_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        roots = list(tracer.roots)
        assert [s.name for s in roots] == ["outer"]
        child, = roots[0].children
        assert child.name == "inner"
        assert child.parent_id == roots[0].span_id
        assert roots[0].wall_seconds >= child.wall_seconds >= 0.0

    def test_cross_thread_parent(self):
        tracer = Tracer()
        with tracer.span("sweep") as parent:
            def work():
                with tracer.span("worker", parent=parent):
                    pass
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        root, = tracer.roots
        assert [c.name for c in root.children] == ["worker"]

    def test_exception_recorded(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        root, = tracer.roots
        assert "error" in root.attributes
        assert root.wall_seconds is not None

    def test_span_helper_disabled_is_noop(self):
        assert not OBS.enabled
        with span("ignored") as handle:
            handle.set(key="value")
        assert list(OBS.tracer.roots) == []


# ----------------------------------------------------------------------
# metrics


class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", engine="x")
        counter.inc()
        counter.inc(4)
        assert registry.counter("hits_total", engine="x").value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_update_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.update_max(10)
        gauge.update_max(3)
        assert gauge.value == 10

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds")
        for value in (1e-4, 2e-4, 0.5):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["max"] == 0.5
        assert summary["sum"] == pytest.approx(0.5003)

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("c_total", engine="e").inc(2)
        registry.histogram("h_seconds").observe(0.01)
        text = registry.render_prometheus()
        assert '# TYPE c_total counter' in text
        assert 'c_total{engine="e"} 2' in text
        assert 'le="+Inf"' in text

    def test_prometheus_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total",
                         path='a\\b"c\nd').inc()
        text = registry.render_prometheus()
        assert 'path="a\\\\b\\"c\\nd"' in text
        assert "\nd" not in text.replace('\\nd', '')

    def test_prometheus_histogram_invariants(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "h_seconds", bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 50.0):  # one beyond every bound
            histogram.observe(value)
        text = registry.render_prometheus()
        lines = text.splitlines()
        buckets = [line for line in lines
                   if line.startswith("h_seconds_bucket")]
        # Cumulative buckets end at +Inf == _count; _sum is exact.
        assert buckets[-1] == 'h_seconds_bucket{le="+Inf"} 3'
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)
        assert "h_seconds_count 3" in lines
        sum_line, = [line for line in lines
                     if line.startswith("h_seconds_sum")]
        assert float(sum_line.rsplit(" ", 1)[1]) == pytest.approx(
            50.55)

    def test_type_conflict_across_merge(self):
        registry = MetricsRegistry()
        registry.counter("thing").inc()
        foreign = MetricsRegistry()
        foreign.gauge("thing").update_max(3)
        with pytest.raises(ValueError):
            registry.merge(foreign.export_state())
        with pytest.raises(ValueError):
            registry.merge([{"name": "thing", "type": "sundial",
                             "labels": [], "value": 1.0}])

    def test_record_engine_stats(self):
        registry = MetricsRegistry()
        record_engine_stats(registry, "sericola",
                            {"cache_hits": 2, "matvec_count": 7})
        snapshot = registry.snapshot()
        label = '{engine="sericola"}'
        assert snapshot["repro_engine_cache_hits_total"][label] == 2
        assert snapshot["repro_engine_matvec_total"][label] == 7
        assert cache_hit_ratios(registry) == {"sericola": (2, 0)}


class TestConvergence:
    def test_series_record(self):
        recorder = ConvergenceRecorder()
        record = recorder.start_series("test_series", 5, engine="x")
        record.record(0, 0.5)
        record.record(1, 0.1)
        assert record.steps == 2
        assert record.final_residual == 0.1
        only, = recorder.records
        assert only.kind == "test_series"
        assert only.depth == 5


# ----------------------------------------------------------------------
# JSON-lines round trip


class TestJsonlRoundTrip:
    def test_shape_survives_disk(self, flip_flop):
        clear_caches()
        with OBS.capture():
            checker = ModelChecker(flip_flop)
            checker.check("P>0.5 [ up U[0,1][0,3] down ]")
        text = dump_jsonl(OBS.tracer)
        records = parse_jsonl(text)
        assert records, "capture produced no spans"
        live_shape = span_shape(list(OBS.tracer.roots))
        disk_shape = record_shape(build_tree(records))
        assert disk_shape == live_shape
        names = {record["name"] for record in records}
        assert "check" in names
        assert "joint_vector" in names

    def test_malformed_lines_raise(self):
        with pytest.raises(ValueError):
            parse_jsonl("not json at all")
        with pytest.raises(ValueError):
            parse_jsonl(json.dumps({"no": "span fields"}))


# ----------------------------------------------------------------------
# bit-identity: observability must never change results


def _engines():
    return [SericolaEngine(epsilon=1e-8),
            ErlangEngine(phases=32),
            DiscretizationEngine(step=1.0 / 16)]


class TestBitIdentical:
    @pytest.mark.parametrize("engine", _engines(),
                             ids=lambda e: e.name)
    def test_vector_and_sweep(self, flip_flop, engine):
        clear_caches()
        baseline = engine.joint_probability_vector(
            flip_flop, 2.0, 3.0, [1])
        grid_baseline = engine.joint_probability_sweep(
            flip_flop, [1.0, 2.0], [1.0, 3.0], [1])
        clear_caches()
        engine.stats.reset()
        with OBS.capture():
            observed = engine.joint_probability_vector(
                flip_flop, 2.0, 3.0, [1])
            grid_observed = engine.joint_probability_sweep(
                flip_flop, [1.0, 2.0], [1.0, 3.0], [1])
        assert np.array_equal(baseline, observed)
        assert np.array_equal(np.asarray(grid_baseline),
                              np.asarray(grid_observed))

    @settings(max_examples=10, deadline=None)
    @given(t=st.floats(min_value=0.25, max_value=4.0),
           r=st.floats(min_value=0.25, max_value=6.0))
    def test_property_sericola(self, t, r):
        from repro.ctmc import ModelBuilder
        builder = ModelBuilder()
        builder.add_state("up", labels=("up",), reward=2.0)
        builder.add_state("down", labels=("down",), reward=0.0)
        builder.add_transition("up", "down", 1.0)
        builder.add_transition("down", "up", 3.0)
        model = builder.build(initial_state="up")
        engine = SericolaEngine(epsilon=1e-8)
        clear_caches()
        baseline = engine.joint_probability_vector(model, t, r, [1])
        clear_caches()
        with OBS.capture():
            observed = engine.joint_probability_vector(model, t, r, [1])
        OBS.disable()
        OBS.reset()
        REGISTRY.reset()
        assert np.array_equal(baseline, observed)


class TestOverheadGuard:
    def test_disabled_span_helper_is_cheap(self):
        assert not OBS.enabled
        start = time.perf_counter()
        for _ in range(200_000):
            with span("x"):
                pass
        elapsed = time.perf_counter() - start
        # One flag check and a shared no-op context: generous CI bound.
        assert elapsed < 1.0, f"disabled span() too slow: {elapsed:.3f}s"

    def test_table4_reference_query(self, adhoc_reduced):
        """Disabled-path cost within noise on the Table-4 query."""
        from repro.models.adhoc import Q3_REWARD_BOUND, Q3_TIME_BOUND
        engine = DiscretizationEngine(step=1.0 / 32)
        goal = [adhoc_reduced.goal_state]
        model = adhoc_reduced.model

        def run():
            clear_caches()
            start = time.perf_counter()
            value = engine.joint_probability_vector(
                model, Q3_TIME_BOUND, Q3_REWARD_BOUND, goal)
            return value, time.perf_counter() - start

        run()  # warm-up: imports, sparse-group construction paths
        baseline, disabled_seconds = run()
        with OBS.capture():
            observed, enabled_seconds = run()
        assert np.array_equal(baseline, observed)
        # The disabled path must not cost more than the fully-enabled
        # one (plus scheduling noise) -- it does strictly less work.
        assert disabled_seconds <= enabled_seconds * 1.5 + 0.05, (
            f"disabled {disabled_seconds:.3f}s vs "
            f"enabled {enabled_seconds:.3f}s")


# ----------------------------------------------------------------------
# parallel fan-out integration


class TestParallelObservability:
    def test_remaining(self):
        assert remaining(None) == math.inf
        assert remaining(time.monotonic() + 5.0) == pytest.approx(
            5.0, abs=0.5)
        assert remaining(time.monotonic() - 1.0) <= 0.0

    @pytest.mark.parametrize("workers", [1, 2])
    def test_deadline_missed_counter(self, workers):
        REGISTRY.reset()
        passed = time.monotonic() - 1.0
        results, completed, failures = deadline_map(
            lambda item: item, [1, 2, 3], deadline=passed,
            max_workers=workers)
        assert failures == []
        missed = REGISTRY.snapshot().get(
            "repro_deadline_missed_total", {}).get("", 0)
        done = sum(completed)
        assert done + missed == 3
        assert missed > 0 or done == 3  # at least recorded when skipped

    def test_sequential_deadline_counts_all_skipped(self):
        REGISTRY.reset()
        deadline_map(lambda item: item, [1, 2, 3],
                     deadline=time.monotonic() - 1.0, max_workers=1)
        missed = REGISTRY.snapshot()["repro_deadline_missed_total"][""]
        assert missed == 3

    def test_worker_spans_attach_to_caller(self):
        with OBS.capture():
            with OBS.tracer.span("fanout"):
                threaded_map(lambda item: item * 2, [1, 2, 3],
                             max_workers=2,
                             labels=["a", "b", "c"])
        root, = OBS.tracer.roots
        workers = [c for c in root.children if c.name == "worker"]
        assert len(workers) == 3
        assert {w.attributes["worker"] for w in workers} == {"a", "b",
                                                             "c"}

    def test_worker_spans_absent_when_disabled(self):
        threaded_map(lambda item: item, [1, 2], max_workers=2)
        assert list(OBS.tracer.roots) == []


# ----------------------------------------------------------------------
# EngineStats atomicity (satellite of the registry absorption)


class TestEngineStatsAtomicity:
    def test_merge_is_atomic_under_concurrency(self):
        total = EngineStats()
        source = EngineStats()
        source.cache_hits = 1
        source.matvec_count = 2

        def hammer():
            for _ in range(500):
                total.merge(source)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert total.cache_hits == 8 * 500
        assert total.matvec_count == 2 * 8 * 500

    def test_self_merge(self):
        stats = EngineStats()
        stats.cache_hits = 3
        stats.merge(stats)
        assert stats.cache_hits == 6

    def test_reset_under_lock(self):
        stats = EngineStats()
        stats.propagation_steps = 9
        stats.reset()
        assert stats.as_dict()["propagation_steps"] == 0


# ----------------------------------------------------------------------
# profile rendering


class TestRenderProfile:
    def test_sections_present(self, flip_flop):
        clear_caches()
        with OBS.capture():
            checker = ModelChecker(flip_flop)
            # r < t * max reward keeps the reward bound binding, so the
            # Sericola series (and its convergence record) actually runs.
            checker.check("P>0.5 [ up U[0,1][0,1] down ]")
        report = render_profile(OBS.tracer, OBS.metrics,
                                OBS.convergence)
        assert "== span tree ==" in report
        assert "check" in report
        assert "== cache ==" in report
        assert "== counters & gauges ==" in report
        assert "== convergence ==" in report
