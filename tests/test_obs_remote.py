"""Cross-process observability: snapshot/merge, flight recorder, HTTP.

Exercises the PR's wire layer end to end: the picklable
``export_state``/``merge`` pair on :class:`MetricsRegistry`, the span
``export_segments``/``adopt_segments`` round trip, the assembled
telemetry payloads of :mod:`repro.obs.remote`, the fsynced
:class:`FlightRecorder` sidecars, the :class:`ResourceSampler`
timelines, the ``/metrics`` endpoint -- and the two system-level
contracts: a process-executor sweep merges to the *same* engine
counters as a threaded run of the same grid, and observability
on/off never changes the grid bit-for-bit.
"""

from __future__ import annotations

import json
import os
import urllib.request

import numpy as np
import pytest

from repro.algorithms import DiscretizationEngine, clear_caches
from repro.ctmc import MarkovRewardModel
from repro.exec import ProcessShardExecutor
from repro.exec.executor import SweepProgress
from repro.obs import OBS, REGISTRY
from repro.obs.httpd import CONTENT_TYPE, serve_metrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder, ResourceSampler
from repro.obs.remote import (ROLLUP_METRICS, export_telemetry,
                              merge_telemetry)
from repro.obs.trace import Tracer


@pytest.fixture(autouse=True)
def clean_observability():
    OBS.disable()
    OBS.reset()
    REGISTRY.reset()
    clear_caches()
    yield
    OBS.disable()
    OBS.reset()
    REGISTRY.reset()
    clear_caches()


def small_model() -> MarkovRewardModel:
    rates = np.array([[0.0, 1.0], [2.0, 0.0]])
    return MarkovRewardModel(rates, rewards=[1.0, 0.0])


# ----------------------------------------------------------------------
# registry export/merge


class TestExportMerge:
    def test_round_trip_counters_gauges(self):
        source = MetricsRegistry()
        source.counter("a_total", engine="x").inc(3)
        source.gauge("depth").update_max(7)
        target = MetricsRegistry()
        target.counter("a_total", engine="x").inc(2)
        target.merge(source.export_state())
        assert target.counter("a_total", engine="x").value == 5
        assert target.gauge("depth").value == 7

    def test_extra_labels_override(self):
        source = MetricsRegistry()
        source.gauge("rss", worker="main").update_max(100)
        target = MetricsRegistry()
        target.merge(source.export_state(),
                     extra_labels={"worker": "process-3"})
        assert target.gauge("rss", worker="process-3").value == 100
        snapshot = target.snapshot()
        assert list(snapshot["rss"]) == ['{worker="process-3"}']

    def test_gauge_merge_keeps_maximum(self):
        source = MetricsRegistry()
        source.gauge("rss").update_max(10)
        target = MetricsRegistry()
        target.gauge("rss").update_max(50)
        target.merge(source.export_state())
        assert target.gauge("rss").value == 50

    def test_histogram_merge_adds_buckets(self):
        source = MetricsRegistry()
        source.histogram("lat_seconds").observe(0.01)
        source.histogram("lat_seconds").observe(3.0)
        target = MetricsRegistry()
        target.histogram("lat_seconds").observe(0.02)
        target.merge(source.export_state())
        merged = target.histogram("lat_seconds")
        assert merged.count == 3
        assert merged.sum == pytest.approx(3.03)
        assert merged.min == pytest.approx(0.01)
        assert merged.max == pytest.approx(3.0)
        # Bucket invariant: totals across buckets equal the count.
        assert sum(merged.counts) == merged.count

    def test_histogram_bounds_mismatch_rejected(self):
        source = MetricsRegistry()
        source.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
        target = MetricsRegistry()
        target.histogram("h", bounds=(0.5, 5.0)).observe(1.0)
        with pytest.raises(ValueError):
            target.merge(source.export_state())

    def test_type_conflict_across_merge_rejected(self):
        source = MetricsRegistry()
        source.counter("thing").inc()
        target = MetricsRegistry()
        target.gauge("thing").update_max(1)
        with pytest.raises(ValueError):
            target.merge(source.export_state())


# ----------------------------------------------------------------------
# span segment export / adoption


class TestSegments:
    def test_adopt_reparents_under_given_span(self):
        worker = Tracer()
        with worker.span("joint_vector", engine="disc"):
            with worker.span("series"):
                pass
        segments = worker.export_segments(clear=True)
        assert not worker.roots

        parent = Tracer()
        with parent.span("process_sweep") as sweep:
            pass
        tops = parent.adopt_segments(segments, parent=sweep)
        assert [top.name for top in tops] == ["joint_vector"]
        assert tops[0].parent_id == sweep.span_id
        assert [c.name for c in tops[0].children] == ["series"]
        # Foreign ids never leak into the adopting tracer.
        adopted_ids = {s.span_id for s in tops[0].walk()}
        assert sweep.span_id not in adopted_ids

    def test_export_limit_prunes_not_corrupts(self):
        worker = Tracer()
        for index in range(6):
            with worker.span("cell", index=index):
                with worker.span("inner"):
                    pass
        segments = worker.export_segments(limit=3)
        parent = Tracer()
        tops = parent.adopt_segments(segments)
        # Truncated records with a dropped parent become roots, and
        # every surviving parent/child edge is intact.
        assert len(segments) == 3
        for top in tops:
            for span in top.walk():
                for child in span.children:
                    assert child.parent_id == span.span_id

    def test_export_without_clear_is_repeatable(self):
        worker = Tracer()
        with worker.span("a"):
            pass
        first = worker.export_segments(clear=False)
        second = worker.export_segments(clear=False)
        assert [r["name"] for r in first] == ["a"]
        assert first == second


# ----------------------------------------------------------------------
# assembled telemetry payloads


class TestTelemetryPayload:
    def test_export_resets_sources_and_drops_rollups(self):
        registry = MetricsRegistry()
        registry.counter("repro_engine_matvec_total",
                         engine="disc").inc(4)
        registry.gauge("repro_peak_rss_bytes_max").update_max(123)
        tracer = Tracer()
        with tracer.span("joint_vector"):
            pass
        payload = export_telemetry(registry, tracer=tracer)
        names = {entry["name"] for entry in payload["metrics"]}
        assert "repro_engine_matvec_total" in names
        assert not names & ROLLUP_METRICS
        assert [s["name"] for s in payload["segments"]] == [
            "joint_vector"]
        # reset=True: the next export is a pure delta (empty here).
        empty = export_telemetry(registry, tracer=tracer)
        assert empty["metrics"] == [] and empty["segments"] == []

    def test_merge_labels_and_rollup(self):
        worker = MetricsRegistry()
        worker.counter("repro_engine_matvec_total",
                       engine="disc").inc(4)
        worker.gauge("repro_peak_rss_bytes",
                     worker="main").update_max(2048)
        payload = export_telemetry(worker)
        parent = MetricsRegistry()
        merge_telemetry(payload, parent, worker="process-0")
        assert parent.counter("repro_engine_matvec_total",
                              engine="disc",
                              worker="process-0").value == 4
        # The worker's self-label is overridden; the roll-up gauge is
        # derived on the parent side, never shipped.
        assert parent.gauge("repro_peak_rss_bytes",
                            worker="process-0").value == 2048
        assert parent.gauge("repro_peak_rss_bytes_max").value == 2048


# ----------------------------------------------------------------------
# flight recorder


class TestFlightRecorder:
    def test_record_and_read_tail(self, tmp_path):
        path = str(tmp_path / "worker-0.jsonl")
        with FlightRecorder(path, limit=3) as recorder:
            for index in range(5):
                recorder.record("task_start", cell=index)
        tail = FlightRecorder.read_tail(path, limit=3)
        assert [event["cell"] for event in tail] == [2, 3, 4]
        assert all(event["kind"] == "task_start" for event in tail)
        assert all("ts" in event for event in tail)

    def test_read_tail_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "worker-1.jsonl"
        path.write_text('{"kind": "a", "ts": 1}\n'
                        '{"kind": "b", "ts"\n'      # mid-write kill
                        '[1, 2]\n'                  # not an event
                        '{"kind": "c", "ts": 3}\n')
        tail = FlightRecorder.read_tail(str(path))
        assert [event["kind"] for event in tail] == ["a", "c"]

    def test_read_tail_missing_file_is_empty(self, tmp_path):
        assert FlightRecorder.read_tail(
            str(tmp_path / "nope.jsonl")) == ()


# ----------------------------------------------------------------------
# resource sampler


class TestResourceSampler:
    def test_sample_once_and_timelines(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(interval=10.0, registry=registry)
        sampler.watch("main", os.getpid())
        sampler.watch("ghost", 2 ** 22 + 12345)  # vanished pid
        samples = sampler.sample_once()
        assert "main" in samples
        _, rss, cpu = samples["main"]
        assert rss > 0 and cpu >= 0.0
        assert "ghost" not in samples
        assert len(sampler.timelines()["main"]) == 1
        assert sampler.latest()["main"][1] == rss
        assert registry.gauge("repro_peak_rss_bytes",
                              worker="main").value >= rss
        sampler.unwatch("main")
        assert "main" not in sampler.sample_once()


# ----------------------------------------------------------------------
# /metrics endpoint


class TestMetricsEndpoint:
    def test_scrape_serves_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("repro_engine_matvec_total",
                         engine="disc").inc(7)
        with serve_metrics(registry) as server:
            for path in ("/metrics", "/"):
                with urllib.request.urlopen(
                        server.url.rsplit("/metrics", 1)[0] + path,
                        timeout=5) as response:
                    assert response.status == 200
                    content_type = response.headers["Content-Type"]
                    body = response.read().decode("utf-8")
                assert content_type == CONTENT_TYPE
                assert ("repro_engine_matvec_total"
                        '{engine="disc"} 7') in body
                assert "# TYPE repro_engine_matvec_total counter" in body

    def test_scrape_is_live(self):
        registry = MetricsRegistry()
        with serve_metrics(registry) as server:
            registry.counter("late_total").inc()

            with urllib.request.urlopen(server.url, timeout=5) as r:
                assert b"late_total 1" in r.read()

    def test_unknown_path_is_404(self):
        with serve_metrics(MetricsRegistry()) as server:
            request = urllib.request.Request(
                server.url.replace("/metrics", "/nope"))
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=5)
            assert info.value.code == 404


# ----------------------------------------------------------------------
# progress snapshot rendering


class TestSweepProgress:
    def test_render(self):
        snapshot = SweepProgress(
            done=12, total=20, failed=1, pending=2, elapsed=9.23,
            rate=1.3, eta_seconds=6.2,
            workers={0: "idle", 1: "cell(1,2)"},
            open_breakers=("sweep:sericola",),
            rss_bytes={"main": 113_000_000})
        line = snapshot.render()
        assert "12/20 cells (60%)" in line
        assert "1 failed" in line
        assert "1.30 cells/s" in line
        assert "eta 6s" in line
        assert "w0:idle" in line and "w1:cell(1,2)" in line
        assert "breakers open: sweep:sericola" in line
        assert "rss 113MB" in line

    def test_render_degenerate(self):
        line = SweepProgress(done=0, total=0, failed=0, pending=0,
                             elapsed=0.0, rate=0.0, eta_seconds=None,
                             workers={}, open_breakers=(),
                             rss_bytes={}).render()
        assert "0/0 cells" in line
        assert "eta --" in line


# ----------------------------------------------------------------------
# system-level contracts through the process executor


GRID_TIMES = [0.5, 1.0]
GRID_REWARDS = [0.2, 0.4]
GRID_TARGET = [0]


def _engine():
    return DiscretizationEngine(step=1.0 / 16)


def _counter_sums(registry) -> dict:
    """Per-name counter totals summed over all label sets."""
    sums: dict = {}
    for name, family in registry.snapshot().items():
        if not name.startswith("repro_engine_") or not \
                name.endswith("_total"):
            continue
        sums[name] = sum(family.values())
    return sums


class TestProcessAggregation:
    def test_thread_and_process_counters_agree(self):
        model = small_model()
        clear_caches()
        with OBS.capture():
            threaded = _engine().joint_probability_sweep_partial(
                model, GRID_TIMES, GRID_REWARDS, GRID_TARGET)
            assert threaded.complete
            thread_sums = _counter_sums(OBS.metrics)
        OBS.reset()
        REGISTRY.reset()
        clear_caches()
        with OBS.capture():
            executor = ProcessShardExecutor(max_workers=2)
            process = _engine().joint_probability_sweep_partial(
                model, GRID_TIMES, GRID_REWARDS, GRID_TARGET,
                executor=executor)
            assert process.complete
            process_sums = _counter_sums(OBS.metrics)
            snapshot = OBS.metrics.snapshot()
            roots = list(OBS.tracer.roots)
        assert np.array_equal(np.asarray(threaded.grid),
                              np.asarray(process.grid))
        assert thread_sums and process_sums == thread_sums
        # Worker-labelled RSS gauges plus the unlabelled roll-up.
        rss = snapshot["repro_peak_rss_bytes"]
        assert any('worker="process-' in label for label in rss)
        assert snapshot["repro_peak_rss_bytes_max"][""] >= max(
            rss.values())
        # A single coherent span tree: workers under process_sweep.
        sweeps = [r for r in roots if r.name == "process_sweep"]
        assert len(sweeps) == 1
        worker_spans = [c for c in sweeps[0].children
                        if c.name == "worker"]
        assert worker_spans
        assert any(c.name == "joint_vector"
                   for w in worker_spans for c in w.children)

    def test_obs_off_grid_bit_identical(self):
        model = small_model()
        clear_caches()
        baseline = _engine().joint_probability_sweep_partial(
            model, GRID_TIMES, GRID_REWARDS, GRID_TARGET)
        clear_caches()
        through_executor = _engine().joint_probability_sweep_partial(
            model, GRID_TIMES, GRID_REWARDS, GRID_TARGET,
            executor=ProcessShardExecutor(max_workers=2))
        assert np.array_equal(np.asarray(baseline.grid),
                              np.asarray(through_executor.grid))
        # Observability stayed off: no spans, no merged registry.
        assert not OBS.tracer.roots
        assert REGISTRY.snapshot().get("repro_engine_matvec_total",
                                       {}) == {}

    def test_process_span_shape_matches_golden(self):
        """The re-parented process-sweep span tree has a pinned shape.

        Regenerate the golden after an intentional instrumentation
        change with::

            PYTHONPATH=src:. python - <<'PY'
            import json
            from repro.algorithms import DiscretizationEngine
            from repro.exec import ProcessShardExecutor
            from repro.obs import OBS
            from repro.obs.export import span_shape
            from tests.exec_sweep_driver import (REWARDS, TARGET,
                                                 TIMES, build_model)
            with OBS.capture():
                DiscretizationEngine(
                    step=1.0 / 16).joint_probability_sweep_partial(
                    build_model(), TIMES, REWARDS, TARGET,
                    executor=ProcessShardExecutor(max_workers=2))
                shape = span_shape(list(OBS.tracer.roots))
            with open("tests/golden/profile_shape_process.json",
                      "w") as fh:
                json.dump(shape, fh, indent=2)
                fh.write("\\n")
            PY
        """
        from pathlib import Path

        from repro.obs.export import span_shape
        from tests.exec_sweep_driver import (REWARDS, TARGET, TIMES,
                                             build_model)
        golden = Path(__file__).resolve().parent / "golden" / \
            "profile_shape_process.json"
        clear_caches()
        with OBS.capture():
            partial = DiscretizationEngine(
                step=1.0 / 16).joint_probability_sweep_partial(
                build_model(), TIMES, REWARDS, TARGET,
                executor=ProcessShardExecutor(max_workers=2))
            assert partial.complete
            shape = span_shape(list(OBS.tracer.roots))
        assert shape == json.loads(golden.read_text())

    def test_progress_callback_fires(self):
        model = small_model()
        clear_caches()
        snapshots = []
        executor = ProcessShardExecutor(
            max_workers=2, progress=snapshots.append,
            progress_interval=0.0)
        partial = _engine().joint_probability_sweep_partial(
            model, GRID_TIMES, GRID_REWARDS, GRID_TARGET,
            executor=executor)
        assert partial.complete
        assert snapshots
        final = snapshots[-1]
        assert final.done == final.total == len(GRID_TIMES) * len(
            GRID_REWARDS)
        assert final.render()
        # The parent's own timeline was kept for post-run inspection.
        assert "main" in executor.last_timelines
