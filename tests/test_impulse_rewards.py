"""Tests for impulse rewards (the paper's future-work extension).

An impulse reward is earned instantaneously when a transition fires.
The simulator, the discretisation engine and the pseudo-Erlang engine
support them; the occupation-time engine and the duality transform
reject them explicitly (they are tailored to state-based rewards, as
the paper says of its algorithms).
"""

import numpy as np
import pytest

from repro.algorithms import (DiscretizationEngine, ErlangEngine,
                              SericolaEngine)
from repro.ctmc import MarkovRewardModel, ModelBuilder
from repro.errors import ModelError, NumericalError, RewardError
from repro.mc.transform import dual_model, until_reduction
from repro.sim import PathSimulator, estimate_joint_probability

LAM = 0.8


@pytest.fixture
def impulse_chain():
    """a --(rate LAM, impulse 2)--> b; no rate rewards at all.

    Y_t = 2 * 1{jumped by t}: a two-point distribution with closed
    forms for everything.
    """
    builder = ModelBuilder()
    builder.add_state("a", reward=0.0)
    builder.add_state("b", reward=0.0)
    builder.add_transition("a", "b", LAM, impulse=2.0)
    return builder.build(initial_state="a")


class TestModelLayer:
    def test_builder_records_impulses(self, impulse_chain):
        assert impulse_chain.has_impulse_rewards
        assert impulse_chain.impulse(0, 1) == 2.0
        assert impulse_chain.impulse(1, 0) == 0.0

    def test_zero_impulses_collapse_to_none(self):
        model = MarkovRewardModel([[0.0, 1.0], [0.0, 0.0]],
                                  impulse_rewards={(0, 1): 0.0})
        assert not model.has_impulse_rewards

    def test_impulse_off_transition_rejected(self):
        with pytest.raises(ModelError, match="existing transitions"):
            MarkovRewardModel([[0.0, 1.0], [0.0, 0.0]],
                              impulse_rewards={(1, 0): 1.0})

    def test_negative_impulse_rejected(self):
        with pytest.raises(RewardError):
            MarkovRewardModel([[0.0, 1.0], [0.0, 0.0]],
                              impulse_rewards={(0, 1): -1.0})

    def test_conflicting_builder_impulses_rejected(self):
        builder = ModelBuilder()
        builder.add_state("a")
        builder.add_state("b")
        builder.add_transition("a", "b", 1.0, impulse=2.0)
        with pytest.raises(ModelError, match="conflicting"):
            builder.add_transition("a", "b", 1.0, impulse=3.0)

    def test_matrix_form_accepted(self):
        impulses = np.array([[0.0, 1.5], [0.0, 0.0]])
        model = MarkovRewardModel([[0.0, 1.0], [0.0, 0.0]],
                                  impulse_rewards=impulses)
        assert model.impulse(0, 1) == 1.5

    def test_scaling_scales_impulses(self, impulse_chain):
        scaled = impulse_chain.scaled_rewards(3.0)
        assert scaled.impulse(0, 1) == 6.0

    def test_derived_models_keep_impulses(self, impulse_chain):
        assert impulse_chain.with_initial_state(1).has_impulse_rewards
        assert impulse_chain.with_rewards([1.0, 1.0]) \
            .impulse(0, 1) == 2.0


class TestSimulator:
    def test_final_reward_counts_impulse(self, impulse_chain):
        simulator = PathSimulator(impulse_chain, seed=3)
        path = simulator.sample_path(50.0)
        assert path.final_reward == 2.0  # the jump surely happened

    def test_reward_at_steps_up(self, impulse_chain):
        simulator = PathSimulator(impulse_chain, seed=4)
        path = simulator.sample_path(50.0)
        jump = path.steps[1].entry_time
        rewards = impulse_chain.rewards
        assert path.reward_at(jump / 2.0, rewards) == 0.0
        assert path.reward_at(jump + 1e-9, rewards) == 2.0

    def test_mixed_rate_and_impulse(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=1.0)
        builder.add_state("b", reward=0.0)
        builder.add_transition("a", "b", LAM, impulse=5.0)
        model = builder.build()
        simulator = PathSimulator(model, seed=5)
        path = simulator.sample_path(100.0)
        sojourn = path.steps[0].sojourn
        assert path.final_reward == pytest.approx(sojourn + 5.0)


class TestEngines:
    def test_erlang_closed_form(self, impulse_chain):
        # Pr{Y_t <= r}: for r < 2 it needs no jump (e^{-lam t}); for
        # r >= 2 it is 1.  With the Erlang-k bound the impulse of 2
        # crosses Poisson(2k/r) boundaries; exactness holds only in
        # the k -> inf limit, so test convergence.
        t = 1.0
        exact_below = np.exp(-LAM * t)
        values = [ErlangEngine(phases=k).joint_probability_vector(
            impulse_chain, t, 1.0, [0, 1])[0] for k in (4, 16, 128)]
        errors = [abs(v - exact_below) for v in values]
        # P{Poisson(2k) < k} decays exponentially in k: the
        # approximation error collapses very fast here.
        assert errors[0] >= errors[1] >= errors[2]
        assert errors[2] < 1e-6

    def test_erlang_bound_above_impulse(self, impulse_chain):
        value = ErlangEngine(phases=64).joint_probability_vector(
            impulse_chain, 1.0, 4.0, [0, 1])[0]
        # Bound 4 with Erlang spread: nearly certain.
        assert value > 0.95

    def test_discretization_closed_form(self, impulse_chain):
        t = 1.0
        engine = DiscretizationEngine(step=1.0 / 128)
        indicator = np.ones(2)
        below = engine.joint_probability_from(impulse_chain, t, 1.0,
                                              indicator, 0)
        assert below == pytest.approx(np.exp(-LAM * t), abs=5e-3)
        above = engine.joint_probability_from(impulse_chain, t, 3.0,
                                              indicator, 0)
        assert above == pytest.approx(1.0, abs=1e-9)

    def test_discretization_vs_simulation_mixed(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=1.0)
        builder.add_state("b", reward=2.0)
        builder.add_state("c", reward=0.0)
        builder.add_transition("a", "b", 1.0, impulse=1.0)
        builder.add_transition("b", "c", 2.0, impulse=3.0)
        model = builder.build()
        t, r = 2.0, 4.0
        engine = DiscretizationEngine(step=1.0 / 128)
        numeric = engine.joint_probability_from(model, t, r,
                                                np.ones(3), 0)
        estimate = estimate_joint_probability(model, t, r, {0, 1, 2},
                                              samples=20_000, seed=9)
        assert abs(numeric - estimate.value) < max(
            estimate.half_width + 5e-3, 0.01)

    def test_erlang_vs_discretization_mixed(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=1.0)
        builder.add_state("b", reward=0.0)
        builder.add_transition("a", "b", 1.0, impulse=2.0)
        builder.add_transition("b", "a", 0.5, impulse=1.0)
        model = builder.build()
        t, r = 3.0, 5.0
        erlang = ErlangEngine(phases=1024).joint_probability_vector(
            model, t, r, [0, 1])[0]
        discretized = DiscretizationEngine(step=1.0 / 128) \
            .joint_probability_from(model, t, r, np.ones(2), 0)
        assert erlang == pytest.approx(discretized, abs=1e-2)

    def test_sericola_rejects_impulses(self, impulse_chain):
        with pytest.raises(NumericalError, match="state-based"):
            SericolaEngine().joint_probability_vector(
                impulse_chain, 1.0, 1.0, [1])

    def test_duality_rejects_impulses(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=1.0)
        builder.add_state("b", reward=1.0)
        builder.add_transition("a", "b", 1.0, impulse=1.0)
        with pytest.raises(RewardError, match="duality"):
            dual_model(builder.build())

    def test_zero_bound_with_impulses(self, impulse_chain):
        # Y_t <= 0 requires the impulse transition not to have fired.
        from repro.algorithms.erlang import zero_reward_bound_vector
        t = 1.0
        vector = zero_reward_bound_vector(impulse_chain, t,
                                          np.ones(2))
        assert vector[0] == pytest.approx(np.exp(-LAM * t), abs=1e-9)
        assert vector[1] == pytest.approx(1.0)


class TestCheckerIntegration:
    def test_p3_until_with_impulses(self):
        """End to end: Theorem-1 reduction keeps transient impulses and
        the discretisation engine decides the until formula."""
        from repro.mc import ModelChecker
        builder = ModelBuilder()
        builder.add_state("start", labels=("go",), reward=0.0)
        builder.add_state("goal", labels=("done",), reward=0.0)
        builder.add_transition("start", "goal", LAM, impulse=2.0)
        model = builder.build()
        checker = ModelChecker(
            model, engine=DiscretizationEngine(step=1.0 / 128))
        # Reaching the goal within t=1: the jump carries impulse 2, so
        # with reward bound 3 the jump itself decides (1 - e^{-lam}),
        # while bound 1 makes success impossible.
        generous = checker.check("P>0 [ go U[0,1][0,3] done ]")
        assert generous.probability_of(0) == pytest.approx(
            1.0 - np.exp(-LAM), abs=5e-3)
        stingy = checker.check("P>0 [ go U[0,1][0,1] done ]")
        assert stingy.probability_of(0) == pytest.approx(0.0, abs=5e-3)

    def test_reduction_keeps_impulses(self, impulse_chain):
        reduced = until_reduction(impulse_chain, {0}, {1})
        assert reduced.impulse(0, 1) == 2.0
        # Absorbing rows lose their (outgoing) impulses with the rates.
        assert reduced.is_absorbing(1)
