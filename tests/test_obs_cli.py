"""CLI observability: ``--profile``, ``--trace-out``, ``repro profile``.

The golden test pins the span-tree *shape* (names and nesting, never
timings) of a reference query on ``examples/models/clean`` -- the same
comparison CI runs.  Regenerate the golden file after an intentional
instrumentation change with::

    PYTHONPATH=src python -m repro.cli profile \
        --model examples/models/clean \
        --formula "P>=0.1 [ up U[0,1][0,2] down ]" --shape \
        > tests/golden/profile_shape.json
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import cli
from repro.algorithms import clear_caches
from repro.obs import OBS, REGISTRY
from repro.obs.export import build_tree, parse_jsonl, record_shape

REPO = Path(__file__).resolve().parent.parent
CLEAN_MODEL = str(REPO / "examples" / "models" / "clean")
GOLDEN_SHAPE = REPO / "tests" / "golden" / "profile_shape.json"
FORMULA = "P>=0.1 [ up U[0,1][0,2] down ]"


@pytest.fixture(autouse=True)
def clean_observability():
    OBS.disable()
    OBS.reset()
    REGISTRY.reset()
    clear_caches()
    yield
    OBS.disable()
    OBS.reset()
    REGISTRY.reset()


class TestProfileSubcommand:
    def test_shape_matches_golden(self, capsys):
        code = cli.main(["profile", "--model", CLEAN_MODEL,
                         "--formula", FORMULA, "--shape"])
        assert code == 0
        shape = json.loads(capsys.readouterr().out)
        golden = json.loads(GOLDEN_SHAPE.read_text())
        assert shape == golden

    def test_report_sections(self, capsys):
        code = cli.main(["profile", "--model", CLEAN_MODEL,
                         "--formula", FORMULA])
        assert code == 0
        output = capsys.readouterr().out
        assert "== span tree ==" in output
        assert "check" in output
        assert "joint_vector" in output
        assert "== cache ==" in output

    def test_adhoc_shortcut(self, capsys):
        code = cli.main(["profile", "--model", "adhoc",
                         "--formula", "Q3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "joint_vector" in output
        assert "repro_sericola_truncation_depth" in output
        assert "sericola_series" in output


class TestCheckProfileFlags:
    def test_check_profile_appends_report(self, capsys):
        code = cli.main(["check", "--model", CLEAN_MODEL,
                         "--formula", FORMULA, "--profile"])
        output = capsys.readouterr().out
        assert code in (0, 1)  # verdict, not the profile, drives it
        assert "holds initially" in output
        assert "== span tree ==" in output
        assert "== counters & gauges ==" in output

    def test_trace_out_round_trips(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = cli.main(["check", "--model", CLEAN_MODEL,
                         "--formula", FORMULA,
                         "--trace-out", str(trace)])
        assert code in (0, 1)
        records = parse_jsonl(trace.read_text())
        assert records
        shape = record_shape(build_tree(records))
        golden = json.loads(GOLDEN_SHAPE.read_text())
        assert shape == golden

    def test_check_without_flags_captures_nothing(self, capsys):
        code = cli.main(["check", "--model", CLEAN_MODEL,
                         "--formula", FORMULA])
        assert code in (0, 1)
        assert list(OBS.tracer.roots) == []
        assert "== span tree ==" not in capsys.readouterr().out

    def test_check_adhoc_shortcut(self, capsys):
        code = cli.main(["check", "--model", "adhoc",
                         "--formula", "Q1"])
        assert code in (0, 1)
        assert "Sat(" in capsys.readouterr().out
