"""End-to-end tests for the automatic lumping pre-pass.

The pre-pass (:mod:`repro.mc.prepass`) may change which chain the
joint-distribution engines propagate, but never the answer: forced
lumping must agree with the unlumped pipeline to 1e-12 everywhere, and
the default ``"auto"`` mode must keep small checks *bit-identical*
(it only applies a found lumping on models of >= 512 states).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cli
from repro.algorithms import DiscretizationEngine, clear_caches
from repro.ctmc import ModelBuilder, io
from repro.errors import ModelError
from repro.logic.intervals import Interval
from repro.mc import prepass, until
from repro.mc.checker import ModelChecker
from repro.models import adhoc
from repro.models.workloads import crowd_mrm
from repro.obs import OBS

#: Forced-lump agreement bound (quotient arithmetic reorders sums).
FORCED_TOLERANCE = 1e-12

TIME = Interval(0.0, 1.0)
REWARD = Interval(0.0, 2.0)


def _crowd_sets(model):
    """(phi, psi) = (all states, the crowded states)."""
    phi = set(range(model.num_states))
    psi = set(model.states_with("crowded"))
    return phi, psi


def _engine():
    return DiscretizationEngine(step=1.0 / 8)


# ---------------------------------------------------------------------------
# Exactness: forced lumping vs the unlumped pipeline


class TestForcedLumpAgreement:
    @pytest.fixture
    def crowd(self):
        return crowd_mrm(12, 30)  # 360 states, lumps below 360 blocks

    def test_vector_agrees(self, crowd):
        phi, psi = _crowd_sets(crowd)
        clear_caches()
        unlumped = until.time_reward_bounded_until(
            crowd, phi, psi, TIME, REWARD, _engine(), lump=False)
        clear_caches()
        lumped = until.time_reward_bounded_until(
            crowd, phi, psi, TIME, REWARD, _engine(), lump=True)
        info = prepass.last_info()
        assert info is not None and info.applied
        assert info.num_blocks < info.num_states
        assert np.max(np.abs(lumped - unlumped)) <= FORCED_TOLERANCE

    def test_interval_agrees(self, crowd):
        phi, psi = _crowd_sets(crowd)
        clear_caches()
        lo0, hi0 = until.time_reward_bounded_until_interval(
            crowd, phi, psi, TIME, REWARD, _engine(), lump=False)
        clear_caches()
        lo1, hi1 = until.time_reward_bounded_until_interval(
            crowd, phi, psi, TIME, REWARD, _engine(), lump=True)
        assert prepass.last_info().applied
        assert np.max(np.abs(lo1 - lo0)) <= FORCED_TOLERANCE
        assert np.max(np.abs(hi1 - hi0)) <= FORCED_TOLERANCE

    def test_sweep_agrees(self, crowd):
        phi, psi = _crowd_sets(crowd)
        times = [0.5, 1.0]
        rewards = [1.0, 2.0]
        clear_caches()
        grid0 = until.time_reward_bounded_until_sweep(
            crowd, phi, psi, times, rewards, _engine(), lump=False)
        clear_caches()
        grid1 = until.time_reward_bounded_until_sweep(
            crowd, phi, psi, times, rewards, _engine(), lump=True)
        assert prepass.last_info().applied
        assert grid1.shape == (2, 2, crowd.num_states)
        assert np.max(np.abs(grid1 - grid0)) <= FORCED_TOLERANCE

    @settings(max_examples=10, deadline=None)
    @given(sites=st.integers(min_value=3, max_value=10),
           members=st.integers(min_value=2, max_value=8),
           seed=st.integers(min_value=0, max_value=1000))
    def test_random_labelled_mrms(self, sites, members, seed):
        """Random crowd geometries + random psi: lumped == unlumped."""
        model = crowd_mrm(sites, members)
        rng = np.random.default_rng(seed)
        phi = set(range(model.num_states))
        # Any union of site columns is a valid random labelling.
        chosen = rng.choice(sites, size=max(1, sites // 2), replace=False)
        psi = {int(s) for s in range(model.num_states)
               if (s // members) in chosen}
        clear_caches()
        unlumped = until.time_reward_bounded_until(
            model, phi, psi, TIME, REWARD, _engine(), lump=False)
        clear_caches()
        lumped = until.time_reward_bounded_until(
            model, phi, psi, TIME, REWARD, _engine(), lump=True)
        assert np.max(np.abs(lumped - unlumped)) <= FORCED_TOLERANCE


# ---------------------------------------------------------------------------
# Bit-identity of the default "auto" mode on small models


class TestAutoModeBitIdentity:
    def test_small_model_propagates_original_chain(self):
        crowd = crowd_mrm(12, 30)  # well below LUMP_MIN_STATES
        phi, psi = _crowd_sets(crowd)
        clear_caches()
        unlumped = until.time_reward_bounded_until(
            crowd, phi, psi, TIME, REWARD, _engine(), lump=False)
        clear_caches()
        auto = until.time_reward_bounded_until(
            crowd, phi, psi, TIME, REWARD, _engine(), lump="auto")
        info = prepass.last_info()
        assert not info.applied and info.reason == "small_model"
        assert info.num_blocks is not None  # found, reported, not used
        np.testing.assert_array_equal(auto, unlumped)

    def test_large_model_applies(self):
        crowd = crowd_mrm(40, 20)  # 800 states >= LUMP_MIN_STATES
        phi, psi = _crowd_sets(crowd)
        clear_caches()
        auto = until.time_reward_bounded_until(
            crowd, phi, psi, TIME, REWARD, _engine(), lump="auto")
        info = prepass.last_info()
        assert info.applied and info.reason == "applied"
        clear_caches()
        unlumped = until.time_reward_bounded_until(
            crowd, phi, psi, TIME, REWARD, _engine(), lump=False)
        assert np.max(np.abs(auto - unlumped)) <= FORCED_TOLERANCE

    @pytest.mark.parametrize("formula", [adhoc.Q1, adhoc.Q2, adhoc.Q3])
    def test_adhoc_q_formulas_bit_identical(self, formula):
        """Q1-Q3 under the default pipeline == lump=False, bitwise."""
        clear_caches()
        default = ModelChecker(adhoc.adhoc_model()).check(formula)
        clear_caches()
        disabled = ModelChecker(adhoc.adhoc_model(),
                                lump=False).check(formula)
        assert default.states == disabled.states
        np.testing.assert_array_equal(default.probabilities,
                                      disabled.probabilities)


# ---------------------------------------------------------------------------
# prepare() outcomes and invariants


class TestPrepare:
    def test_psi_blocks_are_unions_of_psi_states(self):
        crowd = crowd_mrm(20, 30)
        _, psi = _crowd_sets(crowd)
        pre = prepass.prepare(crowd, psi, mode=True)
        assert pre is not None
        in_psi_block = np.isin(pre.block_of,
                               sorted(int(b) for b in pre.psi_blocks))
        expected = np.zeros(crowd.num_states, dtype=bool)
        expected[sorted(psi)] = True
        np.testing.assert_array_equal(in_psi_block, expected)

    def test_impulse_rewards_skip(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=1.0)
        builder.add_state("b", reward=1.0)
        builder.add_transition("a", "b", 1.0, impulse=2.0)
        builder.add_transition("b", "a", 1.0)
        model = builder.build()
        assert prepass.prepare(model, {1}, mode=True) is None
        assert prepass.last_info().reason == "impulse_rewards"

    def test_disabled(self):
        crowd = crowd_mrm(4, 4)
        assert prepass.prepare(crowd, {0}, mode=False) is None
        assert prepass.last_info().reason == "disabled"

    def test_too_large_cap(self, monkeypatch):
        monkeypatch.setattr(prepass, "LUMP_MAX_STATES", 8)
        crowd = crowd_mrm(4, 4)
        site0 = set(range(4))  # a whole site: respects the symmetry
        assert prepass.prepare(crowd, site0, mode="auto") is None
        assert prepass.last_info().reason == "too_large"
        # Forced mode ignores the auto cap.
        assert prepass.prepare(crowd, site0, mode=True) is not None

    def test_no_reduction(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=0.0)
        builder.add_state("b", reward=1.0)
        builder.add_transition("a", "b", 1.0)
        builder.add_transition("b", "a", 2.0)
        model = builder.build()
        assert prepass.prepare(model, {1}, mode=True) is None
        assert prepass.last_info().reason == "no_reduction"

    def test_validate_mode_rejects_garbage(self):
        with pytest.raises(ModelError):
            prepass.validate_mode("yes")
        with pytest.raises(ModelError):
            ModelChecker(crowd_mrm(3, 2), lump="always")

    def test_metrics_and_span(self):
        crowd = crowd_mrm(20, 30)
        _, psi = _crowd_sets(crowd)
        with OBS.capture(reset_metrics=True):
            pre = prepass.prepare(crowd, psi, mode=True)
            snapshot = OBS.metrics.snapshot()
            spans = [s.name for s in OBS.tracer.roots]
        assert pre is not None
        assert "lump_prepass" in spans
        assert snapshot["repro_lump_applied_total"][""] == 1.0
        assert snapshot["repro_lump_states_before"][""] == 600.0
        assert snapshot["repro_lump_states_after"][""] == pre.num_blocks


# ---------------------------------------------------------------------------
# Checker and CLI surface


class TestCheckerSurface:
    def test_last_lump_reports(self):
        checker = ModelChecker(crowd_mrm(40, 20))
        checker.check("P>=0.0 [ true U[0,1][0,2] crowded ]")
        info = checker.last_lump
        assert info.applied
        assert info.num_blocks < info.num_states

    def test_cli_no_lump(self, tmp_path, capsys):
        io.save_mrm(crowd_mrm(6, 4), tmp_path / "crowd")
        code = cli.main([
            "check", "--model", str(tmp_path / "crowd"),
            "--formula", "P>=0.0 [ true U[0,1][0,2] crowded ]",
            "--no-lump", "-v"])
        assert code == 0
        assert ("lump: not applied (disabled)"
                in capsys.readouterr().err)

    def test_cli_verbose_reports_blocks(self, tmp_path, capsys):
        io.save_mrm(crowd_mrm(6, 4), tmp_path / "crowd")
        code = cli.main([
            "check", "--model", str(tmp_path / "crowd"),
            "--formula", "P>=0.0 [ true U[0,1][0,2] crowded ]", "-v"])
        assert code == 0
        # Small model: the lumping is found and reported, not applied.
        assert "blocks found" in capsys.readouterr().err
