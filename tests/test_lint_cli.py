"""End-to-end tests for `repro lint` and the pre-flight integration.

Golden-output tests run over the checked-in example models in
``examples/models/``; the acceptance scenario (impulse-reward model +
Sericola-only query) is covered for all three surfaces: `repro lint`,
`repro check`, and the certified checker's static engine skipping.
"""

import json
from pathlib import Path

import pytest

from repro import cli
from repro.algorithms import (DiscretizationEngine, ErlangEngine,
                              SericolaEngine)
from repro.ctmc import io as model_io
from repro.errors import PreflightError
from repro.mc import ModelChecker, Verdict

MODELS = Path(__file__).resolve().parents[1] / "examples" / "models"

JOINT_FORMULA = "P>=0.5 [ (up | degraded) U[0,1][0,2] down ]"


def run_cli(argv, capsys):
    code = cli.main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestLintCli:
    def test_clean_model_text(self, capsys):
        code, out, _ = run_cli(
            ["lint", "--model", str(MODELS / "clean")], capsys)
        assert code == 0
        assert "no diagnostics" in out

    def test_clean_model_json(self, capsys):
        code, out, _ = run_cli(
            ["lint", "--model", str(MODELS / "clean"),
             "--format", "json"], capsys)
        assert code == 0
        payload = json.loads(out)
        assert payload["diagnostics"] == []
        assert payload["summary"] == {"errors": 0, "warnings": 0,
                                      "infos": 0}

    def test_messy_model_text_golden(self, capsys):
        code, out, _ = run_cli(
            ["lint", "--model", str(MODELS / "messy")], capsys)
        # warnings only -> exit 0 with the default --fail-on error
        assert code == 0
        for expected in ("warning[M001]", "warning[M002]",
                         "warning[M004]", "warning[M005]",
                         "warning[M007]", "info[M006]",
                         "warning[E004]"):
            assert expected in out, out
        assert "hint:" in out and "at:" in out
        assert "6 warnings" in out and "1 info" in out

    def test_messy_model_json_golden(self, capsys):
        code, out, _ = run_cli(
            ["lint", "--model", str(MODELS / "messy"),
             "--format", "json"], capsys)
        assert code == 0
        payload = json.loads(out)
        found = {d["code"] for d in payload["diagnostics"]}
        assert found == {"M001", "M002", "M004", "M005", "M006",
                         "M007", "E004"}
        assert payload["summary"] == {"errors": 0, "warnings": 6,
                                      "infos": 1}
        m007 = next(d for d in payload["diagnostics"]
                    if d["code"] == "M007")
        assert m007["severity"] == "warning"
        assert "(1, 2)" in m007["location"]

    def test_fail_on_warning(self, capsys):
        code, _, _ = run_cli(
            ["lint", "--model", str(MODELS / "messy"),
             "--fail-on", "warning"], capsys)
        assert code == 1
        code, _, _ = run_cli(
            ["lint", "--model", str(MODELS / "clean"),
             "--fail-on", "warning"], capsys)
        assert code == 0

    def test_engine_none_skips_engine_passes(self, capsys):
        code, out, _ = run_cli(
            ["lint", "--model", str(MODELS / "messy"),
             "--engine", "none"], capsys)
        assert code == 0
        assert "E004" not in out

    def test_impulse_model_warns_without_formula(self, capsys):
        code, out, _ = run_cli(
            ["lint", "--model", str(MODELS / "impulse"),
             "--engine", "sericola"], capsys)
        # no formula -> the incompatibility is latent: warning, exit 0
        assert code == 0
        assert "warning[E001]" in out

    def test_formula_only_findings(self, capsys):
        code, out, _ = run_cli(
            ["lint", "--model", str(MODELS / "clean"),
             "--formula", "P>=0.5 [ up U[0,1] ghost ]",
             "--engine", "none"], capsys)
        assert code == 0
        assert "warning[F005]" in out


class TestAcceptanceScenario:
    """Impulse model + Sericola-only query, across all surfaces."""

    def test_lint_reports_e001_error_exit_2(self, capsys):
        code, out, _ = run_cli(
            ["lint", "--model", str(MODELS / "impulse"),
             "--engine", "sericola",
             "--formula", JOINT_FORMULA], capsys)
        assert code == 2
        assert "error[E001]" in out
        assert "state-based rewards only" in out
        assert "discretisation or pseudo-Erlang" in out

    def test_check_prints_diagnostic_not_traceback(self, capsys):
        code, out, err = run_cli(
            ["check", "--model", str(MODELS / "impulse"),
             "--engine", "sericola",
             "--formula", JOINT_FORMULA], capsys)
        assert code == 2
        assert "E001" in err
        assert "hint:" in err
        assert "Traceback" not in err

    def test_checker_preflight_raises(self):
        model = model_io.load_mrm(str(MODELS / "impulse"))
        checker = ModelChecker(model, engine=SericolaEngine())
        with pytest.raises(PreflightError) as excinfo:
            checker.check(JOINT_FORMULA)
        assert excinfo.value.diagnostics
        assert excinfo.value.diagnostics[0].code == "E001"
        assert "preflight=False" in str(excinfo.value)

    def test_checker_lint_method(self):
        model = model_io.load_mrm(str(MODELS / "impulse"))
        checker = ModelChecker(model, engine=SericolaEngine())
        report = checker.lint(JOINT_FORMULA)
        assert "E001" in set(report.codes())
        assert report.has_errors

    def test_certified_never_invokes_incompatible_engine(self):
        model = model_io.load_mrm(str(MODELS / "impulse"))
        sericola = SericolaEngine()
        chain = (sericola, ErlangEngine(phases=64),
                 DiscretizationEngine(step=1.0 / 64))
        checker = ModelChecker(model, engine=sericola)
        result = checker.check_certified(JOINT_FORMULA, chain=chain)
        assert result.verdict in (Verdict.TRUE, Verdict.FALSE)
        skipped = [f for f in result.failures if f.skipped_static]
        assert skipped and skipped[0].engine == "sericola"
        assert "skipped (static)" in str(skipped[0])
        assert "E001" in skipped[0].reason
        # the engine was never invoked: all its counters stayed zero
        stats = sericola.stats
        assert (stats.cache_hits, stats.cache_misses,
                stats.propagation_steps, stats.matvec_count,
                stats.sweep_points) == (0, 0, 0, 0, 0)

    def test_preflight_false_forces_the_old_failure(self):
        from repro.errors import NumericalError
        model = model_io.load_mrm(str(MODELS / "impulse"))
        checker = ModelChecker(model, engine=SericolaEngine(),
                               preflight=False)
        with pytest.raises(NumericalError) as excinfo:
            checker.check(JOINT_FORMULA)
        assert not isinstance(excinfo.value, PreflightError)
        assert "E001" in str(excinfo.value)
