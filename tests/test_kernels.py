"""The :mod:`repro.kernels` backend layer.

Covers backend selection (explicit ``kernel=`` knob, the
``REPRO_KERNEL`` environment variable, auto-detection and the
numba-absent fallback), the NumPy kernels against naive per-row
reference loops (including the ``shift >= cells`` and clamp edge
cases), the shift-plan caching in ``matrix_cache``, the
``final_density_batch`` telemetry, and -- when numba is importable --
hypothesis cross-backend agreement to ``1e-12`` on random MRMs with
impulse rewards.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.algorithms import (DiscretizationEngine, ErlangEngine,
                              SericolaEngine, clear_caches)
from repro.algorithms.cache import matrix_cache
from repro.ctmc import ModelBuilder
from repro.errors import ModelError, NumericalError
from repro.kernels import (build_shift_plan, get_backend,
                           numba_available, reset_backend_cache)
from repro.models import workloads
from repro.obs import OBS

CROSS_BACKEND_TOLERANCE = 1e-12


@pytest.fixture(autouse=True)
def fresh_backends(monkeypatch):
    """Isolate every test from the ambient env var and memoisation."""
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    reset_backend_cache()
    yield
    reset_backend_cache()


# ---------------------------------------------------------------------------
# Backend selection


class TestBackendSelection:
    def test_env_var_selects_numpy(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        assert kernels.default_backend_name() == "numpy"
        assert get_backend(None).name == "numpy"

    def test_env_var_reaches_engines(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        assert DiscretizationEngine(step=0.5).kernel == "numpy"
        assert SericolaEngine().kernel == "numpy"
        assert ErlangEngine(phases=4).kernel == "numpy"

    def test_auto_detection(self):
        expected = "numba" if numba_available() else "numpy"
        assert kernels.default_backend_name() == expected
        assert expected in kernels.available_backends()
        assert "numpy" in kernels.available_backends()

    def test_unknown_env_var_warns_and_falls_through(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "vulkan")
        with pytest.warns(RuntimeWarning, match="REPRO_KERNEL"):
            name = kernels.default_backend_name()
        assert name in ("numpy", "numba")

    def test_unknown_backend_name_raises(self):
        with pytest.raises(NumericalError, match="unknown kernel"):
            get_backend("vulkan")
        with pytest.raises(NumericalError):
            DiscretizationEngine(step=0.5, kernel="vulkan")

    def test_instance_passthrough_and_memoisation(self):
        backend = get_backend("numpy")
        assert get_backend(backend) is backend
        assert get_backend("numpy") is backend

    def test_numba_absent_falls_back_to_numpy(self, monkeypatch):
        # Blocking the import (sys.modules[name] = None) makes both
        # find_spec and ``from numba import njit`` fail, whether or
        # not numba is actually installed.
        monkeypatch.setitem(sys.modules, "numba", None)
        monkeypatch.delitem(sys.modules, "repro.kernels.numba_backend",
                            raising=False)
        reset_backend_cache()
        assert not numba_available()
        assert kernels.available_backends() == ["numpy", "sparse",
                                                "dense"]
        with pytest.warns(RuntimeWarning, match="falling back"):
            backend = get_backend("numba")
        assert backend.name == "numpy"

    def test_env_numba_without_numba_warns_once_resolved(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "numba")
        monkeypatch.setitem(sys.modules, "numba", None)
        monkeypatch.delitem(sys.modules, "repro.kernels.numba_backend",
                            raising=False)
        reset_backend_cache()
        with pytest.warns(RuntimeWarning, match="falling back"):
            engine = DiscretizationEngine(step=0.5)
        assert engine.kernel == "numpy"

    def test_kernel_in_cache_tokens(self):
        disc = DiscretizationEngine(step=0.25, kernel="numpy")
        assert "numpy" in disc._cache_token()
        assert "numpy" in SericolaEngine(kernel="numpy")._cache_token()
        assert "numpy" in ErlangEngine(phases=4,
                                       kernel="numpy")._cache_token()


# ---------------------------------------------------------------------------
# NumPy kernels vs naive reference loops


def naive_shift_down(src, shifts, clamp):
    rows, cells = src.shape
    dst = np.zeros_like(src)
    for i in range(rows):
        v = int(shifts[i])
        for k in range(cells):
            if k + v < cells:
                dst[i, k] = src[i, k + v]
        if clamp and v > 0:
            dst[i, 0] += src[i, :min(v, cells)].sum()
    return dst


def naive_shift_up(src, shifts, clamp):
    rows, cells = src.shape
    dst = np.zeros_like(src)
    for i in range(rows):
        v = int(shifts[i])
        for k in range(cells):
            if k - v >= 0:
                dst[i, k] = src[i, k - v]
            elif clamp:
                dst[i, k] = src[i, 0]
    return dst


def naive_scan(stay, move, inputs, start):
    out = np.empty_like(inputs)
    for i in range(inputs.shape[0]):
        y = start[i]
        for k in range(inputs.shape[1]):
            y = move * inputs[i, k] + stay * y
            out[i, k] = y
    return out


def _all_backends():
    names = ["numpy"]
    if numba_available():
        names.append("numba")
    names.extend(["sparse", "dense"])
    return names


class TestShiftKernels:
    #: Displacements covering zero, interior, boundary and overflow.
    SHIFTS = np.array([0, 1, 3, 7, 8, 11], dtype=np.int64)
    CELLS = 8

    @pytest.fixture
    def src(self):
        rng = np.random.default_rng(42)
        return rng.uniform(0.0, 1.0, size=(len(self.SHIFTS), self.CELLS))

    @pytest.mark.parametrize("backend_name", _all_backends())
    @pytest.mark.parametrize("clamp", [False, True])
    def test_shift_down_matches_naive(self, src, clamp, backend_name):
        backend = get_backend(backend_name)
        plan = build_shift_plan(self.SHIFTS)
        dst = np.empty_like(src)
        backend.shift_down(src, dst, plan, clamp)
        np.testing.assert_allclose(
            dst, naive_shift_down(src, self.SHIFTS, clamp),
            rtol=0.0, atol=1e-15)

    @pytest.mark.parametrize("backend_name", _all_backends())
    @pytest.mark.parametrize("clamp", [False, True])
    def test_shift_up_matches_naive(self, src, clamp, backend_name):
        backend = get_backend(backend_name)
        plan = build_shift_plan(self.SHIFTS)
        dst = np.empty_like(src)
        backend.shift_up(src, dst, plan, clamp)
        np.testing.assert_allclose(
            dst, naive_shift_up(src, self.SHIFTS, clamp),
            rtol=0.0, atol=1e-15)

    @pytest.mark.parametrize("backend_name", _all_backends())
    def test_first_order_scan_matches_naive(self, backend_name):
        backend = get_backend(backend_name)
        rng = np.random.default_rng(7)
        inputs = rng.uniform(0.0, 1.0, size=(5, 12))
        start = rng.uniform(0.0, 1.0, size=5)
        got = backend.first_order_scan(0.375, 0.625, inputs, start)
        np.testing.assert_allclose(
            got, naive_scan(0.375, 0.625, inputs, start),
            rtol=0.0, atol=1e-13)

    def test_shift_plan_expand_maps_rows_to_batches(self):
        plan = build_shift_plan(np.array([2, 0], dtype=np.int64))
        wide = plan.expand(3)
        assert wide.shifts.tolist() == [2, 2, 2, 0, 0, 0]
        groups = dict((value, rows.tolist()) for value, rows in wide.groups)
        assert groups == {0: [3, 4, 5], 2: [0, 1, 2]}


# ---------------------------------------------------------------------------
# Engine integration: caching and telemetry


class TestEngineIntegration:
    def test_shift_plan_cached_per_model_and_step(self, flip_flop):
        clear_caches()
        engine = DiscretizationEngine(step=0.25, kernel="numpy")
        indicator = np.array([1.0, 0.0])
        engine.joint_probability_from(flip_flop, 1.0, 0.5, indicator, 0)
        key = ("disc-shift-plan", flip_flop.fingerprint, 0.25)
        plan = matrix_cache.get(key)
        assert plan is not None
        assert plan.shifts.tolist() == [2, 0]
        # A second run reuses the same plan object.
        engine.joint_probability_from(flip_flop, 1.0, 0.5, indicator, 1)
        assert matrix_cache.get(key) is plan

    def test_final_density_batch_telemetry(self, flip_flop):
        clear_caches()
        engine = DiscretizationEngine(step=0.25)
        with OBS.capture(reset_metrics=True):
            engine.final_density_batch(flip_flop, 1.0, 1.0, [0, 1])
            roots = list(OBS.tracer.roots)
            snapshot = OBS.metrics.snapshot()
        assert [s.name for s in roots] == ["final_density_batch"]
        # The engine is unpinned ("auto"); the histogram is labelled
        # with the backend the run actually resolved to.
        assert engine.kernel == "auto"
        label = (f'{{engine="discretization",'
                 f'kernel="{engine.last_kernel}"}}')
        histogram = snapshot["repro_matvec_block_seconds"][label]
        assert histogram["count"] > 0
        gauge = snapshot["repro_kernel_selected"]
        assert gauge[label] == 1.0

    def test_batch_matches_scalar_density(self, three_level_chain):
        clear_caches()
        engine = DiscretizationEngine(step=0.25, kernel="numpy")
        batch = engine.final_density_batch(three_level_chain, 1.0, 2.0,
                                           [0, 2])
        for index, state in enumerate((0, 2)):
            single = engine.final_density(three_level_chain, 1.0, 2.0,
                                          state)
            np.testing.assert_allclose(batch[index], single,
                                       rtol=0.0, atol=1e-12)


# ---------------------------------------------------------------------------
# Cross-backend agreement (requires numba)


def _random_impulse_mrm(num_states: int, seed: int):
    """A connected random MRM with integer rate and impulse rewards."""
    rng = np.random.default_rng(seed)
    builder = ModelBuilder()
    for s in range(num_states):
        builder.add_state(f"s{s}", reward=float(rng.integers(0, 3)))
    for s in range(num_states):
        targets = rng.permutation(num_states)
        for dst in targets[:2]:
            if int(dst) != s:
                builder.add_transition(
                    s, int(dst), float(rng.uniform(0.2, 2.0)),
                    impulse=float(rng.integers(0, 2)))
    for s in range(num_states):
        builder.add_transition(s, (s + 1) % num_states,
                               float(rng.uniform(0.2, 2.0)))
    return builder.build(initial_state=0)


class TestSparseBackendAgreement:
    """The CSR-pinned backend must match numpy to <= 1e-12 everywhere
    (always runnable: scipy is a hard dependency)."""

    @settings(max_examples=15, deadline=None)
    @given(num_states=st.integers(min_value=2, max_value=7),
           seed=st.integers(min_value=0, max_value=10_000))
    def test_discretization_with_impulses(self, num_states, seed):
        try:
            model = _random_impulse_mrm(num_states, seed)
        except ModelError:
            # The random generator may close the ring over a transition
            # it already drew with a different impulse; skip the draw.
            assume(False)
        # A step that divides t = 1.0 and keeps every stay probability
        # positive, however fast the drawn exit rates are.
        step = 1.0 / max(4, int(np.ceil(model.max_exit_rate / 0.9)))
        indicator = np.ones(model.num_states)
        indicator[0] = 0.0
        values = []
        for backend in ("numpy", "sparse", "dense"):
            clear_caches()
            engine = DiscretizationEngine(step=step, kernel=backend)
            values.append(engine.joint_probability_from(
                model, 1.0, 2.0, indicator, 0))
        assert abs(values[1] - values[0]) <= CROSS_BACKEND_TOLERANCE
        assert abs(values[2] - values[0]) <= CROSS_BACKEND_TOLERANCE

    @settings(max_examples=10, deadline=None)
    @given(num_states=st.integers(min_value=2, max_value=6),
           seed=st.integers(min_value=0, max_value=10_000))
    def test_sericola_random_models(self, num_states, seed):
        model = workloads.random_mrm(num_states, seed=seed)
        target = [model.num_states - 1]
        vectors = []
        for backend in ("numpy", "sparse"):
            clear_caches()
            engine = SericolaEngine(epsilon=1e-8, kernel=backend)
            vectors.append(engine.joint_probability_vector(
                model, 1.5, 1.0, target))
        assert np.max(np.abs(vectors[0] - vectors[1])) \
            <= CROSS_BACKEND_TOLERANCE

    def test_erlang_case(self, flip_flop):
        values = []
        for backend in ("numpy", "sparse"):
            clear_caches()
            engine = ErlangEngine(phases=16, kernel=backend)
            values.append(engine.joint_probability_from(
                flip_flop, 1.0, 1.0, np.array([0.0, 1.0]), 0))
        assert abs(values[0] - values[1]) <= CROSS_BACKEND_TOLERANCE

    def test_auto_selects_sparse_on_large_sparse_models(self):
        sparse_backend = kernels.select_for_model(
            kernels.SPARSE_AUTO_MIN_STATES, 4 * kernels.SPARSE_AUTO_MIN_STATES)
        assert sparse_backend.name == "sparse"
        small = kernels.select_for_model(8, 20)
        assert small.name in ("numpy", "numba")
        # Dense matrices stay on the dense-loop backends whatever |S|.
        n = kernels.SPARSE_AUTO_MIN_STATES
        dense_model = kernels.select_for_model(n, n * n)
        assert dense_model.name in ("numpy", "numba")


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
class TestCrossBackendAgreement:
    @settings(max_examples=15, deadline=None)
    @given(num_states=st.integers(min_value=2, max_value=7),
           seed=st.integers(min_value=0, max_value=10_000))
    def test_discretization_with_impulses(self, num_states, seed):
        model = _random_impulse_mrm(num_states, seed)
        indicator = np.ones(model.num_states)
        indicator[0] = 0.0
        values = []
        for backend in ("numpy", "numba"):
            clear_caches()
            engine = DiscretizationEngine(step=0.25, kernel=backend)
            values.append(engine.joint_probability_from(
                model, 1.0, 2.0, indicator, 0))
        assert abs(values[0] - values[1]) <= CROSS_BACKEND_TOLERANCE

    @settings(max_examples=10, deadline=None)
    @given(num_states=st.integers(min_value=2, max_value=6),
           seed=st.integers(min_value=0, max_value=10_000))
    def test_sericola_random_models(self, num_states, seed):
        model = workloads.random_mrm(num_states, seed=seed)
        target = [model.num_states - 1]
        vectors = []
        for backend in ("numpy", "numba"):
            clear_caches()
            engine = SericolaEngine(epsilon=1e-8, kernel=backend)
            vectors.append(engine.joint_probability_vector(
                model, 1.5, 1.0, target))
        assert np.max(np.abs(vectors[0] - vectors[1])) \
            <= CROSS_BACKEND_TOLERANCE

    def test_erlang_case(self, flip_flop):
        values = []
        for backend in ("numpy", "numba"):
            clear_caches()
            engine = ErlangEngine(phases=16, kernel=backend)
            values.append(engine.joint_probability_from(
                flip_flop, 1.0, 1.0, np.array([0.0, 1.0]), 0))
        assert abs(values[0] - values[1]) <= CROSS_BACKEND_TOLERANCE
