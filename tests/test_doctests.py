"""Run the doctests embedded in the library's docstrings."""

import doctest

import pytest

import repro.analysis
import repro.ctmc.builder
import repro.logic.sugar
import repro.mc.checker
import repro.srn.net
from repro.algorithms import base as algorithms_base

MODULES = [
    repro.analysis,
    repro.ctmc.builder,
    repro.logic.sugar,
    repro.mc.checker,
    repro.srn.net,
    algorithms_base,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, optionflags=doctest.ELLIPSIS)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0
