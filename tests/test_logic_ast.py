"""Unit tests for the CSRL abstract syntax."""

import pytest

from repro.errors import FormulaError
from repro.logic import ast
from repro.logic.intervals import Interval
from repro.logic import sugar as f


class TestAtomic:
    def test_valid_names(self):
        assert ast.Atomic("call_idle").name == "call_idle"
        assert ast.Atomic("x2").name == "x2"

    def test_invalid_characters_rejected(self):
        with pytest.raises(FormulaError):
            ast.Atomic("a-b")
        with pytest.raises(FormulaError):
            ast.Atomic("")

    def test_leading_digit_rejected(self):
        with pytest.raises(FormulaError):
            ast.Atomic("2fast")


class TestStructuralEquality:
    def test_equal_formulas(self):
        a = ast.Until(ast.Atomic("x"), ast.Atomic("y"),
                      Interval.upto(1.0), Interval.unbounded())
        b = ast.Until(ast.Atomic("x"), ast.Atomic("y"),
                      Interval.upto(1.0), Interval.unbounded())
        assert a == b
        assert hash(a) == hash(b)

    def test_different_bounds_differ(self):
        a = ast.Next(ast.Atomic("x"), Interval.upto(1.0))
        b = ast.Next(ast.Atomic("x"), Interval.upto(2.0))
        assert a != b

    def test_usable_as_dict_key(self):
        cache = {ast.Not(ast.Atomic("x")): 42}
        assert cache[ast.Not(ast.Atomic("x"))] == 42


class TestProbOperator:
    def test_valid(self):
        prob = ast.Prob(">", 0.5, ast.Next(ast.TRUE))
        assert prob.comparison == ">"
        assert prob.bound == 0.5

    def test_invalid_comparison(self):
        with pytest.raises(FormulaError):
            ast.Prob("==", 0.5, ast.Next(ast.TRUE))

    def test_bound_outside_unit_interval(self):
        with pytest.raises(FormulaError):
            ast.Prob(">", 1.5, ast.Next(ast.TRUE))
        with pytest.raises(FormulaError):
            ast.Prob(">", -0.1, ast.Next(ast.TRUE))

    def test_compare_helper(self):
        assert ast.compare(0.6, ">", 0.5)
        assert ast.compare(0.5, ">=", 0.5)
        assert not ast.compare(0.5, ">", 0.5)
        assert ast.compare(0.4, "<", 0.5)
        assert ast.compare(0.5, "<=", 0.5)
        with pytest.raises(FormulaError):
            ast.compare(0.5, "!=", 0.5)


class TestOperatorSugar:
    def test_python_operators(self):
        x, y = ast.Atomic("x"), ast.Atomic("y")
        assert (x & y) == ast.And(x, y)
        assert (x | y) == ast.Or(x, y)
        assert ~x == ast.Not(x)
        assert x.implies(y) == ast.Implies(x, y)

    def test_sugar_module(self):
        assert f.conj() == ast.TRUE
        assert f.disj() == ast.FALSE
        assert f.conj(f.ap("a"), f.ap("b"), f.ap("c")) == ast.And(
            ast.And(ast.Atomic("a"), ast.Atomic("b")), ast.Atomic("c"))

    def test_sugar_bounds_normalisation(self):
        u = f.until(f.ap("a"), f.ap("b"), time=24, reward=600)
        assert u.time == Interval.upto(24.0)
        assert u.reward == Interval.upto(600.0)
        unbounded = f.eventually(f.ap("a"))
        assert unbounded.time.is_trivial
        assert unbounded.reward.is_trivial

    def test_sugar_accepts_interval_objects(self):
        u = f.next_(f.ap("a"), time=Interval(1.0, 2.0))
        assert u.time == Interval(1.0, 2.0)


class TestTraversal:
    def test_subformulas(self):
        formula = ast.Prob(">", 0.1, ast.Until(
            ast.Or(ast.Atomic("a"), ast.Atomic("b")), ast.Atomic("c")))
        kinds = [type(node).__name__ for node in formula.subformulas()]
        assert kinds == ["Prob", "Until", "Or", "Atomic", "Atomic",
                         "Atomic"]

    def test_atomic_propositions(self):
        formula = ast.And(ast.Atomic("a"),
                          ast.Prob("<", 0.5, ast.Eventually(
                              ast.Atomic("b"))))
        assert formula.atomic_propositions() == {"a", "b"}

    def test_eventually_desugars(self):
        eventually = ast.Eventually(ast.Atomic("x"), Interval.upto(2.0),
                                    Interval.upto(3.0))
        until = eventually.as_until()
        assert until.left == ast.TRUE
        assert until.right == ast.Atomic("x")
        assert until.time == Interval.upto(2.0)
        assert until.reward == Interval.upto(3.0)


class TestPrinting:
    def test_atomic(self):
        assert str(ast.Atomic("busy")) == "busy"

    def test_boolean_operators(self):
        x, y = ast.Atomic("x"), ast.Atomic("y")
        assert str(x & y) == "x & y"
        assert str(~(x | y)) == "!(x | y)"
        assert str(x.implies(y)) == "x => y"

    def test_until_with_both_bounds(self):
        formula = ast.Prob(">", 0.5, ast.Until(
            ast.Or(ast.Atomic("call_idle"), ast.Atomic("doze")),
            ast.Atomic("call_initiated"),
            Interval.upto(24.0), Interval.upto(600.0)))
        assert str(formula) == ("P>0.5 [ (call_idle | doze) "
                                "U[0,24][0,600] call_initiated ]")

    def test_until_time_only(self):
        formula = ast.Until(ast.TRUE, ast.Atomic("x"), Interval.upto(5.0))
        assert str(formula) == "true U[0,5] x"

    def test_until_reward_only_keeps_time_marker(self):
        formula = ast.Until(ast.TRUE, ast.Atomic("x"),
                            Interval.unbounded(), Interval.upto(5.0))
        # The trivial time bound is printed in parsable form so the
        # reward bracket cannot be mistaken for a time bound.
        assert str(formula) == "true U[0,inf][0,5] x"

    def test_next_unbounded(self):
        assert str(ast.Next(ast.Atomic("x"))) == "X x"

    def test_steady_state(self):
        assert str(ast.SteadyState(">=", 0.9, ast.Atomic("up"))) \
            == "S>=0.9 [ up ]"
