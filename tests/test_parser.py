"""Unit tests for the CSRL lexer and parser."""

import math

import pytest

from repro.errors import ParseError
from repro.logic import ast
from repro.logic.intervals import Interval
from repro.logic.lexer import tokenize
from repro.logic.parser import parse_formula, parse_path_formula


class TestLexer:
    def test_basic_tokens(self):
        kinds = [token.kind for token in tokenize("P>0.5 [ a U b ]")]
        assert kinds == ["KEYWORD", "CMP", "NUMBER", "LBRACKET", "IDENT",
                         "KEYWORD", "IDENT", "RBRACKET", "EOF"]

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("true trueish U Uboat")
        assert [t.kind for t in tokens[:4]] == [
            "KEYWORD", "IDENT", "KEYWORD", "IDENT"]

    def test_number_formats(self):
        tokens = tokenize("0.5 .25 1e-3 2E+4 7")
        assert all(t.kind == "NUMBER" for t in tokens[:-1])

    def test_positions(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3

    def test_illegal_character(self):
        with pytest.raises(ParseError) as info:
            tokenize("a $ b")
        assert info.value.position == 2


class TestStateFormulas:
    def test_atomic(self):
        assert parse_formula("busy") == ast.Atomic("busy")

    def test_constants(self):
        assert parse_formula("true") == ast.TRUE
        assert parse_formula("false") == ast.FALSE

    def test_precedence_and_binds_tighter_than_or(self):
        formula = parse_formula("a | b & c")
        assert formula == ast.Or(ast.Atomic("a"),
                                 ast.And(ast.Atomic("b"), ast.Atomic("c")))

    def test_implies_is_right_associative_and_weakest(self):
        formula = parse_formula("a => b => c")
        assert formula == ast.Implies(
            ast.Atomic("a"), ast.Implies(ast.Atomic("b"), ast.Atomic("c")))

    def test_negation_binds_tightest(self):
        formula = parse_formula("!a & b")
        assert formula == ast.And(ast.Not(ast.Atomic("a")), ast.Atomic("b"))

    def test_double_negation(self):
        assert parse_formula("!!a") == ast.Not(ast.Not(ast.Atomic("a")))

    def test_parentheses(self):
        formula = parse_formula("(a | b) & c")
        assert formula == ast.And(ast.Or(ast.Atomic("a"), ast.Atomic("b")),
                                  ast.Atomic("c"))

    def test_alternative_operator_spellings(self):
        assert parse_formula("a && b") == parse_formula("a & b")
        assert parse_formula("a || b") == parse_formula("a | b")
        assert parse_formula("~a") == parse_formula("!a")


class TestProbabilisticOperators:
    def test_prob_with_brackets(self):
        formula = parse_formula("P>=0.25 [ X a ]")
        assert formula == ast.Prob(">=", 0.25, ast.Next(ast.Atomic("a")))

    def test_prob_with_parentheses(self):
        formula = parse_formula("P<0.1 ( a U b )")
        assert isinstance(formula, ast.Prob)
        assert formula.comparison == "<"

    def test_steady_state(self):
        formula = parse_formula("S>0.99 [ up ]")
        assert formula == ast.SteadyState(">", 0.99, ast.Atomic("up"))

    def test_nesting(self):
        formula = parse_formula("P>0.5 [ a U[0,4] P<0.1 [ X b ] ]")
        inner = formula.path.right
        assert isinstance(inner, ast.Prob)
        assert isinstance(inner.path, ast.Next)

    def test_paper_q3(self):
        formula = parse_formula(
            "P>0.5 [ (call_idle | doze) U[0,24][0,600] call_initiated ]")
        until = formula.path
        assert until.time == Interval.upto(24.0)
        assert until.reward == Interval.upto(600.0)


class TestBounds:
    def test_no_bounds(self):
        until = parse_path_formula("a U b")
        assert until.time.is_trivial
        assert until.reward.is_trivial

    def test_time_bound_only(self):
        until = parse_path_formula("a U[0,5] b")
        assert until.time == Interval.upto(5.0)
        assert until.reward.is_trivial

    def test_both_bounds(self):
        until = parse_path_formula("a U[0,5][0,9] b")
        assert until.reward == Interval.upto(9.0)

    def test_infinite_upper_bound(self):
        until = parse_path_formula("a U[0,inf][0,9] b")
        assert math.isinf(until.time.upper)
        assert until.reward == Interval.upto(9.0)

    def test_general_interval(self):
        next_formula = parse_path_formula("X[1,2][3,4] a")
        assert next_formula.time == Interval(1.0, 2.0)
        assert next_formula.reward == Interval(3.0, 4.0)

    def test_shorthand_time_bound(self):
        assert parse_path_formula("a U<=7 b") == \
            parse_path_formula("a U[0,7] b")

    def test_eventually_and_globally(self):
        eventually = parse_path_formula("F[0,2] a")
        assert isinstance(eventually, ast.Eventually)
        globally = parse_path_formula("G[0,2][0,3] a")
        assert isinstance(globally, ast.Globally)
        assert globally.reward == Interval.upto(3.0)

    def test_empty_interval_rejected(self):
        with pytest.raises(ParseError):
            parse_formula("P>0 [ a U[5,2] b ]")


class TestRoundTrip:
    CASES = [
        "a",
        "!a",
        "a & b | c",
        "a => b",
        "P>0.5 [ X[0,2] a ]",
        "P<=0.25 [ (a | b) U[0,24][0,600] c ]",
        "P>=0.1 [ F[0,10] (a & !b) ]",
        "S<0.05 [ down ]",
        "P>0.5 [ G[0,8] up ]",
        "P>0.5 [ a U[0,inf)[0,6] b ]".replace("[0,inf)", "[0,inf]"),
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_parse_print_parse(self, text):
        formula = parse_formula(text)
        assert parse_formula(str(formula)) == formula


class TestErrors:
    @pytest.mark.parametrize("text", [
        "", "(", "a U", "P>", "P>0.5", "P>0.5 [ a ]", "P [ X a ]",
        "a b", "P>2 [ X a ]", "U a b", "a U[0,] b",
    ])
    def test_rejected_inputs(self, text):
        with pytest.raises(ParseError):
            parse_formula(text)

    def test_error_position_reported(self):
        with pytest.raises(ParseError) as info:
            parse_formula("a & & b")
        assert info.value.position == 4

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_formula("a b c")
