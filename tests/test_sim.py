"""Unit and statistical tests for the Monte-Carlo simulator."""

import numpy as np
import pytest

from repro.errors import NumericalError
from repro.logic.intervals import Interval
from repro.sim import (PathSimulator, estimate_joint_probability,
                       estimate_until_probability,
                       estimate_accumulated_reward_cdf)
from repro.sim.estimate import Estimate

MU = 0.7


class TestPaths:
    def test_path_structure(self, flip_flop):
        simulator = PathSimulator(flip_flop, seed=1)
        path = simulator.sample_path(5.0)
        assert path.steps[0].state == 0
        assert path.steps[0].entry_time == 0.0
        for earlier, later in zip(path.steps, path.steps[1:]):
            assert later.entry_time == pytest.approx(earlier.exit_time)
        assert path.steps[-1].exit_time == pytest.approx(5.0)

    def test_rewards_accumulate_along_path(self, flip_flop):
        simulator = PathSimulator(flip_flop, seed=2)
        path = simulator.sample_path(3.0)
        manual = sum(step.sojourn * flip_flop.reward(step.state)
                     for step in path.steps)
        assert path.final_reward == pytest.approx(manual)

    def test_reward_before_is_prefix_sum(self, flip_flop):
        simulator = PathSimulator(flip_flop, seed=3)
        path = simulator.sample_path(3.0)
        running = 0.0
        for step in path.steps:
            assert step.reward_before == pytest.approx(running)
            running += step.sojourn * flip_flop.reward(step.state)

    def test_state_at(self, flip_flop):
        simulator = PathSimulator(flip_flop, seed=4)
        path = simulator.sample_path(4.0)
        step = path.steps[0]
        assert path.state_at(step.entry_time) == step.state
        assert path.state_at(4.0) == path.steps[-1].state

    def test_reward_at(self, flip_flop):
        simulator = PathSimulator(flip_flop, seed=5)
        path = simulator.sample_path(4.0)
        assert path.reward_at(4.0, flip_flop.rewards) == pytest.approx(
            path.final_reward)
        assert path.reward_at(0.0, flip_flop.rewards) == 0.0

    def test_absorbing_path_ends(self, two_state_absorbing):
        simulator = PathSimulator(two_state_absorbing, seed=6)
        path = simulator.sample_path(1000.0)
        assert len(path.steps) <= 2

    def test_reproducibility(self, flip_flop):
        first = PathSimulator(flip_flop, seed=7).sample_path(3.0)
        second = PathSimulator(flip_flop, seed=7).sample_path(3.0)
        assert [s.state for s in first.steps] == \
            [s.state for s in second.steps]

    def test_negative_horizon_rejected(self, flip_flop):
        with pytest.raises(NumericalError):
            PathSimulator(flip_flop, seed=0).sample_path(-1.0)

    def test_initial_state_override(self, flip_flop):
        simulator = PathSimulator(flip_flop, seed=8)
        path = simulator.sample_path(1.0, initial_state=1)
        assert path.steps[0].state == 1

    def test_first_hit(self, two_state_absorbing):
        simulator = PathSimulator(two_state_absorbing, seed=9)
        path = simulator.sample_path(100.0)
        hit = path.first_hit({1})
        assert hit is not None and hit.state == 1
        assert path.first_hit({17}) is None


class TestEstimate:
    def test_interval_arithmetic(self):
        estimate = Estimate(value=0.5, half_width=0.1, samples=100)
        assert estimate.lower == 0.4
        assert estimate.upper == 0.6
        assert estimate.covers(0.45)
        assert not estimate.covers(0.7)

    def test_clamps_to_unit_interval(self):
        estimate = Estimate(value=0.01, half_width=0.1, samples=10)
        assert estimate.lower == 0.0

    def test_str(self):
        text = str(Estimate(value=0.5, half_width=0.01, samples=42))
        assert "42" in text


class TestStatisticalAgreement:
    def test_joint_probability_covers_exact(self, two_state_absorbing):
        t, r = 3.0, 1.2
        exact = 1.0 - np.exp(-MU * r)
        estimate = estimate_joint_probability(
            two_state_absorbing, t, r, {1}, samples=20_000, seed=11)
        assert estimate.covers(exact)

    def test_until_estimate_covers_exact(self, two_state_absorbing):
        t = 2.0
        exact = 1.0 - np.exp(-MU * t)
        estimate = estimate_until_probability(
            two_state_absorbing, {0}, {1}, Interval.upto(t),
            Interval.unbounded(), samples=20_000, seed=12)
        assert estimate.covers(exact)

    def test_until_with_reward_bound(self, two_state_absorbing):
        t, r = 3.0, 1.2
        exact = 1.0 - np.exp(-MU * r)
        estimate = estimate_until_probability(
            two_state_absorbing, {0}, {1}, Interval.upto(t),
            Interval.upto(r), samples=20_000, seed=13)
        assert estimate.covers(exact)

    def test_reward_cdf_covers_sericola(self, three_level_chain):
        from repro.algorithms import SericolaEngine
        t, r = 2.0, 3.0
        exact = SericolaEngine(epsilon=1e-11).joint_probability(
            three_level_chain, t, r, range(3))
        estimate = estimate_accumulated_reward_cdf(
            three_level_chain, t, r, samples=20_000, seed=14)
        assert estimate.covers(exact)

    def test_case_study_q3_by_simulation(self, adhoc):
        """End-to-end: simulate the *original* 9-state station model
        and check the Q3 path formula directly on sampled paths."""
        phi = set(adhoc.states_with("call_idle")) \
            | set(adhoc.states_with("doze"))
        psi = set(adhoc.states_with("call_initiated"))
        estimate = estimate_until_probability(
            adhoc, phi, psi, Interval.upto(24.0), Interval.upto(600.0),
            samples=4_000, seed=15)
        from repro.algorithms import SericolaEngine
        from repro.mc.transform import until_reduction
        reduced = until_reduction(adhoc, phi, psi)
        exact = SericolaEngine(epsilon=1e-9).joint_probability_vector(
            reduced, 24.0, 600.0, psi)[0]
        assert estimate.covers(exact)

    def test_unbounded_until_needs_horizon(self, flip_flop):
        with pytest.raises(ValueError, match="horizon"):
            estimate_until_probability(
                flip_flop, {0}, {1}, Interval.unbounded(),
                Interval.unbounded(), samples=10)
