"""Unit tests for the pseudo-Erlang engine."""

import numpy as np
import pytest

from repro.algorithms.erlang import (ErlangEngine, erlang_expanded_model,
                                     zero_reward_bound_vector)
from repro.ctmc import ModelBuilder
from repro.errors import NumericalError

MU = 0.7


class TestExpansion:
    def test_size(self, two_state_absorbing):
        expanded, barrier = erlang_expanded_model(two_state_absorbing,
                                                  r=2.0, phases=4)
        assert expanded.num_states == 2 * 4 + 1
        assert barrier == 8

    def test_phase_rates(self, two_state_absorbing):
        r, k = 2.0, 4
        expanded, barrier = erlang_expanded_model(two_state_absorbing,
                                                  r=r, phases=k)
        # State a (index 0, reward 1): phase advance at rate k/r = 2.
        assert expanded.rate(0, 1) == pytest.approx(k / r)
        # Last phase of a feeds the barrier.
        assert expanded.rate(k - 1, barrier) == pytest.approx(k / r)
        # Zero-reward state b never advances phases.
        assert expanded.rate(k, k + 1) == 0.0

    def test_original_transitions_copied_per_phase(
            self, two_state_absorbing):
        expanded, _ = erlang_expanded_model(two_state_absorbing,
                                            r=2.0, phases=3)
        for phase in range(3):
            assert expanded.rate(phase, 3 + phase) == pytest.approx(MU)

    def test_barrier_absorbing(self, two_state_absorbing):
        expanded, barrier = erlang_expanded_model(two_state_absorbing,
                                                  r=2.0, phases=2)
        assert expanded.is_absorbing(barrier)

    def test_max_exit_rate_growth(self, two_state_absorbing):
        # The paper: the uniformisation rate grows additively with
        # k * max(rho) / r.
        r, k = 2.0, 16
        expanded, _ = erlang_expanded_model(two_state_absorbing, r, k)
        assert expanded.max_exit_rate == pytest.approx(MU + k / r)

    def test_invalid_parameters(self, two_state_absorbing):
        with pytest.raises(NumericalError):
            erlang_expanded_model(two_state_absorbing, r=2.0, phases=0)
        with pytest.raises(NumericalError):
            erlang_expanded_model(two_state_absorbing, r=0.0, phases=4)


class TestApproximation:
    def test_k1_closed_form(self, two_state_absorbing):
        # k = 1: the bound is Exp(1/r); from state a the goal is hit
        # before the bound and before t iff T < min(Exp(1/r), t) with
        # the reward clock running at rate 1/r while in a:
        # P = mu/(mu + 1/r) * (1 - e^{-(mu + 1/r) t}).
        t, r = 3.0, 1.2
        engine = ErlangEngine(phases=1, epsilon=1e-13)
        computed = engine.joint_probability_vector(
            two_state_absorbing, t, r, [1])[0]
        rate = MU + 1.0 / r
        expected = (MU / rate) * (1.0 - np.exp(-rate * t))
        assert computed == pytest.approx(expected, abs=1e-10)

    def test_monotone_convergence_from_below(self, two_state_absorbing):
        # Table 3 of the paper: values increase towards the exact one.
        t, r = 3.0, 1.2
        exact = 1.0 - np.exp(-MU * r)
        values = [ErlangEngine(phases=k).joint_probability_vector(
            two_state_absorbing, t, r, [1])[0]
            for k in (1, 4, 16, 64, 256)]
        assert all(np.diff(values) > 0.0)
        assert all(value < exact for value in values)
        assert values[-1] == pytest.approx(exact, abs=2e-3)

    def test_error_roughly_halves_per_doubling(self, two_state_absorbing):
        t, r = 3.0, 1.2
        exact = 1.0 - np.exp(-MU * r)
        errors = [exact - ErlangEngine(phases=k).joint_probability_vector(
            two_state_absorbing, t, r, [1])[0]
            for k in (16, 32, 64)]
        assert errors[0] / errors[1] == pytest.approx(2.0, abs=0.35)
        assert errors[1] / errors[2] == pytest.approx(2.0, abs=0.35)

    def test_zero_reward_model_is_exact(self):
        builder = ModelBuilder()
        builder.add_state("x")
        builder.add_state("y")
        builder.add_transition("x", "y", 2.0)
        model = builder.build()
        engine = ErlangEngine(phases=4, epsilon=1e-13)
        joint = engine.joint_probability_vector(model, 1.0, 0.5, [1])
        assert joint[0] == pytest.approx(1.0 - np.exp(-2.0), abs=1e-10)

    def test_expanded_size_recorded(self, two_state_absorbing):
        engine = ErlangEngine(phases=8)
        engine.joint_probability_vector(two_state_absorbing, 1.0, 1.0, [1])
        assert engine.last_expanded_size == 17

    def test_invalid_phases(self):
        with pytest.raises(NumericalError):
            ErlangEngine(phases=0)


class TestZeroRewardBound:
    def test_pure_zero_reward_path(self):
        # x(0) -> y(0) -> z(1): Y_t = 0 while in {x, y}.
        builder = ModelBuilder()
        builder.add_state("x", reward=0.0)
        builder.add_state("y", reward=0.0)
        builder.add_state("z", reward=1.0)
        builder.add_transition("x", "y", 1.0)
        builder.add_transition("y", "z", 1.0)
        model = builder.build()
        t = 2.0
        vector = zero_reward_bound_vector(model, t,
                                          np.array([0.0, 1.0, 0.0]))
        # In y at t without having reached z: exactly one Poisson(t)
        # event in a 2-phase Erlang race = t e^{-t}.
        assert vector[0] == pytest.approx(t * np.exp(-t), abs=1e-10)

    def test_engine_uses_exact_zero_bound(self, two_state_absorbing):
        engine = ErlangEngine(phases=2)
        joint = engine.joint_probability_vector(two_state_absorbing,
                                                4.0, 0.0, [1])
        assert joint[0] == pytest.approx(0.0, abs=1e-12)
        assert joint[1] == pytest.approx(1.0, abs=1e-12)
