"""Unit tests for the Theorem-1 reduction and the duality transform."""

import numpy as np
import pytest

from repro.ctmc import ModelBuilder
from repro.errors import RewardError
from repro.mc.transform import (amalgamated_until_reduction, dual_model,
                                until_reduction)


@pytest.fixture
def diamond():
    """a -> {goal, bad, b}; b -> goal.  phi = {a, b}, psi = {goal}."""
    builder = ModelBuilder()
    builder.add_state("a", labels=("phi",), reward=1.0)
    builder.add_state("b", labels=("phi",), reward=2.0)
    builder.add_state("goal", labels=("psi",), reward=3.0)
    builder.add_state("bad", reward=4.0)
    builder.add_transition("a", "b", 1.0)
    builder.add_transition("a", "goal", 2.0)
    builder.add_transition("a", "bad", 1.0)
    builder.add_transition("b", "goal", 5.0)
    builder.add_transition("goal", "a", 7.0)
    builder.add_transition("bad", "a", 7.0)
    return builder.build(initial_state="a")


class TestUntilReduction:
    def test_decided_states_become_absorbing(self, diamond):
        reduced = until_reduction(diamond, {0, 1}, {2})
        assert reduced.is_absorbing(2)
        assert reduced.is_absorbing(3)
        assert not reduced.is_absorbing(0)

    def test_decided_states_lose_reward(self, diamond):
        reduced = until_reduction(diamond, {0, 1}, {2})
        assert reduced.reward(2) == 0.0
        assert reduced.reward(3) == 0.0
        assert reduced.reward(0) == 1.0
        assert reduced.reward(1) == 2.0

    def test_transient_transitions_preserved(self, diamond):
        reduced = until_reduction(diamond, {0, 1}, {2})
        assert reduced.rate(0, 1) == 1.0
        assert reduced.rate(1, 2) == 5.0

    def test_indices_and_labels_preserved(self, diamond):
        reduced = until_reduction(diamond, {0, 1}, {2})
        assert reduced.num_states == diamond.num_states
        assert reduced.states_with("psi") == frozenset({2})

    def test_original_untouched(self, diamond):
        until_reduction(diamond, {0, 1}, {2})
        assert not diamond.is_absorbing(2)
        assert diamond.reward(2) == 3.0

    def test_phi_and_psi_overlap(self, diamond):
        # States in both phi and psi are still absorbed (psi wins).
        reduced = until_reduction(diamond, {0, 1, 2}, {2})
        assert reduced.is_absorbing(2)


class TestAmalgamation:
    def test_case_study_shape(self, adhoc_reduced):
        # "three transient and two absorbing states" (Section 5.4).
        model = adhoc_reduced.model
        assert model.num_states == 5
        absorbing = [s for s in range(5) if model.is_absorbing(s)]
        assert len(absorbing) == 2
        assert adhoc_reduced.goal_state in absorbing

    def test_case_study_uniformization_rate(self, adhoc_reduced):
        # lambda * t = 19.5 * 24 = 468 reproduces Table 2's N column.
        assert adhoc_reduced.model.max_exit_rate == pytest.approx(19.5)

    def test_rates_into_amalgamated_states_accumulate(self, diamond):
        reduction = amalgamated_until_reduction(diamond, {0, 1}, {2})
        model = reduction.model
        goal = reduction.goal_state
        source = reduction.state_map[0]
        assert model.rate(source, goal) == 2.0

    def test_probabilities_match_unamalgamated(self, diamond):
        from repro.algorithms import SericolaEngine
        engine = SericolaEngine(epsilon=1e-11)
        t, r = 1.5, 2.0
        plain = until_reduction(diamond, {0, 1}, {2})
        full = engine.joint_probability_vector(plain, t, r, [2])
        reduction = amalgamated_until_reduction(diamond, {0, 1}, {2})
        small = engine.joint_probability_vector(
            reduction.model, t, r, [reduction.goal_state])
        lifted = reduction.lift(small, diamond.num_states)
        assert np.allclose(lifted[[0, 1]], full[[0, 1]], atol=1e-9)

    def test_lift_roundtrip(self, diamond):
        reduction = amalgamated_until_reduction(diamond, {0, 1}, {2})
        vector = np.arange(reduction.model.num_states, dtype=float)
        lifted = reduction.lift(vector, diamond.num_states)
        for original, reduced in reduction.state_map.items():
            assert lifted[original] == vector[reduced]

    def test_empty_psi(self, diamond):
        reduction = amalgamated_until_reduction(diamond, {0, 1}, set())
        assert reduction.goal_state is None

    def test_initial_distribution_mapped(self, diamond):
        reduction = amalgamated_until_reduction(diamond, {0, 1}, {2})
        alpha = reduction.model.initial_distribution
        assert alpha[reduction.state_map[0]] == 1.0


class TestDuality:
    def test_rates_divided_by_reward(self, diamond):
        dual = dual_model(diamond)
        assert dual.rate(0, 1) == pytest.approx(1.0 / 1.0)
        assert dual.rate(1, 2) == pytest.approx(5.0 / 2.0)
        assert dual.rate(3, 0) == pytest.approx(7.0 / 4.0)

    def test_rewards_inverted(self, diamond):
        dual = dual_model(diamond)
        assert dual.reward(1) == pytest.approx(0.5)
        assert dual.reward(3) == pytest.approx(0.25)

    def test_involution(self, diamond):
        double = dual_model(dual_model(diamond))
        assert np.allclose(double.rate_matrix.toarray(),
                           diamond.rate_matrix.toarray())
        assert np.allclose(double.rewards, diamond.rewards)

    def test_zero_reward_transient_state_rejected(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=0.0)
        builder.add_state("b", reward=1.0)
        builder.add_transition("a", "b", 1.0)
        with pytest.raises(RewardError, match="positive rewards"):
            dual_model(builder.build())

    def test_zero_reward_absorbing_state_allowed(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=2.0)
        builder.add_state("sink", reward=0.0)
        builder.add_transition("a", "sink", 1.0)
        dual = dual_model(builder.build())
        assert dual.rate(0, 1) == pytest.approx(0.5)
        assert dual.reward(1) == 0.0

    def test_duality_swaps_time_and_reward(self, diamond):
        """P(phi U^{<=t}_{<=r} psi) on M == P(phi U^{<=r}_{<=t} psi)
        on the dual -- the theorem the P2 procedure rests on."""
        from repro.algorithms import SericolaEngine
        engine = SericolaEngine(epsilon=1e-11)
        reduced = until_reduction(diamond, {0, 1}, {2})
        dual = dual_model(reduced)
        t, r = 1.3, 2.1
        original = engine.joint_probability_vector(reduced, t, r, [2])
        swapped = engine.joint_probability_vector(dual, r, t, [2])
        assert np.allclose(original[[0, 1]], swapped[[0, 1]], atol=1e-9)
