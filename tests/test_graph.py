"""Unit tests for the qualitative graph analyses."""

import numpy as np
import pytest

from repro.ctmc import CTMC, graph


def chain_of(n):
    """A simple forward chain 0 -> 1 -> ... -> n-1."""
    rates = np.zeros((n, n))
    for i in range(n - 1):
        rates[i, i + 1] = 1.0
    return CTMC(rates)


def two_bsccs():
    """0 branches to {1,2} cycle and to absorbing 3."""
    rates = np.zeros((4, 4))
    rates[0, 1] = 1.0
    rates[0, 3] = 1.0
    rates[1, 2] = 1.0
    rates[2, 1] = 1.0
    return CTMC(rates)


class TestReachability:
    def test_forward_chain(self):
        chain = chain_of(4)
        assert graph.reachable(chain, [1]) == {1, 2, 3}
        assert graph.reachable(chain, [3]) == {3}

    def test_multiple_sources(self):
        chain = chain_of(4)
        assert graph.reachable(chain, [0, 3]) == {0, 1, 2, 3}

    def test_backward(self):
        chain = chain_of(4)
        assert graph.backward_reachable(chain, [2]) == {0, 1, 2}

    def test_backward_restricted(self):
        chain = chain_of(4)
        # Only state 1 may be an intermediate: 0 cannot pass.
        assert graph.backward_reachable(chain, [2], through={1}) == {1, 2}

    def test_accepts_raw_matrices(self):
        adjacency = np.array([[0.0, 1.0], [0.0, 0.0]])
        assert graph.reachable(adjacency, [0]) == {0, 1}


class TestSCC:
    def test_chain_has_singleton_sccs(self):
        components = graph.strongly_connected_components(chain_of(3))
        assert sorted(map(sorted, components)) == [[0], [1], [2]]

    def test_cycle_is_one_scc(self):
        rates = np.zeros((3, 3))
        rates[0, 1] = rates[1, 2] = rates[2, 0] = 1.0
        components = graph.strongly_connected_components(CTMC(rates))
        assert components == [{0, 1, 2}]

    def test_reverse_topological_order(self):
        components = graph.strongly_connected_components(two_bsccs())
        positions = {frozenset(c): i for i, c in enumerate(components)}
        # The initial state's SCC must come after everything it reaches.
        assert positions[frozenset({0})] > positions[frozenset({3})]
        assert positions[frozenset({0})] > positions[frozenset({1, 2})]

    def test_bottom_sccs(self):
        bottoms = graph.bottom_sccs(two_bsccs())
        assert sorted(map(sorted, bottoms)) == [[1, 2], [3]]

    def test_irreducible_chain_single_bscc(self):
        rates = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert graph.bottom_sccs(CTMC(rates)) == [{0, 1}]

    def test_large_chain_no_recursion_limit(self):
        # The iterative Tarjan must handle paths much deeper than
        # Python's recursion limit.
        chain = chain_of(5000)
        components = graph.strongly_connected_components(chain)
        assert len(components) == 5000


class TestProb0Prob1:
    def test_prob0_unreachable_target(self):
        chain = chain_of(3)
        # From state 2 nothing reaches state 0.
        assert graph.prob0_states(chain, {0, 1, 2}, {0}) == {1, 2}

    def test_prob0_blocked_by_phi(self):
        chain = chain_of(3)
        # phi = {0}: the only route 0 -> 1 -> 2 passes through the
        # non-phi state 1, so both 0 and 1 have probability zero.
        assert graph.prob0_states(chain, {0}, {2}) == {0, 1}
        # Widening phi to {0, 1} unblocks the route completely.
        assert graph.prob0_states(chain, {0, 1}, {2}) == set()

    def test_prob1_absorbing_target(self):
        chain = chain_of(3)
        # Everything flows into 2, and phi covers everything.
        assert graph.prob1_states(chain, {0, 1, 2}, {2}) == {0, 1, 2}

    def test_prob1_with_branching(self):
        chain = two_bsccs()
        # From 0 there is a 50/50 race between the cycle and state 3.
        prob1 = graph.prob1_states(chain, {0, 1, 2, 3}, {3})
        assert 0 not in prob1
        assert 3 in prob1

    def test_psi_states_always_prob1_candidates(self):
        chain = chain_of(2)
        assert 1 in graph.prob1_states(chain, set(), {1})
