"""Batched all-initial-states propagation and the engine caches.

Covers the performance layer added on top of the three engines:

* the batched :meth:`JointEngine.joint_probability_vector` agrees with
  the per-state scalar path on the ad hoc case study and on a random
  20-state MRM;
* repeated identical queries are served from the shared joint-vector
  LRU (hit counters move, results are identical and isolated copies),
  including through the :class:`ModelChecker`, which rebuilds the
  reduced model object on every check;
* model fingerprints depend on content (rates, rewards, impulses) and
  nothing else;
* Fox--Glynn weights are memoised per ``(rate, epsilon)``;
* a deterministic regression pinning the exact closed-form values of
  the 2-state impulse model on which the Erlang engine's randomised
  phase advance used to be off by ~0.05 however many phases were used.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.algorithms import (DiscretizationEngine, ErlangEngine,
                              SericolaEngine, clear_caches, joint_cache)
from repro.ctmc.mrm import MarkovRewardModel
from repro.mc.checker import ModelChecker
from repro.models.adhoc import Q3_REWARD_BOUND, Q3_TIME_BOUND
from repro.models.workloads import random_mrm
from repro.numerics.poisson import (clear_poisson_cache,
                                    poisson_cache_info, poisson_weights)


def engines():
    return [SericolaEngine(epsilon=1e-12),
            ErlangEngine(phases=64),
            DiscretizationEngine(step=1.0 / 32)]


# ----------------------------------------------------------------------
# batched vector == per-state scalar loop
# ----------------------------------------------------------------------

class TestBatchedEquivalence:
    @pytest.mark.parametrize("engine", engines(), ids=lambda e: e.name)
    def test_adhoc_reduced(self, adhoc_reduced, engine):
        model = adhoc_reduced.model
        goal = adhoc_reduced.goal_state
        t, r = Q3_TIME_BOUND, Q3_REWARD_BOUND
        clear_caches()
        vector = engine.joint_probability_vector(model, t, r, {goal})
        indicator = np.zeros(model.num_states)
        indicator[goal] = 1.0
        loop = np.array([
            engine.joint_probability_from(model, t, r, indicator, s)
            for s in range(model.num_states)])
        np.testing.assert_allclose(vector, loop, atol=1e-10)

    @pytest.mark.parametrize("engine", engines(), ids=lambda e: e.name)
    def test_random_twenty_state(self, engine):
        model = random_mrm(20, seed=20020623,
                           reward_levels=(0.0, 1.0, 2.0))
        t, r = 0.75, 1.0
        target = set(model.states_with("green")) or {0}
        clear_caches()
        vector = engine.joint_probability_vector(model, t, r, target)
        indicator = np.zeros(model.num_states)
        for s in target:
            indicator[s] = 1.0
        loop = np.array([
            engine.joint_probability_from(model, t, r, indicator, s)
            for s in range(model.num_states)])
        np.testing.assert_allclose(vector, loop, atol=1e-10)

    def test_discretization_batch_density_matches_scalar(self,
                                                         adhoc_reduced):
        engine = DiscretizationEngine(step=1.0 / 32)
        model = adhoc_reduced.model
        t, r = 2.0, 40.0
        batch = engine.final_density_batch(model, t, r)
        for s in range(model.num_states):
            np.testing.assert_allclose(
                batch[s], engine.final_density(model, t, r, s),
                atol=1e-12)


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------

class TestJointVectorCache:
    def test_second_identical_call_hits(self, flip_flop):
        clear_caches()
        engine = SericolaEngine()
        engine.stats.reset()
        first = engine.joint_probability_vector(flip_flop, 1.0, 1.0, {1})
        assert engine.stats.cache_misses == 1
        assert engine.stats.cache_hits == 0
        steps = engine.stats.propagation_steps
        second = engine.joint_probability_vector(flip_flop, 1.0, 1.0, {1})
        assert engine.stats.cache_hits == 1
        # no extra propagation work was done for the cached call
        assert engine.stats.propagation_steps == steps
        np.testing.assert_array_equal(first, second)

    def test_returned_vector_is_a_copy(self, flip_flop):
        clear_caches()
        engine = DiscretizationEngine(step=0.25)
        first = engine.joint_probability_vector(flip_flop, 1.0, 1.0, {1})
        first[:] = -1.0
        second = engine.joint_probability_vector(flip_flop, 1.0, 1.0, {1})
        assert np.all(second >= 0.0)

    def test_different_parameters_miss(self, flip_flop):
        clear_caches()
        engine = ErlangEngine(phases=16)
        engine.stats.reset()
        engine.joint_probability_vector(flip_flop, 1.0, 1.0, {1})
        engine.joint_probability_vector(flip_flop, 1.0, 2.0, {1})
        engine.joint_probability_vector(flip_flop, 2.0, 1.0, {1})
        engine.joint_probability_vector(flip_flop, 1.0, 1.0, {0})
        assert engine.stats.cache_misses == 4
        assert engine.stats.cache_hits == 0
        # a differently-parameterised engine must not share entries
        other = ErlangEngine(phases=32)
        other.joint_probability_vector(flip_flop, 1.0, 1.0, {1})
        assert other.stats.cache_misses == 1

    def test_content_identical_model_hits(self, flip_flop):
        """A rebuilt model with identical content is a cache hit."""
        clear_caches()
        engine = SericolaEngine()
        engine.stats.reset()
        engine.joint_probability_vector(flip_flop, 1.0, 1.0, {1})
        clone = MarkovRewardModel(flip_flop.rate_matrix.copy(),
                                  rewards=flip_flop.rewards.copy())
        engine.joint_probability_vector(clone, 1.0, 1.0, {1})
        assert engine.stats.cache_hits == 1

    def test_checker_repeated_until_checks_hit(self, flip_flop):
        clear_caches()
        checker = ModelChecker(flip_flop)
        formula = "P>=0.1 [ up U[0,2][0,1] down ]"
        checker.check(formula)
        stats = checker.engine_stats
        assert stats["cache_misses"] >= 1
        assert stats["cache_hits"] == 0
        checker.clear_cache()          # drop the Sat-set memo ...
        checker.check(formula)         # ... so the engine is re-asked
        stats = checker.engine_stats
        assert stats["cache_hits"] >= 1
        # a fresh checker over an equal model also hits: the key is the
        # reduced model's content fingerprint, not object identity
        fresh = ModelChecker(flip_flop)
        fresh.check(formula)
        assert fresh.engine_stats["cache_hits"] >= 1
        assert joint_cache.info()["hits"] >= 2


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------

class TestFingerprint:
    def test_content_equality(self):
        a = MarkovRewardModel([[0.0, 1.0], [2.0, 0.0]],
                              rewards=[0.0, 1.0])
        b = MarkovRewardModel([[0.0, 1.0], [2.0, 0.0]],
                              rewards=[0.0, 1.0])
        assert a.fingerprint == b.fingerprint

    def test_labels_do_not_matter(self):
        a = MarkovRewardModel([[0.0, 1.0], [2.0, 0.0]],
                              rewards=[0.0, 1.0],
                              labels={"up": [0]})
        b = MarkovRewardModel([[0.0, 1.0], [2.0, 0.0]],
                              rewards=[0.0, 1.0],
                              labels={"down": [1]})
        assert a.fingerprint == b.fingerprint

    def test_content_changes_matter(self):
        base = MarkovRewardModel([[0.0, 1.0], [2.0, 0.0]],
                                 rewards=[0.0, 1.0])
        rate = MarkovRewardModel([[0.0, 1.5], [2.0, 0.0]],
                                 rewards=[0.0, 1.0])
        reward = MarkovRewardModel([[0.0, 1.0], [2.0, 0.0]],
                                   rewards=[0.0, 2.0])
        impulses = base.rate_matrix.copy()
        impulses.data = np.full_like(impulses.data, 1.0)
        spiked = base.with_impulse_rewards(impulses)
        prints = {base.fingerprint, rate.fingerprint,
                  reward.fingerprint, spiked.fingerprint}
        assert len(prints) == 4


# ----------------------------------------------------------------------
# Fox--Glynn weight cache
# ----------------------------------------------------------------------

class TestPoissonCache:
    def test_repeat_is_a_hit(self):
        clear_poisson_cache()
        first = poisson_weights(12.5, 1e-12)
        info = poisson_cache_info()
        assert info["misses"] == 1 and info["hits"] == 0
        second = poisson_weights(12.5, 1e-12)
        info = poisson_cache_info()
        assert info["hits"] == 1
        np.testing.assert_array_equal(first.weights, second.weights)
        assert second.left == first.left
        assert second.right == first.right

    def test_cached_weights_are_frozen(self):
        clear_poisson_cache()
        poisson_weights(8.0, 1e-10)
        again = poisson_weights(8.0, 1e-10)
        assert not again.weights.flags.writeable


# ----------------------------------------------------------------------
# deterministic impulse regression (was: failing hypothesis test)
# ----------------------------------------------------------------------

class TestImpulseRegression:
    """2-state model, rho = [0, 1], rates 0->1 at a=1 and 1->0 at b=2,
    impulse iota = 3 on every transition, t = 1, r = 6.

    ``Y_1 = 3 N_1 + T_1`` with ``N_1`` the number of transitions and
    ``T_1`` the occupation time of state 1, so ``Y_1 <= 6`` iff
    ``N_1 <= 1`` (two jumps already cost 6 plus an a.s. positive
    sojourn in state 1).  With target {0}:

      from 0:  stay put,   Pr = e^{-a}
      from 1:  jump once,  Pr = b e^{-a} (1 - e^{-(b-a)}) / (b - a)

    The Erlang engine's old Poisson-randomised impulse advance was off
    by ~0.05 here for *every* phase count (an O(k^{-1/2}) bias at the
    distribution's discontinuity); the deterministic mean-preserving
    advance is exact because iota * k / r is an integer.
    """

    A, B, IOTA, T, R = 1.0, 2.0, 3.0, 1.0, 6.0

    @pytest.fixture()
    def spiked(self):
        model = MarkovRewardModel([[0.0, self.A], [self.B, 0.0]],
                                  rewards=[0.0, 1.0])
        impulses = model.rate_matrix.copy()
        impulses.data = np.full_like(impulses.data, self.IOTA)
        return model.with_impulse_rewards(impulses)

    @property
    def exact(self):
        from_zero = math.exp(-self.A)
        from_one = (self.B * math.exp(-self.A)
                    * (1.0 - math.exp(-(self.B - self.A)))
                    / (self.B - self.A))
        return np.array([from_zero, from_one])

    def test_erlang_matches_closed_form(self, spiked):
        clear_caches()
        for phases in (128, 512):
            engine = ErlangEngine(phases=phases)
            vector = engine.joint_probability_vector(
                spiked, self.T, self.R, {0})
            np.testing.assert_allclose(vector, self.exact, atol=1e-9)

    def test_discretization_matches_closed_form(self, spiked):
        clear_caches()
        engine = DiscretizationEngine(step=1.0 / 256)
        vector = engine.joint_probability_vector(
            spiked, self.T, self.R, {0})
        np.testing.assert_allclose(vector, self.exact, atol=5e-3)

    def test_engines_agree_tightly(self, spiked):
        clear_caches()
        erlang = ErlangEngine(phases=512).joint_probability_vector(
            spiked, self.T, self.R, {0})
        disc = DiscretizationEngine(step=1.0 / 128)
        vector = disc.joint_probability_vector(
            spiked, self.T, self.R, {0})
        np.testing.assert_allclose(erlang, vector, atol=0.01)
