"""Unit tests for the Tijms--Veldman discretisation engine."""

import numpy as np
import pytest

from repro.algorithms.discretization import (DiscretizationEngine,
                                             integer_reward_scale)
from repro.ctmc import ModelBuilder
from repro.errors import NumericalError, RewardError

MU = 0.7


class TestIntegerRewardScale:
    def test_integers_need_no_scaling(self):
        assert integer_reward_scale([0.0, 1.0, 5.0]) == 1

    def test_halves(self):
        assert integer_reward_scale([0.5, 1.0]) == 2

    def test_mixed_fractions(self):
        assert integer_reward_scale([0.5, 1.0 / 3.0]) == 6

    def test_irrational_rejected(self):
        with pytest.raises(RewardError):
            integer_reward_scale([np.pi], max_denominator=100)


class TestParameters:
    def test_invalid_step(self):
        with pytest.raises(NumericalError):
            DiscretizationEngine(step=0.0)

    def test_invalid_underflow_mode(self):
        with pytest.raises(NumericalError):
            DiscretizationEngine(underflow="wrap")

    def test_step_must_divide_time(self, two_state_absorbing):
        engine = DiscretizationEngine(step=0.4)
        indicator = np.array([0.0, 1.0])
        with pytest.raises(NumericalError, match="multiple"):
            engine.joint_probability_from(two_state_absorbing, 1.0, 1.0,
                                          indicator, 0)

    def test_step_too_coarse_rejected(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=1.0)
        builder.add_state("b")
        builder.add_transition("a", "b", 10.0)  # E = 10 -> need d <= 0.1
        model = builder.build()
        engine = DiscretizationEngine(step=0.5)
        with pytest.raises(NumericalError, match="too coarse"):
            engine.joint_probability_from(model, 1.0, 1.0,
                                          np.array([0.0, 1.0]), 0)

    def test_fractional_rewards_rejected(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=0.5)
        builder.add_state("b")
        builder.add_transition("a", "b", 1.0)
        model = builder.build()
        engine = DiscretizationEngine(step=0.1)
        with pytest.raises(RewardError, match="natural-number"):
            engine.joint_probability_from(model, 1.0, 1.0,
                                          np.array([0.0, 1.0]), 0)

    def test_scaling_recipe_works(self):
        # The documented workaround: scale rewards and the bound.
        builder = ModelBuilder()
        builder.add_state("a", reward=0.5)
        builder.add_state("b")
        builder.add_transition("a", "b", MU)
        model = builder.build()
        scale = integer_reward_scale(model.rewards)
        scaled = model.scaled_rewards(scale)
        engine = DiscretizationEngine(step=1.0 / 128)
        t, r = 2.0, 0.6
        value = engine.joint_probability_from(
            scaled, t, r * scale, np.array([0.0, 1.0]), 0)
        exact = 1.0 - np.exp(-MU * (r / 0.5))  # T <= r / rho
        assert value == pytest.approx(exact, abs=5e-3)


class TestConvergence:
    def test_first_order_convergence(self, two_state_absorbing):
        t, r = 3.0, 1.2
        exact = 1.0 - np.exp(-MU * r)
        indicator = np.array([0.0, 1.0])
        errors = []
        for d in (0.1, 0.05, 0.025):
            engine = DiscretizationEngine(step=d)
            value = engine.joint_probability_from(
                two_state_absorbing, t, r, indicator, 0)
            errors.append(abs(value - exact))
        # Error shrinks roughly linearly in d.
        assert errors[0] > errors[1] > errors[2]
        assert errors[0] / errors[2] > 2.5

    def test_underflow_variants_agree_without_zero_mass(
            self, two_state_absorbing):
        # No probability mass at accumulated reward zero: the paper's
        # clamp rule and the drop rule coincide.
        t, r = 2.0, 1.0
        indicator = np.array([0.0, 1.0])
        drop = DiscretizationEngine(step=0.025, underflow="drop")
        clamp = DiscretizationEngine(step=0.025, underflow="clamp")
        assert drop.joint_probability_from(
            two_state_absorbing, t, r, indicator, 0) == pytest.approx(
            clamp.joint_probability_from(
                two_state_absorbing, t, r, indicator, 0), abs=1e-12)

    def test_vector_api(self, two_state_absorbing):
        engine = DiscretizationEngine(step=0.05)
        vector = engine.joint_probability_vector(two_state_absorbing,
                                                 2.0, 1.0, [1])
        assert vector.shape == (2,)
        assert vector[1] == pytest.approx(1.0, abs=1e-9)

    def test_joint_probability_weights_initial_distribution(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=1.0)
        builder.add_state("b", reward=0.0)
        builder.add_transition("a", "b", MU)
        model = builder.build(initial_distribution=[0.5, 0.5])
        engine = DiscretizationEngine(step=0.05)
        combined = engine.joint_probability(model, 2.0, 1.0, [1])
        from_a = engine.joint_probability_from(model, 2.0, 1.0,
                                               np.array([0.0, 1.0]), 0)
        assert combined == pytest.approx(0.5 * from_a + 0.5, abs=1e-9)


class TestDensity:
    def test_density_is_a_subdensity(self, two_state_absorbing):
        engine = DiscretizationEngine(step=0.05)
        density = engine.final_density(two_state_absorbing, 2.0, 5.0, 0)
        mass = density.sum() * 0.05
        assert 0.0 < mass <= 1.0 + 1e-9

    def test_first_interval_exceeding_bound(self):
        # Initial reward displacement beyond R: nothing to track.
        builder = ModelBuilder()
        builder.add_state("a", reward=100.0)
        builder.add_state("b")
        builder.add_transition("a", "b", 1.0)
        model = builder.build()
        engine = DiscretizationEngine(step=0.1)
        density = engine.final_density(model, 1.0, 0.5, 0)
        assert np.allclose(density, 0.0)

    def test_time_zero(self, two_state_absorbing):
        engine = DiscretizationEngine(step=0.1)
        indicator = np.array([1.0, 0.0])
        assert engine.joint_probability_from(
            two_state_absorbing, 0.0, 1.0, indicator, 0) == 1.0

    def test_zero_reward_bound_exact(self, two_state_absorbing):
        engine = DiscretizationEngine(step=0.1)
        indicator = np.array([0.0, 1.0])
        value = engine.joint_probability_from(two_state_absorbing,
                                              2.0, 0.0, indicator, 0)
        assert value == pytest.approx(0.0, abs=1e-12)
