"""Unit tests for the four until procedures (P0--P3)."""

import math

import numpy as np
import pytest

from repro.algorithms import SericolaEngine
from repro.ctmc import ModelBuilder
from repro.errors import UnsupportedFormulaError
from repro.logic.intervals import Interval
from repro.mc import until

MU = 0.7


@pytest.fixture
def race():
    """start races to goal (rate 2) or trap (rate 1); reward 1 in start."""
    builder = ModelBuilder()
    builder.add_state("start", labels=("phi",), reward=1.0)
    builder.add_state("goal", labels=("psi",), reward=0.0)
    builder.add_state("trap", reward=0.0)
    builder.add_transition("start", "goal", 2.0)
    builder.add_transition("start", "trap", 1.0)
    return builder.build(initial_state="start")


class TestUnboundedUntil:
    def test_race_probability(self, race):
        probs = until.unbounded_until(race, {0}, {1})
        assert probs[0] == pytest.approx(2.0 / 3.0)
        assert probs[1] == 1.0
        assert probs[2] == 0.0

    def test_certain_reachability(self, two_state_absorbing):
        probs = until.unbounded_until(two_state_absorbing, {0}, {1})
        assert probs[0] == pytest.approx(1.0)


class TestTimeBoundedUntil:
    def test_exponential_race(self, race):
        t = 0.9
        probs = until.time_bounded_until(race, {0}, {1},
                                         Interval.upto(t))
        expected = (2.0 / 3.0) * (1.0 - np.exp(-3.0 * t))
        assert probs[0] == pytest.approx(expected, abs=1e-10)

    def test_infinite_bound_falls_back_to_unbounded(self, race):
        probs = until.time_bounded_until(race, {0}, {1},
                                         Interval.unbounded())
        assert probs[0] == pytest.approx(2.0 / 3.0)

    def test_interval_with_positive_lower_bound(self, two_state_absorbing):
        # P(green U^{[t1,t2]} red) on a -> b: the jump must happen in
        # [t1, t2], i.e. e^{-mu t1} - e^{-mu t2}... but reaching red
        # earlier and staying also counts at t in [t1,t2] -- red stays
        # red, so actually jump <= t2 and (jump >= t1 OR still red at
        # t1, which holds whenever jump < t1 since b is absorbing and
        # red at t1 requires nothing about phi at t1... but phi must
        # hold *before* the witness time).  With phi = green only, a
        # path jumping before t1 is in red (not green) on [jump, t1),
        # which violates the until; hence exactly jump in [t1, t2].
        t1, t2 = 0.5, 2.0
        probs = until.time_bounded_until(
            two_state_absorbing, {0}, {1}, Interval(t1, t2))
        expected = np.exp(-MU * t1) - np.exp(-MU * t2)
        assert probs[0] == pytest.approx(expected, abs=1e-9)

    def test_interval_lower_bound_with_phi_and_psi(self):
        # phi holds everywhere: jumping early then waiting satisfies
        # the until at time t1, so the probability is P(jump <= t2).
        builder = ModelBuilder()
        builder.add_state("a", labels=("phi",))
        builder.add_state("b", labels=("phi", "psi"))
        builder.add_transition("a", "b", MU)
        model = builder.build()
        t1, t2 = 0.5, 2.0
        probs = until.time_bounded_until(model, {0, 1}, {1},
                                         Interval(t1, t2))
        assert probs[0] == pytest.approx(1.0 - np.exp(-MU * t2),
                                         abs=1e-9)

    def test_unbounded_lower_infinite_upper_rejected(self, race):
        with pytest.raises(UnsupportedFormulaError):
            until.time_bounded_until(race, {0}, {1},
                                     Interval(1.0, math.inf))


class TestRewardBoundedUntil:
    def test_two_state_closed_form(self, two_state_absorbing):
        r = 1.2
        probs = until.reward_bounded_until(two_state_absorbing, {0}, {1},
                                           Interval.upto(r))
        assert probs[0] == pytest.approx(1.0 - np.exp(-MU * r), abs=1e-9)

    def test_infinite_bound_falls_back_to_unbounded(self, race):
        probs = until.reward_bounded_until(race, {0}, {1},
                                           Interval.unbounded())
        assert probs[0] == pytest.approx(2.0 / 3.0)

    def test_nonzero_lower_bound_rejected(self, race):
        with pytest.raises(UnsupportedFormulaError, match="start at 0"):
            until.reward_bounded_until(race, {0}, {1}, Interval(1.0, 2.0))

    def test_agrees_with_p3_at_large_t(self, race):
        r = 0.8
        p2 = until.reward_bounded_until(race, {0}, {1},
                                        Interval.upto(r))
        p3 = until.time_reward_bounded_until(
            race, {0}, {1}, Interval.upto(200.0), Interval.upto(r),
            SericolaEngine(epsilon=1e-11))
        assert np.allclose(p2, p3, atol=1e-6)


class TestTimeRewardBoundedUntil:
    def test_two_state_closed_form(self, two_state_absorbing):
        t, r = 3.0, 1.2
        probs = until.time_reward_bounded_until(
            two_state_absorbing, {0}, {1}, Interval.upto(t),
            Interval.upto(r), SericolaEngine(epsilon=1e-11))
        # r < t: the reward bound is the binding one.
        assert probs[0] == pytest.approx(1.0 - np.exp(-MU * r), abs=1e-9)

    def test_time_binds_when_smaller(self, two_state_absorbing):
        t, r = 1.0, 5.0
        probs = until.time_reward_bounded_until(
            two_state_absorbing, {0}, {1}, Interval.upto(t),
            Interval.upto(r), SericolaEngine(epsilon=1e-11))
        assert probs[0] == pytest.approx(1.0 - np.exp(-MU * t), abs=1e-9)

    def test_infinite_reward_reduces_to_p1(self, race):
        t = 0.9
        with_inf = until.time_reward_bounded_until(
            race, {0}, {1}, Interval.upto(t), Interval.unbounded(),
            SericolaEngine(epsilon=1e-11))
        p1 = until.time_bounded_until(race, {0}, {1}, Interval.upto(t))
        assert np.allclose(with_inf, p1, atol=1e-10)

    def test_infinite_time_reduces_to_p2(self, two_state_absorbing):
        r = 1.2
        with_inf = until.time_reward_bounded_until(
            two_state_absorbing, {0}, {1}, Interval.unbounded(),
            Interval.upto(r), SericolaEngine(epsilon=1e-11))
        p2 = until.reward_bounded_until(two_state_absorbing, {0}, {1},
                                        Interval.upto(r))
        assert np.allclose(with_inf, p2, atol=1e-10)

    def test_nonzero_lower_bounds_rejected(self, race):
        engine = SericolaEngine()
        with pytest.raises(UnsupportedFormulaError):
            until.time_reward_bounded_until(
                race, {0}, {1}, Interval(1.0, 2.0), Interval.upto(1.0),
                engine)
        with pytest.raises(UnsupportedFormulaError):
            until.time_reward_bounded_until(
                race, {0}, {1}, Interval.upto(1.0), Interval(1.0, 2.0),
                engine)

    def test_psi_state_is_immediately_satisfied(self, race):
        probs = until.time_reward_bounded_until(
            race, {0}, {1}, Interval.upto(0.5), Interval.upto(0.1),
            SericolaEngine(epsilon=1e-11))
        assert probs[1] == pytest.approx(1.0)
        assert probs[2] == pytest.approx(0.0)
