"""Chaos suite: injected worker faults must never change the numbers.

Every scenario runs a Table-4-style ``(t, r)`` sweep grid through the
process executor while the fault-injection harness
(:mod:`repro.exec.faultinject`) crashes, hangs, corrupts or OOM-kills
workers on schedule, and asserts the surviving grid is **bit-identical**
to a fault-free threaded run -- fault tolerance that changed the
answer would be worse than a crash.  The subprocess scenarios
additionally prove the no-orphans contract (``kill -9`` of the parent
leaves no worker behind) and exact checkpointed resume across hard
parent death, plus the CLI's SIGINT behaviour (flush + exit 130).
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.algorithms.base import get_engine
from repro.algorithms.cache import clear_caches
from repro.exec import (BREAKERS, FaultPlan, ProcessShardExecutor,
                        breaker_key)
from tests.exec_sweep_driver import (REWARDS, TARGET, TIMES,
                                     build_model, grid_checksum)

DRIVER = os.path.join(os.path.dirname(__file__),
                      "exec_sweep_driver.py")
TOTAL_CELLS = len(TIMES) * len(REWARDS)


@pytest.fixture(autouse=True)
def _clean_slate():
    clear_caches()
    BREAKERS.reset()
    yield
    clear_caches()
    BREAKERS.reset()


@pytest.fixture(scope="module")
def reference():
    """Fault-free threaded grid of the shared chaos workload."""
    clear_caches()
    engine = get_engine("sericola")
    partial = engine.joint_probability_sweep_partial(
        build_model(), TIMES, REWARDS, TARGET)
    assert partial.complete
    clear_caches()
    return partial.grid.copy()


def _run_chaos(faults: str, checkpoint=None):
    engine = get_engine("sericola")
    executor = ProcessShardExecutor(
        max_workers=2, heartbeat_interval=0.05,
        heartbeat_timeout=0.5, faults=faults)
    partial = engine.joint_probability_sweep_partial(
        build_model(), TIMES, REWARDS, TARGET, executor=executor,
        checkpoint=checkpoint)
    return partial, executor


def _assert_no_orphans():
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if not mp.active_children():
            return
        time.sleep(0.05)
    raise AssertionError(
        f"worker processes outlived the sweep: {mp.active_children()}")


# ----------------------------------------------------------------------
# in-process chaos: rate-selected and explicit fault schedules
# ----------------------------------------------------------------------

def test_rate_chaos_grid_is_bit_identical(reference):
    """>= 20% of cells fault on first attempt; the grid still matches
    the fault-free run bit for bit and no worker lingers."""
    spec = "rate=0.3;seed=4"
    schedule = FaultPlan.parse(spec).faulted_cells(TOTAL_CELLS)
    assert len(schedule) >= math.ceil(0.2 * TOTAL_CELLS)

    partial, executor = _run_chaos(spec)
    assert partial.complete
    assert not partial.failures
    assert partial.grid.tobytes() == reference.tobytes()
    # Every crash/oom fault kills a worker; every fault costs a retry.
    fatal = sum(1 for kind in schedule.values()
                if kind in ("crash", "oom", "hang"))
    assert executor.restarts >= fatal
    assert executor.retries >= len(schedule)
    _assert_no_orphans()


def test_every_fault_kind_recovers(reference):
    """One of each: crash, hang, corrupt result, OOM kill."""
    partial, executor = _run_chaos("crash@0;hang@2;corrupt@4;oom@5")
    assert partial.complete
    assert partial.grid.tobytes() == reference.tobytes()
    assert executor.restarts >= 3  # crash, hang, oom killed workers
    assert executor.retries >= 4
    _assert_no_orphans()


def test_double_fault_exhausts_then_retries_succeed(reference):
    """Cells faulting on the first *two* attempts still complete under
    the default three-retry policy."""
    partial, executor = _run_chaos("crash@1,7;attempts=2")
    assert partial.complete
    assert partial.grid.tobytes() == reference.tobytes()
    assert executor.retries >= 4  # two cells x two faulted attempts
    _assert_no_orphans()


def _run_give_up(faults: str, recorder_dir=None):
    """A sweep whose cell-0 faults outlast the retry budget."""
    from repro.exec import RetryPolicy
    from repro.exec.retry import BreakerRegistry
    engine = get_engine("sericola")
    executor = ProcessShardExecutor(
        max_workers=2, heartbeat_interval=0.05,
        heartbeat_timeout=0.5, faults=faults,
        retry=RetryPolicy(max_retries=2, base_delay=0.01),
        breakers=BreakerRegistry(failure_threshold=100),
        recorder_dir=recorder_dir)
    partial = engine.joint_probability_sweep_partial(
        build_model(), TIMES, REWARDS, TARGET, executor=executor)
    return partial


def test_give_up_carries_flight_recorder_tail(reference):
    """A cell that crashes its worker on every attempt surfaces as a
    ``WorkerError`` carrying the victim's final recorded activity:
    the ``task_start`` for the doomed cell and the injected fault."""
    partial = _run_give_up("crash@0;attempts=9")
    assert not partial.complete
    failure, = partial.failures
    assert failure.flight_tail, "WorkerError lost the flight tail"
    kinds = [event["kind"] for event in failure.flight_tail]
    assert "task_start" in kinds
    starts = [event for event in failure.flight_tail
              if event["kind"] == "task_start"]
    assert starts[-1]["cell"] == [0, 0]
    # Exactly the doomed cell is missing (NaN); every surviving cell
    # still matches the fault-free reference bit for bit.
    assert partial.unevaluated == ((0, 0),)
    mask = ~np.isnan(partial.grid)
    assert np.array_equal(partial.grid[mask], reference[mask])
    _assert_no_orphans()


def test_hang_give_up_carries_flight_tail(reference, tmp_path):
    """Hang faults (heartbeat-timeout kills) keep the tail too, and an
    explicit ``recorder_dir`` preserves the sidecars after the run."""
    recorder_dir = str(tmp_path / "flight")
    partial = _run_give_up("hang@0;attempts=9",
                           recorder_dir=recorder_dir)
    assert not partial.complete
    failure, = partial.failures
    assert failure.flight_tail
    assert any(event["kind"] == "task_start"
               and event["cell"] == [0, 0]
               for event in failure.flight_tail)
    sidecars = [name for name in os.listdir(recorder_dir)
                if name.startswith("worker-")
                and name.endswith(".jsonl")]
    assert sidecars, "explicit recorder_dir lost its sidecars"
    _assert_no_orphans()


def test_chaos_with_checkpoint_resume(reference, tmp_path):
    """A faulted, checkpointed run resumes into a clean run exactly."""
    path = str(tmp_path / "chaos.jsonl")
    first, _ = _run_chaos("rate=0.3;seed=4", checkpoint=path)
    assert first.complete

    clear_caches()
    engine = get_engine("sericola")
    resumed = engine.joint_probability_sweep_partial(
        build_model(), TIMES, REWARDS, TARGET,
        executor=ProcessShardExecutor(max_workers=2), checkpoint=path)
    assert resumed.complete
    assert resumed.grid.tobytes() == reference.tobytes()
    _assert_no_orphans()


def test_breaker_open_skips_certified_engine(flip_flop):
    """An open breaker degrades the certified chain, visibly."""
    from repro.mc.certified import CertifiedChecker
    engine = get_engine("sericola")
    breaker = BREAKERS.breaker(breaker_key(engine))
    for _ in range(breaker.failure_threshold):
        breaker.record_failure()
    result = CertifiedChecker(flip_flop).check(
        "P>0.5 [ up U[0,1][0,2] down ]")
    skips = [f for f in result.failures if f.skipped_breaker]
    assert skips and skips[0].engine == "sericola"
    assert result.engine != "sericola"
    assert result.verdict is not None


# ----------------------------------------------------------------------
# subprocess chaos: hard parent death and SIGINT
# ----------------------------------------------------------------------

def _driver_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(DRIVER), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
        env.get("PYTHONPATH", "")
    return env


def _surviving_driver_pids():
    pids = []
    for pid in os.listdir("/proc"):
        if not pid.isdigit():
            continue
        try:
            with open(f"/proc/{pid}/cmdline", "rb") as handle:
                cmdline = handle.read().decode("utf-8", "replace")
        except OSError:
            continue
        if "exec_sweep_driver" in cmdline:
            pids.append(int(pid))
    return pids


def _wait_for_checkpoint_rows(path: str, rows: int,
                              timeout: float) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                if sum(1 for _ in handle) >= rows + 1:  # + header
                    return
        except OSError:
            pass
        time.sleep(0.05)
    raise AssertionError(
        f"checkpoint {path} never reached {rows} data rows")


def test_kill9_parent_resumes_exactly_with_no_orphans(reference,
                                                      tmp_path):
    """``kill -9`` of the driving process mid-sweep: the orphaned
    workers exit on their own, and a re-run resumes from the
    checkpoint to the exact fault-free grid."""
    path = str(tmp_path / "kill9.jsonl")
    proc = subprocess.Popen(
        [sys.executable, DRIVER, "--checkpoint", path,
         "--faults", "sleep=0.25", "--max-workers", "2"],
        env=_driver_env(), stdout=subprocess.PIPE,
        stderr=subprocess.PIPE)
    try:
        _wait_for_checkpoint_rows(path, rows=2, timeout=30.0)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10.0)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup only
            proc.kill()
            proc.wait()
    assert proc.returncode == -signal.SIGKILL

    # The orphaned workers notice the reparenting and exit by
    # themselves -- nothing is left to send them signals.
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        if not _surviving_driver_pids():
            break
        time.sleep(0.1)
    assert not _surviving_driver_pids()

    done = subprocess.run(
        [sys.executable, DRIVER, "--checkpoint", path,
         "--max-workers", "2"],
        env=_driver_env(), capture_output=True, text=True,
        timeout=120.0)
    assert done.returncode == 0, done.stderr
    facts = dict(line.split("=", 1)
                 for line in done.stdout.strip().splitlines())
    assert int(facts["resumed"]) >= 2
    assert int(facts["computed"]) <= TOTAL_CELLS - 2
    assert facts["checksum"] == grid_checksum(reference)
    assert not _surviving_driver_pids()


def test_cli_sigint_flushes_checkpoint_and_exits_130(tmp_path):
    path = str(tmp_path / "sigint.jsonl")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "check", "--model",
         "adhoc", "--formula", "Q3", "--sweep-times", "6,12,24,36",
         "--sweep-rewards", "150,300,600", "--executor", "process",
         "--max-workers", "2", "--checkpoint", path],
        env=dict(_driver_env(), REPRO_FAULTS="sleep=0.8"),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        _wait_for_checkpoint_rows(path, rows=1, timeout=60.0)
        proc.send_signal(signal.SIGINT)
        _, err = proc.communicate(timeout=60.0)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup only
            proc.kill()
            proc.communicate()
    assert proc.returncode == 130
    assert "interrupted" in err
    assert path in err  # the resume hint names the checkpoint
    with open(path, "r", encoding="utf-8") as handle:
        assert sum(1 for _ in handle) >= 2  # header + flushed cells
