"""Unit tests for the NEXT operator."""

import math

import numpy as np
import pytest

from repro.ctmc import ModelBuilder
from repro.logic.intervals import Interval
from repro.mc.next_op import admissible_jump_window, next_probabilities


@pytest.fixture
def splitter():
    """s (reward 2, exit rate 4) jumps to red (3/4) or blue (1/4)."""
    builder = ModelBuilder()
    builder.add_state("s", reward=2.0)
    builder.add_state("red", labels=("red",))
    builder.add_state("blue", labels=("blue",))
    builder.add_transition("s", "red", 3.0)
    builder.add_transition("s", "blue", 1.0)
    return builder.build(initial_state="s")


class TestJumpWindow:
    def test_no_reward_constraint(self):
        window = admissible_jump_window(2.0, Interval.upto(3.0),
                                        Interval.unbounded())
        assert window == Interval.upto(3.0)

    def test_reward_constraint_tightens_time(self):
        # reward rate 2, reward <= 4 -> jump <= 2.
        window = admissible_jump_window(2.0, Interval.upto(3.0),
                                        Interval.upto(4.0))
        assert window == Interval.upto(2.0)

    def test_reward_lower_bound(self):
        window = admissible_jump_window(2.0, Interval.upto(3.0),
                                        Interval(2.0, 8.0))
        assert window == Interval(1.0, 3.0)

    def test_empty_intersection(self):
        window = admissible_jump_window(1.0, Interval.upto(1.0),
                                        Interval(5.0, 6.0))
        assert window is None

    def test_zero_reward_rate_needs_zero_in_interval(self):
        assert admissible_jump_window(
            0.0, Interval.upto(2.0), Interval(1.0, 2.0)) is None
        assert admissible_jump_window(
            0.0, Interval.upto(2.0), Interval.upto(5.0)) \
            == Interval.upto(2.0)


class TestNextProbabilities:
    def test_unbounded(self, splitter):
        probs = next_probabilities(splitter, {1}, Interval.unbounded(),
                                   Interval.unbounded())
        assert probs[0] == pytest.approx(0.75)

    def test_time_bounded(self, splitter):
        t = 0.5
        probs = next_probabilities(splitter, {1}, Interval.upto(t),
                                   Interval.unbounded())
        assert probs[0] == pytest.approx(0.75 * (1.0 - np.exp(-4.0 * t)))

    def test_reward_bound_converts_to_time(self, splitter):
        # reward rate 2, bound 1.5 -> jump before 0.75.
        probs = next_probabilities(splitter, {1}, Interval.unbounded(),
                                   Interval.upto(1.5))
        assert probs[0] == pytest.approx(
            0.75 * (1.0 - np.exp(-4.0 * 0.75)))

    def test_general_intervals(self, splitter):
        # Jump in [0.25, 1] and reward 2*tau in [1, 4] -> tau in
        # [0.5, 1].
        probs = next_probabilities(splitter, {1}, Interval(0.25, 1.0),
                                   Interval(1.0, 4.0))
        expected = 0.75 * (np.exp(-4.0 * 0.5) - np.exp(-4.0 * 1.0))
        assert probs[0] == pytest.approx(expected, abs=1e-12)

    def test_absorbing_state_has_no_next(self, splitter):
        probs = next_probabilities(splitter, {1}, Interval.unbounded(),
                                   Interval.unbounded())
        assert probs[1] == 0.0
        assert probs[2] == 0.0

    def test_target_not_reachable_in_one_step(self, splitter):
        probs = next_probabilities(splitter, {0}, Interval.unbounded(),
                                   Interval.unbounded())
        assert probs[0] == 0.0

    def test_empty_window_gives_zero(self, splitter):
        probs = next_probabilities(splitter, {1}, Interval.upto(1.0),
                                   Interval(100.0, 200.0))
        assert probs[0] == 0.0

    def test_sum_over_disjoint_targets(self, splitter):
        bounds = (Interval.upto(2.0), Interval.upto(3.0))
        red = next_probabilities(splitter, {1}, *bounds)
        blue = next_probabilities(splitter, {2}, *bounds)
        both = next_probabilities(splitter, {1, 2}, *bounds)
        assert both[0] == pytest.approx(red[0] + blue[0])
