"""Tests for time-abstract elimination of zero-reward states.

This extension makes the P2 (reward-bounded until) procedure work on
models with zero-reward transient states, where the paper's duality
transformation alone is undefined.
"""

import numpy as np
import pytest

from repro.algorithms import SericolaEngine
from repro.ctmc import ModelBuilder
from repro.errors import RewardError
from repro.logic.intervals import Interval
from repro.mc import until
from repro.mc.transform import (eliminate_zero_reward_states,
                                until_reduction)


@pytest.fixture
def detour():
    """a(rho=1) -> z(rho=0) -> {goal, trap}; z is free reward-wise."""
    builder = ModelBuilder()
    builder.add_state("a", labels=("phi",), reward=1.0)
    builder.add_state("z", labels=("phi",), reward=0.0)
    builder.add_state("goal", labels=("psi",), reward=0.0)
    builder.add_state("trap", reward=0.0)
    builder.add_transition("a", "z", 2.0)
    builder.add_transition("z", "goal", 3.0)
    builder.add_transition("z", "trap", 1.0)
    return builder.build(initial_state="a")


class TestElimination:
    def test_structure(self, detour):
        result = eliminate_zero_reward_states(detour)
        assert result.eliminated == [1]
        assert result.kept == [0, 2, 3]
        assert result.model.num_states == 3

    def test_exit_distribution(self, detour):
        result = eliminate_zero_reward_states(detour)
        # z exits to goal with 3/4, trap with 1/4.
        assert np.allclose(result.exit_distribution,
                           [[0.0, 0.75, 0.25]])

    def test_short_circuited_rates(self, detour):
        result = eliminate_zero_reward_states(detour)
        model = result.model
        # a's rate 2 into z splits 3:1 over goal and trap.
        assert model.rate(0, 1) == pytest.approx(1.5)
        assert model.rate(0, 2) == pytest.approx(0.5)

    def test_nothing_to_do(self, two_state_absorbing):
        result = eliminate_zero_reward_states(two_state_absorbing)
        assert result.model is two_state_absorbing
        assert result.eliminated == []

    def test_zero_reward_chain(self):
        # Two chained zero-reward states.
        builder = ModelBuilder()
        builder.add_state("p", reward=1.0)
        builder.add_state("z1", reward=0.0)
        builder.add_state("z2", reward=0.0)
        builder.add_state("end", reward=0.0)
        builder.add_transition("p", "z1", 1.0)
        builder.add_transition("z1", "z2", 5.0)
        builder.add_transition("z2", "end", 5.0)
        model = builder.build()
        result = eliminate_zero_reward_states(model)
        assert result.model.num_states == 2
        assert result.model.rate(0, 1) == pytest.approx(1.0)

    def test_zero_reward_trap_loses_mass(self):
        builder = ModelBuilder()
        builder.add_state("p", reward=1.0)
        builder.add_state("z1", reward=0.0)
        builder.add_state("z2", reward=0.0)
        builder.add_transition("p", "z1", 1.0)
        builder.add_transition("z1", "z2", 1.0)
        builder.add_transition("z2", "z1", 1.0)
        model = builder.build()
        result = eliminate_zero_reward_states(model)
        # The z-cycle has no exit: its rows sum to zero.
        assert result.exit_distribution.sum() == pytest.approx(0.0)

    def test_lift(self, detour):
        result = eliminate_zero_reward_states(detour)
        lifted = result.lift(np.array([0.5, 1.0, 0.0]), 4)
        assert lifted[0] == 0.5
        assert lifted[2] == 1.0
        assert lifted[1] == pytest.approx(0.75)  # exit mixture

    def test_impulses_rejected(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=0.0)
        builder.add_state("b", reward=1.0)
        builder.add_transition("a", "b", 1.0, impulse=1.0)
        with pytest.raises(RewardError):
            eliminate_zero_reward_states(builder.build())


class TestRewardBoundedUntilWithZeroRewards:
    def test_detour_closed_form(self, detour):
        # Reward accumulates only in a (rate 1/time, exit rate 2):
        # Y until absorption ~ Exp(2); reaching goal needs the z-exit
        # to pick goal (prob 3/4).  P(phi U_{<=r} psi) from a
        # = 3/4 * (1 - e^{-2r}).
        r = 0.9
        probs = until.reward_bounded_until(
            detour, {0, 1}, {2}, Interval.upto(r))
        assert probs[0] == pytest.approx(
            0.75 * (1.0 - np.exp(-2.0 * r)), abs=1e-9)
        # From z itself: no reward ever accrues before the decision.
        assert probs[1] == pytest.approx(0.75, abs=1e-9)

    def test_agrees_with_p3_at_large_t(self, detour):
        r = 0.5
        p2 = until.reward_bounded_until(detour, {0, 1}, {2},
                                        Interval.upto(r))
        p3 = until.time_reward_bounded_until(
            detour, {0, 1}, {2}, Interval.upto(500.0),
            Interval.upto(r), SericolaEngine(epsilon=1e-11))
        assert np.allclose(p2, p3, atol=1e-5)

    def test_through_checker(self, detour):
        from repro.mc import ModelChecker
        checker = ModelChecker(detour)
        result = checker.check("P>0.5 [ phi U[0,inf][0,2] psi ]")
        value = result.probability_of(0)
        assert value == pytest.approx(0.75 * (1.0 - np.exp(-4.0)),
                                      abs=1e-9)
