"""Unit tests for the Fox--Glynn style Poisson weights."""

import numpy as np
import pytest
from scipy import stats

from repro.errors import NumericalError
from repro.numerics.poisson import (PoissonWeights, poisson_weights,
                                    right_truncation_point)


class TestWeights:
    @pytest.mark.parametrize("rate", [0.1, 1.0, 10.0, 468.0, 5000.0])
    def test_matches_scipy_pmf(self, rate):
        weights = poisson_weights(rate, epsilon=1e-12)
        ks = np.arange(weights.left, weights.right + 1)
        reference = stats.poisson.pmf(ks, rate)
        assert np.allclose(weights.weights, reference, atol=1e-12)

    def test_weights_sum_to_one(self):
        weights = poisson_weights(273.5, epsilon=1e-10)
        assert weights.weights.sum() == pytest.approx(1.0, abs=1e-12)

    def test_zero_rate(self):
        weights = poisson_weights(0.0)
        assert weights.left == weights.right == 0
        assert weights.weights[0] == 1.0

    def test_large_rate_does_not_underflow(self):
        # e^{-q} underflows for q > ~745; the anchored recurrence must
        # still produce correct probabilities.
        weights = poisson_weights(10_000.0, epsilon=1e-12)
        mode = 10_000
        reference = stats.poisson.pmf(mode, 10_000.0)
        assert weights.probability(mode) == pytest.approx(reference,
                                                          rel=1e-9)

    def test_window_mass_bound(self):
        epsilon = 1e-6
        weights = poisson_weights(500.0, epsilon=epsilon)
        covered = stats.poisson.cdf(weights.right, 500.0) - \
            stats.poisson.cdf(weights.left - 1, 500.0)
        assert covered >= 1.0 - epsilon

    def test_probability_outside_window_is_zero(self):
        weights = poisson_weights(100.0, epsilon=1e-8)
        assert weights.probability(weights.left - 1) == 0.0
        assert weights.probability(weights.right + 1) == 0.0

    def test_tail_from(self):
        weights = poisson_weights(5.0, epsilon=1e-10)
        tails = weights.tail_from()
        assert tails[0] == pytest.approx(1.0)
        assert tails[-1] == pytest.approx(weights.weights[-1])
        assert np.all(np.diff(tails) <= 1e-15)

    def test_len(self):
        weights = poisson_weights(50.0, epsilon=1e-10)
        assert len(weights) == weights.right - weights.left + 1 \
            == len(weights.weights)

    def test_invalid_rate(self):
        with pytest.raises(NumericalError):
            poisson_weights(-1.0)
        with pytest.raises(NumericalError):
            poisson_weights(float("nan"))

    def test_invalid_epsilon(self):
        with pytest.raises(NumericalError):
            poisson_weights(1.0, epsilon=0.0)
        with pytest.raises(NumericalError):
            poisson_weights(1.0, epsilon=2.0)


class TestTruncationPoint:
    @pytest.mark.parametrize("epsilon,expected", [
        (1e-1, 496), (1e-2, 519), (1e-3, 536), (1e-4, 551),
        (1e-5, 563), (1e-6, 574), (1e-7, 585), (1e-8, 594),
    ])
    def test_paper_table2_values(self, epsilon, expected):
        """lambda * t = 19.5 * 24 = 468 reproduces the N column of
        Table 2 of the paper exactly."""
        assert right_truncation_point(468.0, epsilon) == expected

    def test_definition(self):
        rate, epsilon = 123.4, 1e-5
        n = right_truncation_point(rate, epsilon)
        assert stats.poisson.cdf(n, rate) > 1.0 - epsilon
        assert stats.poisson.cdf(n - 1, rate) <= 1.0 - epsilon + 1e-12

    def test_zero_rate(self):
        assert right_truncation_point(0.0, 1e-6) == 0

    def test_monotone_in_epsilon(self):
        values = [right_truncation_point(100.0, eps)
                  for eps in (1e-2, 1e-4, 1e-8)]
        assert values[0] < values[1] < values[2]

    def test_monotone_in_rate(self):
        assert (right_truncation_point(10.0, 1e-6)
                < right_truncation_point(1000.0, 1e-6))

    def test_invalid_input(self):
        with pytest.raises(NumericalError):
            right_truncation_point(-5.0, 1e-6)
        with pytest.raises(NumericalError):
            right_truncation_point(5.0, 0.0)
