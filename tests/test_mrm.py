"""Unit tests for Markov reward models and the builder."""

import numpy as np
import pytest

from repro.ctmc import MarkovRewardModel, ModelBuilder
from repro.errors import ModelError, RewardError


def small_mrm():
    rates = [[0.0, 1.0], [2.0, 0.0]]
    return MarkovRewardModel(rates, rewards=[1.5, 0.0])


class TestRewards:
    def test_reward_access(self):
        model = small_mrm()
        assert model.reward(0) == 1.5
        assert model.max_reward == 1.5

    def test_default_rewards_are_zero(self):
        model = MarkovRewardModel([[0.0, 1.0], [0.0, 0.0]])
        assert np.allclose(model.rewards, 0.0)

    def test_rejects_negative_rewards(self):
        with pytest.raises(RewardError):
            MarkovRewardModel([[0.0]], rewards=[-1.0])

    def test_rejects_wrong_length(self):
        with pytest.raises(ModelError):
            MarkovRewardModel([[0.0, 1.0], [0.0, 0.0]], rewards=[1.0])

    def test_rejects_nan_reward(self):
        with pytest.raises(RewardError):
            MarkovRewardModel([[0.0]], rewards=[float("inf")])

    def test_distinct_rewards_sorted(self):
        model = MarkovRewardModel(np.zeros((4, 4)),
                                  rewards=[2.0, 0.0, 2.0, 1.0])
        assert np.allclose(model.distinct_rewards(), [0.0, 1.0, 2.0])

    def test_reward_partition(self):
        model = MarkovRewardModel(np.zeros((4, 4)),
                                  rewards=[2.0, 0.0, 2.0, 1.0])
        partition = model.reward_partition()
        assert [list(block) for block in partition] == [[1], [3], [0, 2]]

    def test_integer_reward_detection(self):
        assert MarkovRewardModel(np.zeros((2, 2)),
                                 rewards=[3.0, 0.0]).has_integer_rewards()
        assert not MarkovRewardModel(
            np.zeros((2, 2)), rewards=[0.5, 0.0]).has_integer_rewards()


class TestDerivedModels:
    def test_as_ctmc_drops_rewards(self):
        plain = small_mrm().as_ctmc()
        assert not hasattr(plain, "rewards")

    def test_with_rewards(self):
        modified = small_mrm().with_rewards([0.0, 7.0])
        assert modified.reward(1) == 7.0
        assert small_mrm().reward(1) == 0.0  # original untouched

    def test_with_initial_state(self):
        moved = small_mrm().with_initial_state(1)
        assert np.allclose(moved.initial_distribution, [0.0, 1.0])

    def test_with_initial_state_out_of_range(self):
        with pytest.raises(ModelError):
            small_mrm().with_initial_state(5)

    def test_scaled_rewards(self):
        scaled = small_mrm().scaled_rewards(2.0)
        assert scaled.reward(0) == 3.0

    def test_scaled_rewards_rejects_nonpositive(self):
        with pytest.raises(RewardError):
            small_mrm().scaled_rewards(0.0)

    def test_scaling_makes_rationals_integral(self):
        model = MarkovRewardModel(np.zeros((2, 2)), rewards=[0.5, 0.25])
        assert model.scaled_rewards(4.0).has_integer_rewards()


class TestBuilder:
    def test_basic_build(self):
        builder = ModelBuilder()
        builder.add_state("a", labels=("x",), reward=1.0)
        builder.add_state("b")
        builder.add_transition("a", "b", 2.0)
        model = builder.build(initial_state="b")
        assert model.num_states == 2
        assert model.rate(0, 1) == 2.0
        assert model.states_with("x") == frozenset({0})
        assert model.initial_distribution[1] == 1.0

    def test_default_names(self):
        builder = ModelBuilder()
        builder.add_state()
        builder.add_state()
        model = builder.build()
        assert model.state_names == ["s0", "s1"]

    def test_duplicate_state_rejected(self):
        builder = ModelBuilder()
        builder.add_state("a")
        with pytest.raises(ModelError, match="duplicate"):
            builder.add_state("a")

    def test_parallel_transitions_accumulate(self):
        builder = ModelBuilder()
        builder.add_state("a")
        builder.add_state("b")
        builder.add_transition("a", "b", 1.0)
        builder.add_transition("a", "b", 2.5)
        assert builder.build().rate(0, 1) == 3.5

    def test_zero_rate_ignored(self):
        builder = ModelBuilder()
        builder.add_state("a")
        builder.add_state("b")
        builder.add_transition("a", "b", 0.0)
        assert builder.build().num_transitions == 0

    def test_negative_rate_rejected(self):
        builder = ModelBuilder()
        builder.add_state("a")
        with pytest.raises(ModelError, match="negative"):
            builder.add_transition("a", "a", -1.0)

    def test_unknown_state_rejected(self):
        builder = ModelBuilder()
        builder.add_state("a")
        with pytest.raises(ModelError, match="unknown state"):
            builder.add_transition("a", "nope", 1.0)

    def test_index_out_of_range_rejected(self):
        builder = ModelBuilder()
        builder.add_state("a")
        with pytest.raises(ModelError, match="out of range"):
            builder.resolve(3)

    def test_set_reward_and_label_later(self):
        builder = ModelBuilder()
        builder.add_state("a")
        builder.set_reward("a", 4.0)
        builder.add_label("a", "extra")
        model = builder.build()
        assert model.reward(0) == 4.0
        assert model.states_with("extra") == frozenset({0})

    def test_initial_distribution(self):
        builder = ModelBuilder()
        builder.add_state("a")
        builder.add_state("b")
        model = builder.build(initial_distribution=[0.25, 0.75])
        assert model.initial_distribution[1] == 0.75

    def test_both_initial_forms_rejected(self):
        builder = ModelBuilder()
        builder.add_state("a")
        with pytest.raises(ModelError, match="not both"):
            builder.build(initial_state="a", initial_distribution=[1.0])

    def test_empty_build_rejected(self):
        with pytest.raises(ModelError, match="no states"):
            ModelBuilder().build()

    def test_num_states_property(self):
        builder = ModelBuilder()
        assert builder.num_states == 0
        builder.add_state("a")
        assert builder.num_states == 1
