"""Shared fixtures: small canonical models used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmc import ModelBuilder
from repro.models.adhoc import adhoc_model, reduced_q3_model


@pytest.fixture
def two_state_absorbing():
    """State 'a' (reward 1) flows into absorbing 'b' (reward 0) at rate mu.

    Closed forms (mu = 0.7):
      Pr{Y_t > r, X_t = b | X_0 = a} = e^{-mu r} - e^{-mu t}   (r < t)
      Pr{Y_t > r, X_t = a | X_0 = a} = e^{-mu t}               (r < t)
    """
    builder = ModelBuilder()
    builder.add_state("a", labels=("green",), reward=1.0)
    builder.add_state("b", labels=("red",), reward=0.0)
    builder.add_transition("a", "b", 0.7)
    return builder.build(initial_state="a")


@pytest.fixture
def flip_flop():
    """Irreducible two-state chain with distinct rewards and rates."""
    builder = ModelBuilder()
    builder.add_state("up", labels=("up",), reward=2.0)
    builder.add_state("down", labels=("down",), reward=0.0)
    builder.add_transition("up", "down", 1.0)
    builder.add_transition("down", "up", 3.0)
    return builder.build(initial_state="up")


@pytest.fixture
def three_level_chain():
    """Three distinct positive reward levels; exercises m >= 2 in
    Sericola's recursion."""
    builder = ModelBuilder()
    builder.add_state("fast", labels=("busy",), reward=3.0)
    builder.add_state("slow", labels=("busy",), reward=1.0)
    builder.add_state("stopped", labels=("halt",), reward=0.0)
    builder.add_transition("fast", "slow", 2.0)
    builder.add_transition("slow", "fast", 1.0)
    builder.add_transition("slow", "stopped", 0.5)
    return builder.build(initial_state="fast")


@pytest.fixture(scope="session")
def adhoc():
    """The 9-state case-study MRM (expensive enough to share)."""
    return adhoc_model()


@pytest.fixture(scope="session")
def adhoc_reduced():
    """The amalgamated Theorem-1 reduction for Q3 (5 states)."""
    return reduced_q3_model()


@pytest.fixture
def rng():
    return np.random.default_rng(20020623)  # DSN 2002 conference date
