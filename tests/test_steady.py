"""Unit tests for the steady-state operator."""

import numpy as np
import pytest

from repro.ctmc import ModelBuilder
from repro.mc.steady import steady_state_probabilities


class TestIrreducible:
    def test_flip_flop(self, flip_flop):
        probs = steady_state_probabilities(flip_flop, {0})
        # pi = (0.75, 0.25) regardless of the start state.
        assert np.allclose(probs, 0.75)

    def test_complement(self, flip_flop):
        up = steady_state_probabilities(flip_flop, {0})
        down = steady_state_probabilities(flip_flop, {1})
        assert np.allclose(up + down, 1.0)

    def test_empty_phi(self, flip_flop):
        assert np.allclose(steady_state_probabilities(flip_flop, set()),
                           0.0)

    def test_full_phi(self, flip_flop):
        assert np.allclose(
            steady_state_probabilities(flip_flop, {0, 1}), 1.0)


class TestReducible:
    @pytest.fixture
    def two_traps(self):
        """start branches to two absorbing traps with rates 1 and 3."""
        builder = ModelBuilder()
        builder.add_state("start")
        builder.add_state("left", labels=("left",))
        builder.add_state("right", labels=("right",))
        builder.add_transition("start", "left", 1.0)
        builder.add_transition("start", "right", 3.0)
        return builder.build()

    def test_initial_state_weighs_bsccs(self, two_traps):
        probs = steady_state_probabilities(two_traps, {1})
        assert probs[0] == pytest.approx(0.25)
        assert probs[1] == 1.0
        assert probs[2] == 0.0

    def test_trap_with_internal_structure(self):
        builder = ModelBuilder()
        builder.add_state("start")
        builder.add_state("fast", labels=("fast",))
        builder.add_state("slow")
        builder.add_transition("start", "fast", 1.0)
        builder.add_transition("fast", "slow", 1.0)
        builder.add_transition("slow", "fast", 3.0)
        model = builder.build()
        probs = steady_state_probabilities(model, {1})
        # Inside the BSCC {fast, slow}: pi(fast) = 0.75.
        assert probs[0] == pytest.approx(0.75)
        assert probs[1] == pytest.approx(0.75)

    def test_phi_outside_all_bsccs(self, two_traps):
        # The transient start state has long-run probability zero.
        assert np.allclose(steady_state_probabilities(two_traps, {0}),
                           0.0)
