"""Unit tests for the uniformisation-based transient analyses."""

import numpy as np
import pytest
import scipy.linalg

from repro.ctmc import CTMC, MarkovRewardModel, ModelBuilder
from repro.errors import NumericalError
from repro.numerics.uniformization import (
    expected_accumulated_reward, expected_instantaneous_reward,
    transient_distribution, transient_matrix,
    transient_target_probabilities)


def random_ctmc(n, seed):
    rng = np.random.default_rng(seed)
    rates = rng.uniform(0.0, 2.0, size=(n, n))
    rates[rng.random((n, n)) < 0.4] = 0.0
    np.fill_diagonal(rates, 0.0)
    return CTMC(rates)


def expm_reference(chain, t):
    return scipy.linalg.expm(chain.generator_matrix().toarray() * t)


class TestTransientDistribution:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("t", [0.1, 1.0, 7.5])
    def test_against_matrix_exponential(self, seed, t):
        chain = random_ctmc(6, seed)
        reference = chain.initial_distribution @ expm_reference(chain, t)
        computed = transient_distribution(chain, t, epsilon=1e-13)
        assert np.allclose(computed, reference, atol=1e-10)

    def test_time_zero(self):
        chain = random_ctmc(4, 0)
        assert np.allclose(transient_distribution(chain, 0.0),
                           chain.initial_distribution)

    def test_distribution_stays_stochastic(self):
        chain = random_ctmc(5, 7)
        pi = transient_distribution(chain, 3.0)
        assert pi.min() >= -1e-12
        assert pi.sum() == pytest.approx(1.0, abs=1e-9)

    def test_negative_time_rejected(self):
        with pytest.raises(NumericalError):
            transient_distribution(random_ctmc(3, 0), -1.0)

    def test_custom_initial_vector(self):
        chain = random_ctmc(4, 5)
        uniform = np.full(4, 0.25)
        pi = transient_distribution(chain, 2.0, initial=uniform)
        reference = uniform @ expm_reference(chain, 2.0)
        assert np.allclose(pi, reference, atol=1e-10)

    def test_wrong_initial_shape_rejected(self):
        with pytest.raises(NumericalError):
            transient_distribution(random_ctmc(4, 5), 1.0,
                                   initial=[1.0, 0.0])

    def test_steady_state_detection_is_consistent(self):
        # An ergodic chain at a huge horizon: with and without
        # detection the result must agree (and equal the fixed point).
        builder = ModelBuilder()
        builder.add_state("u")
        builder.add_state("d")
        builder.add_transition("u", "d", 1.0)
        builder.add_transition("d", "u", 3.0)
        chain = builder.build()
        with_detection = transient_distribution(
            chain, 500.0, steady_state_detection=True)
        without = transient_distribution(
            chain, 500.0, steady_state_detection=False)
        assert np.allclose(with_detection, without, atol=1e-8)
        assert np.allclose(with_detection, [0.75, 0.25], atol=1e-8)

    def test_absorbing_chain_converges(self):
        builder = ModelBuilder()
        builder.add_state("a")
        builder.add_state("b")
        builder.add_transition("a", "b", 2.0)
        chain = builder.build()
        pi = transient_distribution(chain, 50.0)
        assert np.allclose(pi, [0.0, 1.0], atol=1e-12)

    def test_transition_free_chain(self):
        chain = CTMC(np.zeros((3, 3)),
                     initial_distribution=[0.2, 0.3, 0.5])
        assert np.allclose(transient_distribution(chain, 9.0),
                           [0.2, 0.3, 0.5])


class TestBackwardTransient:
    @pytest.mark.parametrize("seed", [11, 12])
    def test_forward_backward_duality(self, seed):
        chain = random_ctmc(5, seed)
        t = 1.7
        indicator = np.array([1.0, 0.0, 1.0, 0.0, 0.0])
        backward = transient_target_probabilities(chain, t, indicator,
                                                  epsilon=1e-13)
        matrix = expm_reference(chain, t)
        assert np.allclose(backward, matrix @ indicator, atol=1e-10)

    def test_indicator_at_time_zero(self):
        chain = random_ctmc(3, 13)
        indicator = np.array([0.0, 1.0, 0.0])
        assert np.allclose(
            transient_target_probabilities(chain, 0.0, indicator),
            indicator)

    def test_transient_matrix(self):
        chain = random_ctmc(4, 21)
        t = 0.9
        assert np.allclose(transient_matrix(chain, t, epsilon=1e-13),
                           expm_reference(chain, t), atol=1e-10)

    def test_transient_matrix_time_zero(self):
        chain = random_ctmc(4, 22)
        assert np.allclose(transient_matrix(chain, 0.0), np.eye(4))

    def test_stats_plumbing(self):
        from repro.algorithms.cache import EngineStats
        chain = random_ctmc(4, 23)
        stats = EngineStats()
        transient_distribution(chain, 1.3, stats=stats)
        assert stats.matvec_count > 0
        assert stats.propagation_steps == stats.matvec_count
        before = stats.matvec_count
        transient_matrix(chain, 1.3, stats=stats)
        assert stats.matvec_count > before
        model = MarkovRewardModel(chain.rate_matrix,
                                  rewards=[1.0, 0.0, 2.0, 0.5])
        before = stats.matvec_count
        expected_accumulated_reward(model, 1.3, stats=stats)
        assert stats.matvec_count > before


class TestExpectedRewards:
    def test_accumulated_reward_absorbing_closed_form(self):
        # State a (reward 2) -> absorbing b: E[Y_t] = 2 (1 - e^{-t}).
        builder = ModelBuilder()
        builder.add_state("a", reward=2.0)
        builder.add_state("b", reward=0.0)
        builder.add_transition("a", "b", 1.0)
        model = builder.build()
        for t in (0.5, 1.5, 4.0):
            assert expected_accumulated_reward(model, t) == pytest.approx(
                2.0 * (1.0 - np.exp(-t)), rel=1e-8)

    def test_accumulated_reward_time_zero(self):
        model = MarkovRewardModel([[0.0]], rewards=[3.0])
        assert expected_accumulated_reward(model, 0.0) == 0.0

    def test_accumulated_reward_static_chain(self):
        model = MarkovRewardModel(np.zeros((2, 2)), rewards=[3.0, 1.0],
                                  initial_distribution=[0.5, 0.5])
        assert expected_accumulated_reward(model, 2.0) == pytest.approx(4.0)

    def test_instantaneous_reward(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=2.0)
        builder.add_state("b", reward=0.0)
        builder.add_transition("a", "b", 1.0)
        model = builder.build()
        t = 1.3
        assert expected_instantaneous_reward(model, t) == pytest.approx(
            2.0 * np.exp(-t), rel=1e-9)

    def test_reward_override(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=2.0)
        builder.add_state("b", reward=0.0)
        builder.add_transition("a", "b", 1.0)
        model = builder.build()
        value = expected_instantaneous_reward(model, 1.0,
                                              rewards=[10.0, 0.0])
        assert value == pytest.approx(10.0 * np.exp(-1.0), rel=1e-9)

    def test_accumulated_reward_linear_in_scale(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=1.0)
        builder.add_state("b", reward=4.0)
        builder.add_transition("a", "b", 1.0)
        builder.add_transition("b", "a", 2.0)
        model = builder.build()
        base = expected_accumulated_reward(model, 3.0)
        doubled = expected_accumulated_reward(
            model.scaled_rewards(2.0), 3.0)
        assert doubled == pytest.approx(2.0 * base, rel=1e-9)
