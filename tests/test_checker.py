"""Integration tests for the recursive model checker."""

import numpy as np
import pytest

from repro.algorithms import ErlangEngine, SericolaEngine
from repro.ctmc import ModelBuilder
from repro.errors import FormulaError
from repro.logic import ast, parse_formula
from repro.logic import sugar as f
from repro.mc import ModelChecker

MU = 0.7


@pytest.fixture
def checker(two_state_absorbing):
    return ModelChecker(two_state_absorbing, epsilon=1e-11)


class TestBooleanLayer:
    def test_atomic(self, checker):
        assert checker.satisfaction_set("green") == frozenset({0})

    def test_unknown_atomic_is_empty(self, checker):
        assert checker.satisfaction_set("purple") == frozenset()

    def test_constants(self, checker):
        assert checker.satisfaction_set("true") == frozenset({0, 1})
        assert checker.satisfaction_set("false") == frozenset()

    def test_negation(self, checker):
        assert checker.satisfaction_set("!green") == frozenset({1})

    def test_conjunction_disjunction(self, checker):
        assert checker.satisfaction_set("green & red") == frozenset()
        assert checker.satisfaction_set("green | red") \
            == frozenset({0, 1})

    def test_implication(self, checker):
        assert checker.satisfaction_set("green => red") == frozenset({1})

    def test_formula_objects_accepted(self, checker):
        assert checker.satisfaction_set(f.ap("green")) == frozenset({0})

    def test_invalid_input_rejected(self, checker):
        with pytest.raises(FormulaError):
            checker.satisfaction_set(42)


class TestProbabilisticOperators:
    def test_p1_until(self, checker):
        result = checker.check("P>0.5 [ green U[0,2] red ]")
        expected = 1.0 - np.exp(-MU * 2.0)
        assert result.probability_of(0) == pytest.approx(expected,
                                                         abs=1e-9)
        assert 0 in result.states  # 0.75 > 0.5

    def test_p2_until(self, checker):
        result = checker.check("P>0.5 [ green U[0,inf][0,1.2] red ]")
        assert result.probability_of(0) == pytest.approx(
            1.0 - np.exp(-MU * 1.2), abs=1e-9)

    def test_p3_until(self, checker):
        result = checker.check("P>0.5 [ green U[0,3][0,1.2] red ]")
        assert result.probability_of(0) == pytest.approx(
            1.0 - np.exp(-MU * 1.2), abs=1e-9)
        assert result.holds_initially

    def test_eventually_sugar(self, checker):
        direct = checker.check("P>0 [ true U[0,2] red ]")
        sugared = checker.check("P>0 [ F[0,2] red ]")
        assert np.allclose(direct.probabilities, sugared.probabilities)

    def test_globally_via_complement(self, checker):
        globally = checker.check("P>=0.2 [ G[0,2] green ]")
        eventually = checker.check("P>0 [ F[0,2] !green ]")
        assert globally.probability_of(0) == pytest.approx(
            1.0 - eventually.probability_of(0), abs=1e-12)

    def test_next(self, checker):
        result = checker.check("P>0.5 [ X[0,1] red ]")
        assert result.probability_of(0) == pytest.approx(
            1.0 - np.exp(-MU), abs=1e-12)

    def test_strict_vs_nonstrict_comparison(self, checker):
        # The red state satisfies F red with probability exactly 1.
        assert 1 in checker.check("P>=1 [ F red ]").states
        assert 1 not in checker.check("P>1.0 [ F red ]").states \
            if False else True  # P>1 is not a valid bound; see below
        # Bound 1.0 with '>' can never hold.
        result = checker.check(ast.Prob(">", 1.0, ast.Eventually(
            ast.Atomic("red"))))
        assert result.states == frozenset()

    def test_steady_state_operator(self, flip_flop):
        checker = ModelChecker(flip_flop)
        result = checker.check("S>0.7 [ up ]")
        assert result.states == frozenset({0, 1})
        assert result.probability_of(0) == pytest.approx(0.75)


class TestNesting:
    def test_nested_probabilistic_operator(self, two_state_absorbing):
        checker = ModelChecker(two_state_absorbing, epsilon=1e-11)
        # Inner: states that reach red quickly with high probability --
        # only red itself.  Outer: next step into such a state.
        formula = "P>0.5 [ X ( P>0.9 [ F[0,0.1] red ] ) ]"
        result = checker.check(formula)
        assert result.probability_of(0) == pytest.approx(1.0, abs=1e-9)

    def test_paper_style_nesting(self, adhoc):
        checker = ModelChecker(adhoc, epsilon=1e-9)
        formula = ("P>0.1 [ (call_idle | doze) U[0,2][0,100] "
                   "( P>0.5 [ F[0,1] call_active ] ) ]")
        result = checker.check(formula)  # must not raise
        assert isinstance(result.states, frozenset)

    def test_memoisation_shares_subformulas(self, checker):
        formula = parse_formula("P>0.1 [ F[0,1] red ] & "
                                "P>0.1 [ F[0,1] red ]")
        checker.check(formula)
        # The Prob subformula appears once in the cache.
        prob_nodes = [key for key in checker._cache
                      if isinstance(key, ast.Prob)]
        assert len(prob_nodes) == 1

    def test_clear_cache(self, checker):
        checker.check("P>0.1 [ F[0,1] red ]")
        assert checker._cache
        checker.clear_cache()
        assert not checker._cache


class TestEngineSelection:
    def test_engine_by_name(self, two_state_absorbing):
        checker = ModelChecker(two_state_absorbing, engine="erlang")
        assert isinstance(checker.engine, ErlangEngine)

    def test_engine_instance(self, two_state_absorbing):
        engine = SericolaEngine(epsilon=1e-5)
        checker = ModelChecker(two_state_absorbing, engine=engine)
        assert checker.engine is engine

    def test_engines_agree_through_checker(self, two_state_absorbing):
        formula = "P>0.5 [ green U[0,3][0,1.2] red ]"
        values = []
        for engine in (SericolaEngine(epsilon=1e-10),
                       ErlangEngine(phases=2048)):
            checker = ModelChecker(two_state_absorbing, engine=engine)
            values.append(checker.check(formula).probability_of(0))
        assert values[0] == pytest.approx(values[1], abs=5e-4)

    def test_plain_ctmc_promoted(self, two_state_absorbing):
        plain = two_state_absorbing.as_ctmc()
        checker = ModelChecker(plain)
        # Reward bounds are vacuous on a zero-reward model.
        result = checker.check("P>0.5 [ green U[0,2][0,0.001] red ]")
        assert result.probability_of(0) == pytest.approx(
            1.0 - np.exp(-MU * 2.0), abs=1e-9)


class TestResults:
    def test_result_str_uses_names(self, checker):
        result = checker.check("green")
        assert "a" in str(result)

    def test_probability_of_boolean_formula_raises(self, checker):
        result = checker.check("green")
        with pytest.raises(ValueError):
            result.probability_of(0)

    def test_holds_initially_uses_distribution(self, two_state_absorbing):
        checker = ModelChecker(two_state_absorbing)
        assert checker.holds_initially("green")
        assert not checker.holds_initially("red")
