"""Unit tests for the CTMC core data structure."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ctmc import CTMC
from repro.errors import ModelError


def simple_ctmc(**kwargs):
    rates = [[0.0, 2.0, 0.0],
             [1.0, 0.0, 1.0],
             [0.0, 0.0, 0.0]]
    return CTMC(rates, **kwargs)


class TestConstruction:
    def test_dense_input(self):
        chain = simple_ctmc()
        assert chain.num_states == 3
        assert chain.num_transitions == 3

    def test_sparse_input(self):
        chain = CTMC(sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]])))
        assert chain.num_states == 2
        assert chain.rate(0, 1) == 1.0

    def test_nested_list_input(self):
        chain = CTMC([[0, 1], [2, 0]])
        assert chain.rate(1, 0) == 2.0

    def test_rejects_non_square(self):
        with pytest.raises(ModelError, match="square"):
            CTMC([[0.0, 1.0, 0.0], [0.0, 0.0, 0.0]])

    def test_rejects_negative_rates(self):
        with pytest.raises(ModelError, match="non-negative"):
            CTMC([[0.0, -1.0], [0.0, 0.0]])

    def test_rejects_nan_rates(self):
        with pytest.raises(ModelError, match="finite"):
            CTMC([[0.0, float("nan")], [0.0, 0.0]])

    def test_rejects_empty_chain(self):
        with pytest.raises(ModelError, match="at least one state"):
            CTMC(np.zeros((0, 0)))

    def test_explicit_zeros_pruned(self):
        matrix = sp.csr_matrix(np.array([[0.0, 0.0], [1.0, 0.0]]))
        matrix[0, 1] = 0.0  # stores an explicit zero
        chain = CTMC(matrix)
        assert chain.num_transitions == 1


class TestStructure:
    def test_exit_rates(self):
        chain = simple_ctmc()
        assert np.allclose(chain.exit_rates, [2.0, 2.0, 0.0])
        assert chain.max_exit_rate == 2.0

    def test_absorbing(self):
        chain = simple_ctmc()
        assert not chain.is_absorbing(0)
        assert chain.is_absorbing(2)

    def test_successors(self):
        chain = simple_ctmc()
        assert chain.successors(1) == [0, 2]
        assert chain.successors(2) == []

    def test_generator_row_sums_vanish(self):
        generator = simple_ctmc().generator_matrix()
        assert np.allclose(np.asarray(generator.sum(axis=1)).ravel(), 0.0)

    def test_generator_diagonal(self):
        generator = simple_ctmc().generator_matrix()
        assert np.allclose(generator.diagonal(), [-2.0, -2.0, 0.0])


class TestUniformization:
    def test_default_rate_rows_are_stochastic(self):
        matrix = simple_ctmc().uniformized_dtmc_matrix()
        sums = np.asarray(matrix.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)
        assert matrix.min() >= 0.0

    def test_larger_rate_allowed(self):
        matrix = simple_ctmc().uniformized_dtmc_matrix(10.0)
        sums = np.asarray(matrix.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)
        # Self-loop probability grows with the rate.
        assert matrix[0, 0] == pytest.approx(0.8)

    def test_rate_below_max_rejected(self):
        with pytest.raises(ModelError, match="below the maximal"):
            simple_ctmc().uniformized_dtmc_matrix(1.0)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ModelError, match="positive"):
            simple_ctmc().uniformized_dtmc_matrix(0.0)

    def test_transition_free_chain(self):
        chain = CTMC(np.zeros((2, 2)))
        matrix = chain.uniformized_dtmc_matrix()
        assert np.allclose(matrix.toarray(), np.eye(2))


class TestLabelling:
    def test_states_with(self):
        chain = simple_ctmc(labels={"odd": [1], "low": [0, 1]})
        assert chain.states_with("odd") == frozenset({1})
        assert chain.states_with("low") == frozenset({0, 1})

    def test_unknown_proposition_is_empty(self):
        chain = simple_ctmc()
        assert chain.states_with("nonexistent") == frozenset()

    def test_labels_of(self):
        chain = simple_ctmc(labels={"odd": [1], "low": [0, 1]})
        assert chain.labels_of(1) == {"odd", "low"}
        assert chain.labels_of(2) == set()

    def test_atomic_propositions_sorted(self):
        chain = simple_ctmc(labels={"zeta": [0], "alpha": [1]})
        assert chain.atomic_propositions == ["alpha", "zeta"]

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ModelError, match="refers to state"):
            simple_ctmc(labels={"bad": [7]})


class TestInitialDistribution:
    def test_default_is_point_mass_on_zero(self):
        chain = simple_ctmc()
        assert np.allclose(chain.initial_distribution, [1.0, 0.0, 0.0])

    def test_custom_distribution(self):
        chain = simple_ctmc(initial_distribution=[0.5, 0.25, 0.25])
        assert chain.initial_distribution[1] == 0.25

    def test_rejects_unnormalised(self):
        with pytest.raises(ModelError, match="sums to"):
            simple_ctmc(initial_distribution=[0.5, 0.25, 0.5])

    def test_rejects_negative(self):
        with pytest.raises(ModelError, match="non-negative"):
            simple_ctmc(initial_distribution=[1.5, -0.5, 0.0])

    def test_rejects_wrong_length(self):
        with pytest.raises(ModelError, match="shape"):
            simple_ctmc(initial_distribution=[1.0, 0.0])


class TestNames:
    def test_named_states(self):
        chain = simple_ctmc(state_names=["x", "y", "z"])
        assert chain.name_of(1) == "y"
        assert chain.state_index("z") == 2

    def test_unnamed_states_use_indices(self):
        chain = simple_ctmc()
        assert chain.name_of(2) == "2"
        assert chain.state_names is None

    def test_unknown_name_rejected(self):
        chain = simple_ctmc(state_names=["x", "y", "z"])
        with pytest.raises(ModelError, match="no state named"):
            chain.state_index("w")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelError, match="unique"):
            simple_ctmc(state_names=["x", "x", "z"])

    def test_wrong_name_count_rejected(self):
        with pytest.raises(ModelError, match="state names"):
            simple_ctmc(state_names=["x"])

    def test_repr_mentions_sizes(self):
        assert "states=3" in repr(simple_ctmc())
