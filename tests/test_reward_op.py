"""Tests for the expected-reward operator ``R <|b [ . ]``."""

import numpy as np
import pytest

from repro.ctmc import ModelBuilder
from repro.errors import FormulaError, ParseError
from repro.logic import ast, parse_formula
from repro.mc import ModelChecker
from repro.mc.reward_op import (cumulative_reward_vector,
                                instantaneous_reward_vector,
                                reachability_reward_vector)

MU = 0.7


class TestParsing:
    def test_instantaneous(self):
        formula = parse_formula("R<=5 [ I=2.5 ]")
        assert formula == ast.Reward(
            "<=", 5.0, ast.InstantaneousReward(2.5))

    def test_cumulative(self):
        formula = parse_formula("R>0.5 [ C<=10 ]")
        assert formula == ast.Reward(">", 0.5, ast.CumulativeReward(10.0))

    def test_reachability(self):
        formula = parse_formula("R<3 [ F failed & !up ]")
        query = formula.query
        assert isinstance(query, ast.ReachabilityReward)
        assert query.operand == ast.And(ast.Atomic("failed"),
                                        ast.Not(ast.Atomic("up")))

    @pytest.mark.parametrize("text", [
        "R<=5 [ I=2.5 ]", "R>0.5 [ C<=10 ]", "R<3 [ F failed ]",
        "R>=100 [ C<=24 ]",
    ])
    def test_round_trip(self, text):
        formula = parse_formula(text)
        assert parse_formula(str(formula)) == formula

    def test_bound_above_one_allowed(self):
        # Reward bounds are not probabilities.
        formula = parse_formula("R<=600 [ C<=24 ]")
        assert formula.bound == 600.0

    def test_negative_bound_rejected(self):
        with pytest.raises(FormulaError):
            ast.Reward("<=", -1.0, ast.CumulativeReward(1.0))

    def test_malformed_query_rejected(self):
        with pytest.raises(ParseError):
            parse_formula("R<=5 [ X a ]")
        with pytest.raises(ParseError):
            parse_formula("R<=5 [ C=3 ]")


class TestInstantaneous:
    def test_closed_form(self, two_state_absorbing):
        t = 1.3
        vector = instantaneous_reward_vector(two_state_absorbing, t)
        assert vector[0] == pytest.approx(np.exp(-MU * t), abs=1e-10)
        assert vector[1] == 0.0

    def test_time_zero_is_reward_vector(self, three_level_chain):
        vector = instantaneous_reward_vector(three_level_chain, 0.0)
        assert np.allclose(vector, three_level_chain.rewards)


class TestCumulative:
    def test_closed_form(self, two_state_absorbing):
        t = 2.0
        vector = cumulative_reward_vector(two_state_absorbing, t)
        assert vector[0] == pytest.approx((1.0 - np.exp(-MU * t)) / MU,
                                          rel=1e-8)
        assert vector[1] == 0.0

    def test_matches_forward_variant(self, three_level_chain):
        from repro.numerics.uniformization import \
            expected_accumulated_reward
        t = 1.7
        vector = cumulative_reward_vector(three_level_chain, t)
        forward = expected_accumulated_reward(three_level_chain, t)
        alpha = three_level_chain.initial_distribution
        assert float(alpha @ vector) == pytest.approx(forward, rel=1e-8)

    def test_static_chain(self):
        from repro.ctmc import MarkovRewardModel
        model = MarkovRewardModel(np.zeros((2, 2)), rewards=[3.0, 1.0])
        assert np.allclose(cumulative_reward_vector(model, 2.0),
                           [6.0, 2.0])


class TestReachability:
    def test_closed_form(self, two_state_absorbing):
        # Expected reward until absorption: E[T] * rho = 1/mu.
        vector = reachability_reward_vector(two_state_absorbing, {1})
        assert vector[0] == pytest.approx(1.0 / MU, rel=1e-10)
        assert vector[1] == 0.0

    def test_unreachable_target_is_infinite(self, two_state_absorbing):
        vector = reachability_reward_vector(two_state_absorbing, {0})
        # From the absorbing state b, 'a' is never reached.
        assert np.isinf(vector[1])
        assert vector[0] == 0.0

    def test_probabilistic_miss_is_infinite(self):
        builder = ModelBuilder()
        builder.add_state("start", reward=2.0)
        builder.add_state("goal", reward=0.0)
        builder.add_state("trap", reward=0.0)
        builder.add_transition("start", "goal", 1.0)
        builder.add_transition("start", "trap", 1.0)
        model = builder.build()
        vector = reachability_reward_vector(model, {1})
        assert np.isinf(vector[0])

    def test_chain_accumulates(self):
        # a(rho=2, rate 1) -> b(rho=4, rate 2) -> c: expected
        # 2*1 + 4*0.5 = 4.
        builder = ModelBuilder()
        builder.add_state("a", reward=2.0)
        builder.add_state("b", reward=4.0)
        builder.add_state("c", labels=("goal",))
        builder.add_transition("a", "b", 1.0)
        builder.add_transition("b", "c", 2.0)
        model = builder.build()
        vector = reachability_reward_vector(model, {2})
        assert vector[0] == pytest.approx(4.0, rel=1e-10)
        assert vector[1] == pytest.approx(2.0, rel=1e-10)


class TestSteadyStateReward:
    def test_parse_and_round_trip(self):
        formula = parse_formula("R<=1.5 [ S ]")
        assert isinstance(formula.query, ast.SteadyStateReward)
        assert parse_formula(str(formula)) == formula

    def test_long_run_rate(self, flip_flop):
        checker = ModelChecker(flip_flop)
        # pi = (0.75, 0.25), rewards (2, 0): long-run rate 1.5.
        result = checker.check("R<=1.5 [ S ]")
        assert result.states == frozenset({0, 1})
        assert result.probability_of(0) == pytest.approx(1.5)
        strict = checker.check("R<1.5 [ S ]")
        assert strict.states == frozenset()


class TestThroughChecker:
    def test_cumulative_through_checker(self, two_state_absorbing):
        checker = ModelChecker(two_state_absorbing)
        t = 2.0
        expected = (1.0 - np.exp(-MU * t)) / MU
        result = checker.check(f"R<={expected + 0.01} [ C<={t} ]")
        assert 0 in result.states
        assert result.probability_of(0) == pytest.approx(expected,
                                                         rel=1e-8)

    def test_reachability_through_checker(self, two_state_absorbing):
        checker = ModelChecker(two_state_absorbing)
        result = checker.check("R<2 [ F red ]")
        assert 0 in result.states  # 1/0.7 = 1.43 < 2

    def test_infinite_fails_upper_bounds(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=1.0)
        builder.add_state("b", labels=("goal",))
        builder.add_state("trap")
        builder.add_transition("a", "b", 1.0)
        builder.add_transition("a", "trap", 1.0)
        checker = ModelChecker(builder.build())
        result = checker.check("R<=1000000 [ F goal ]")
        assert 0 not in result.states
        assert 1 in result.states

    def test_nested_in_boolean_formula(self, two_state_absorbing):
        checker = ModelChecker(two_state_absorbing)
        result = checker.check("green & R<2 [ F red ]")
        assert result.states == frozenset({0})

    def test_case_study_power_budget(self, adhoc):
        """Expected power drawn in 24 h: must lie between the doze
        floor (20 mA) and the all-active ceiling (350 mA)."""
        checker = ModelChecker(adhoc)
        vector = checker.expected_reward_vector(
            ast.CumulativeReward(24.0))
        assert np.all(vector > 20.0 * 24.0)
        assert np.all(vector < 350.0 * 24.0)
        # The battery (750 mAh) does not last the day on average.
        assert np.all(vector > 750.0)
