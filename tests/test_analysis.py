"""Tests for the static-analysis pass framework (repro.analysis).

One trigger test and one clean test per diagnostic code, plus
framework-level tests (report rendering, severity ordering, exit
codes) and a property test that a well-formed model/formula/engine
combination yields zero diagnostics.
"""

import json

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.algorithms import (DiscretizationEngine, ErlangEngine,
                              SericolaEngine)
from repro.analysis import (AnalysisReport, Diagnostic, QueryProfile,
                            Severity, engine_compatibility, lint,
                            lint_formula, lint_model, lint_srn, supports)
from repro.ctmc import MarkovRewardModel, ModelBuilder
from repro.logic.parser import parse_formula
from repro.srn.net import StochasticRewardNet


def build_clean_model(reward_up=2.0, reward_mid=1.0):
    """Irreducible three-state model that lints clean."""
    builder = ModelBuilder()
    builder.add_state("up", labels=("up",), reward=reward_up)
    builder.add_state("mid", labels=("mid",), reward=reward_mid)
    builder.add_state("down", labels=("down",), reward=0.0)
    builder.add_transition("up", "mid", 0.2)
    builder.add_transition("mid", "up", 1.0)
    builder.add_transition("mid", "down", 0.5)
    builder.add_transition("down", "up", 2.0)
    return builder.build()


def codes(report):
    return set(report.codes())


# ----------------------------------------------------------------------
# diagnostics / report plumbing
# ----------------------------------------------------------------------

class TestReport:
    def test_clean_report(self):
        report = AnalysisReport([])
        assert report.clean and not report.has_errors
        assert report.summary() == "no diagnostics"
        assert report.exit_code() == 0
        assert report.exit_code(fail_on="warning") == 0

    def test_severity_ordering_and_exit_codes(self):
        report = AnalysisReport([
            Diagnostic("X001", Severity.INFO, "an info"),
            Diagnostic("X002", Severity.ERROR, "an error"),
            Diagnostic("X003", Severity.WARNING, "a warning"),
        ])
        assert [d.severity for d in report] == [
            Severity.ERROR, Severity.WARNING, Severity.INFO]
        assert report.exit_code() == 2
        assert report.exit_code(fail_on="warning") == 2
        only_warning = AnalysisReport(
            [Diagnostic("X003", Severity.WARNING, "a warning")])
        assert only_warning.exit_code() == 0
        assert only_warning.exit_code(fail_on="warning") == 1

    def test_render_and_json(self):
        diagnostic = Diagnostic("M999", Severity.WARNING, "message",
                                location="state 3", hint="fix it",
                                source="model")
        text = diagnostic.render()
        assert "warning[M999] message" in text
        assert "at: state 3" in text and "hint: fix it" in text
        report = AnalysisReport([diagnostic])
        payload = json.loads(report.to_json())
        assert payload["summary"] == {"errors": 0, "warnings": 1,
                                      "infos": 0}
        assert payload["diagnostics"][0]["code"] == "M999"

    def test_query_profile(self):
        profile = QueryProfile.from_formula(
            parse_formula("P>=0.5 [ a U[0,2][0,3] b ]"))
        assert profile.needs_joint
        assert profile.time_bound == 2.0 and profile.reward_bound == 3.0
        no_joint = QueryProfile.from_formula(
            parse_formula("P>=0.5 [ a U[0,2] b ]"))
        assert not no_joint.needs_joint


# ----------------------------------------------------------------------
# model passes
# ----------------------------------------------------------------------

class TestModelPasses:
    def test_clean_model_has_no_model_diagnostics(self):
        assert lint_model(build_clean_model()).clean

    def test_m001_unreachable_states(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=1.0)
        builder.add_state("b", reward=1.0)
        builder.add_state("orphan", reward=1.0)
        builder.add_transition("a", "b", 1.0)
        builder.add_transition("b", "a", 1.0)
        builder.add_transition("orphan", "a", 1.0)
        report = lint_model(builder.build())
        assert "M001" in codes(report)
        finding = next(d for d in report if d.code == "M001")
        assert "orphan" in finding.location

    def test_m002_absorbing_with_reward(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=1.0)
        builder.add_state("sink", reward=2.0)
        builder.add_transition("a", "sink", 1.0)
        report = lint_model(builder.build())
        assert "M002" in codes(report)

    def test_m002_clean_when_sink_reward_zero(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=1.0)
        builder.add_state("sink", reward=0.0)
        builder.add_transition("a", "sink", 1.0)
        assert "M002" not in codes(lint_model(builder.build()))

    def test_m003_all_zero_rewards(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=0.0)
        builder.add_state("b", reward=0.0)
        builder.add_transition("a", "b", 1.0)
        builder.add_transition("b", "a", 1.0)
        report = lint_model(builder.build())
        assert "M003" in codes(report)
        # every cycle is zero-reward then; M004 defers to M003
        assert "M004" not in codes(report)

    def test_m003_suppressed_by_impulses(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=0.0)
        builder.add_state("b", reward=0.0)
        builder.add_transition("a", "b", 1.0, impulse=1.0)
        builder.add_transition("b", "a", 1.0, impulse=1.0)
        report = lint_model(builder.build())
        assert "M003" not in codes(report)

    def test_m004_zero_reward_cycle(self):
        builder = ModelBuilder()
        builder.add_state("paid", reward=1.0)
        builder.add_state("free1", reward=0.0)
        builder.add_state("free2", reward=0.0)
        builder.add_transition("paid", "free1", 1.0)
        builder.add_transition("free1", "free2", 1.0)
        builder.add_transition("free2", "free1", 1.0)
        assert "M004" in codes(lint_model(builder.build()))

    def test_m004_clean_without_cycle(self):
        builder = ModelBuilder()
        builder.add_state("paid", reward=1.0)
        builder.add_state("free", reward=0.0)
        builder.add_transition("paid", "free", 1.0)
        builder.add_transition("free", "paid", 1.0)
        # the cycle passes through a rewarded state, so no finding
        assert "M004" not in codes(lint_model(builder.build()))

    def test_m004_impulse_transitions_do_accumulate(self):
        builder = ModelBuilder()
        builder.add_state("paid", reward=1.0)
        builder.add_state("free1", reward=0.0)
        builder.add_state("free2", reward=0.0)
        builder.add_transition("paid", "free1", 1.0)
        builder.add_transition("free1", "free2", 1.0, impulse=1.0)
        builder.add_transition("free2", "free1", 1.0, impulse=1.0)
        assert "M004" not in codes(lint_model(builder.build()))

    def test_m005_stiff_rates(self):
        builder = ModelBuilder()
        builder.add_state("slow", reward=1.0)
        builder.add_state("fast", reward=1.0)
        builder.add_transition("slow", "fast", 0.001)
        builder.add_transition("fast", "slow", 1000.0)
        assert "M005" in codes(lint_model(builder.build()))

    def test_m005_clean_for_mild_spread(self):
        assert "M005" not in codes(lint_model(build_clean_model()))

    def test_m006_self_loop(self):
        matrix = np.array([[0.5, 1.0], [1.0, 0.0]])
        model = MarkovRewardModel(matrix, rewards=[1.0, 1.0])
        report = lint_model(model)
        assert "M006" in codes(report)
        assert "M006" not in codes(lint_model(build_clean_model()))

    def test_m007_duplicate_tra_entries(self, tmp_path):
        base = tmp_path / "dup"
        (tmp_path / "dup.tra").write_text(
            "STATES 2\nTRANSITIONS 3\n1 2 0.5\n1 2 0.5\n2 1 1.0\n")
        from repro.ctmc import io as model_io
        model = model_io.load_mrm(str(base))
        report = lint(model=model, model_path=str(base))
        assert "M007" in codes(report)
        finding = next(d for d in report if d.code == "M007")
        assert "(1, 2)" in finding.location

    def test_m007_clean_file(self, tmp_path):
        base = tmp_path / "ok"
        (tmp_path / "ok.tra").write_text(
            "STATES 2\nTRANSITIONS 2\n1 2 0.5\n2 1 1.0\n")
        from repro.ctmc import io as model_io
        model = model_io.load_mrm(str(base))
        assert "M007" not in codes(lint(model=model,
                                        model_path=str(base)))

    def test_m008_uniformization_workload(self):
        builder = ModelBuilder()
        builder.add_state("a", labels=("a",), reward=1.0)
        builder.add_state("b", labels=("b",), reward=1.0)
        builder.add_transition("a", "b", 200.0)
        builder.add_transition("b", "a", 200.0)
        model = builder.build()
        report = lint(model=model,
                      formula="P>=0.5 [ a U[0,100] b ]")
        assert "M008" in codes(report)
        # without a time bound there is no workload to predict
        assert "M008" not in codes(lint_model(model))

    def test_m009_lumpable_model(self):
        from repro.models.workloads import crowd_mrm
        model = crowd_mrm(6, 5)  # replica-symmetric: 30 -> 6 blocks
        report = lint_model(model)
        assert "M009" in codes(report)
        finding = next(d for d in report if d.code == "M009")
        assert finding.severity.name == "INFO"
        assert "6 blocks" in finding.message
        assert 'lump="auto"' in finding.hint

    def test_m009_silent_on_unlumpable_and_impulse_models(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=0.0)
        builder.add_state("b", reward=1.0)
        builder.add_transition("a", "b", 1.0)
        builder.add_transition("b", "a", 2.0)
        assert "M009" not in codes(lint_model(builder.build()))
        impulse = ModelBuilder()
        for s in ("a", "b", "c"):
            impulse.add_state(s, reward=1.0)
        impulse.add_transition("a", "b", 1.0, impulse=1.0)
        impulse.add_transition("a", "c", 1.0, impulse=1.0)
        impulse.add_transition("b", "a", 1.0)
        impulse.add_transition("c", "a", 1.0)
        assert "M009" not in codes(lint_model(impulse.build()))


# ----------------------------------------------------------------------
# formula passes
# ----------------------------------------------------------------------

class TestFormulaPasses:
    def setup_method(self):
        self.model = build_clean_model()

    def test_clean_formula(self):
        report = lint_formula(
            "P>=0.5 [ up U[0,2][0,1] down ]", model=self.model)
        assert report.clean

    def test_f001_reward_interval_not_from_zero(self):
        report = lint_formula("P>=0.5 [ up U[0,2][1,3] down ]",
                              model=self.model)
        assert "F001" in codes(report)
        assert report.has_errors

    def test_f001_time_lower_with_reward_bound(self):
        report = lint_formula("P>=0.5 [ up U[1,2][0,1] down ]",
                              model=self.model)
        assert "F001" in codes(report)
        # a pure time interval [t1, t2] without reward bound is fine
        clean = lint_formula("P>=0.5 [ up U[1,2] down ]",
                             model=self.model)
        assert "F001" not in codes(clean)

    def test_f002_trivially_true_threshold(self):
        report = lint_formula("P>=0 [ up U[0,1] down ]")
        assert "F002" in codes(report)
        assert "F002" not in codes(
            lint_formula("P>=0.5 [ up U[0,1] down ]"))

    def test_f003_trivially_false_threshold(self):
        report = lint_formula("P>1 [ up U[0,1] down ]")
        assert "F003" in codes(report)
        assert "F003" not in codes(
            lint_formula("P>0.99 [ up U[0,1] down ]"))

    def test_f004_unsatisfiable_goal(self):
        report = lint_formula("P>=0.5 [ up U[0,1] (up & down) ]",
                              model=self.model)
        assert "F004" in codes(report)

    def test_f004_suppressed_when_f005_explains_it(self):
        report = lint_formula("P>=0.5 [ up U[0,1] ghost ]",
                              model=self.model)
        assert "F005" in codes(report)
        assert "F004" not in codes(report)

    def test_f005_unknown_proposition(self):
        report = lint_formula("P>=0.5 [ ghost U[0,1] down ]",
                              model=self.model)
        assert "F005" in codes(report)
        finding = next(d for d in report if d.code == "F005")
        assert "down" in finding.hint  # lists known propositions
        assert "F005" not in codes(
            lint_formula("P>=0.5 [ up U[0,1] down ]",
                         model=self.model))

    def test_f006_safe_set_covers_state_space(self):
        report = lint_formula(
            "P>=0.5 [ (up | mid | down) U[0,1] down ]",
            model=self.model)
        assert "F006" in codes(report)
        # 'true U ...' is how F desugars; not worth a finding
        assert "F006" not in codes(
            lint_formula("P>=0.5 [ F[0,1] down ]", model=self.model))

    def test_f007_conflicting_probability_bounds(self):
        report = lint_formula(
            "P>0.9 [ up U[0,1] down ] & P<0.5 [ up U[0,1] down ]")
        assert "F007" in codes(report)

    def test_f007_clean_for_overlapping_bounds(self):
        report = lint_formula(
            "P>0.2 [ up U[0,1] down ] & P<0.5 [ up U[0,1] down ]")
        assert "F007" not in codes(report)

    def test_f008_reward_bound_never_binds(self):
        # max_reward = 2, t = 1 -> at most 2 accumulates; r = 5 is inert
        report = lint_formula("P>=0.5 [ up U[0,1][0,5] down ]",
                              model=self.model)
        assert "F008" in codes(report)
        assert "F008" not in codes(
            lint_formula("P>=0.5 [ up U[0,1][0,1] down ]",
                         model=self.model))

    def test_f009_point_time_interval(self):
        report = lint_formula("P>=0.5 [ up U[0,0] down ]")
        assert "F009" in codes(report)
        assert "F009" not in codes(
            lint_formula("P>=0.5 [ up U[0,1] down ]"))


# ----------------------------------------------------------------------
# engine-compatibility passes
# ----------------------------------------------------------------------

def impulse_model():
    builder = ModelBuilder()
    builder.add_state("up", labels=("up",), reward=2.0)
    builder.add_state("mid", labels=("mid",), reward=1.0)
    builder.add_state("down", labels=("down",), reward=0.0)
    builder.add_transition("up", "mid", 0.2, impulse=1.0)
    builder.add_transition("mid", "up", 1.0)
    builder.add_transition("down", "up", 2.0)
    builder.add_transition("mid", "down", 0.5)
    return builder.build()


JOINT_QUERY = QueryProfile(time_bound=1.0, reward_bound=2.0,
                           needs_joint=True)


class TestEnginePasses:
    def test_clean_engine_verdicts(self):
        model = build_clean_model()
        for engine in ("sericola", "erlang", "discretization"):
            assert supports(engine, model, JOINT_QUERY), engine
            assert engine_compatibility(engine, model,
                                        JOINT_QUERY) == []

    def test_e001_impulses_versus_sericola(self):
        findings = engine_compatibility("sericola", impulse_model(),
                                        JOINT_QUERY)
        assert [d.code for d in findings] == ["E001"]
        assert findings[0].severity is Severity.ERROR
        assert not supports("sericola", impulse_model(), JOINT_QUERY)

    def test_e001_demoted_without_joint_query(self):
        findings = engine_compatibility("sericola", impulse_model())
        assert [d.code for d in findings] == ["E001"]
        assert findings[0].severity is Severity.WARNING
        assert supports("sericola", impulse_model())

    def test_e001_clean_for_impulse_capable_engines(self):
        for engine in (ErlangEngine(phases=16),
                       DiscretizationEngine(step=1.0 / 64)):
            assert not any(
                d.code == "E001" for d in engine_compatibility(
                    engine, impulse_model(), JOINT_QUERY))

    def test_e002_erlang_state_explosion(self):
        engine = ErlangEngine(phases=50_000)
        findings = engine_compatibility(engine, build_clean_model(),
                                        JOINT_QUERY)
        assert any(d.code == "E002" for d in findings)
        small = ErlangEngine(phases=64)
        assert not any(d.code == "E002" for d in engine_compatibility(
            small, build_clean_model(), JOINT_QUERY))

    def test_e003_discretization_grid_memory(self):
        engine = DiscretizationEngine(step=1.0 / 64)
        query = QueryProfile(time_bound=64.0, reward_bound=1e9,
                             needs_joint=True)
        findings = engine_compatibility(engine, build_clean_model(),
                                        query)
        assert any(d.code == "E003" for d in findings)
        assert not any(d.code == "E003" for d in engine_compatibility(
            engine, build_clean_model(), JOINT_QUERY))

    def test_e004_step_too_coarse(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=1.0)
        builder.add_state("b", reward=1.0)
        builder.add_transition("a", "b", 100.0)
        builder.add_transition("b", "a", 100.0)
        model = builder.build()
        engine = DiscretizationEngine(step=1.0 / 64)
        findings = engine_compatibility(engine, model, JOINT_QUERY)
        e004 = [d for d in findings if d.code == "E004"]
        assert e004 and e004[0].severity is Severity.ERROR
        fine = DiscretizationEngine(step=1.0 / 256)
        assert not any(d.code == "E004" for d in engine_compatibility(
            fine, model, JOINT_QUERY))

    def test_e005_non_integer_rewards(self):
        model = build_clean_model(reward_up=2.5)
        engine = DiscretizationEngine(step=1.0 / 64)
        findings = engine_compatibility(engine, model, JOINT_QUERY)
        assert any(d.code == "E005" for d in findings)
        assert not any(d.code == "E005" for d in engine_compatibility(
            engine, build_clean_model(), JOINT_QUERY))

    def test_e005_non_integer_impulses(self):
        builder = ModelBuilder()
        builder.add_state("a", reward=1.0)
        builder.add_state("b", reward=0.0)
        builder.add_transition("a", "b", 1.0, impulse=0.5)
        builder.add_transition("b", "a", 1.0)
        engine = DiscretizationEngine(step=1.0 / 64)
        findings = engine_compatibility(engine, builder.build(),
                                        JOINT_QUERY)
        assert any(d.code == "E005" for d in findings)

    def test_e006_off_grid_time_bound(self):
        engine = DiscretizationEngine(step=1.0 / 64)
        query = QueryProfile(time_bound=0.7, reward_bound=1.0,
                             needs_joint=True)
        findings = engine_compatibility(engine, build_clean_model(),
                                        query)
        assert any(d.code == "E006" for d in findings)
        aligned = QueryProfile(time_bound=0.75, reward_bound=1.0,
                               needs_joint=True)
        assert not any(d.code == "E006" for d in engine_compatibility(
            engine, build_clean_model(), aligned))

    def test_e007_many_reward_levels(self):
        builder = ModelBuilder()
        n = 40
        for i in range(n):
            builder.add_state(f"s{i}", reward=float(i))
        for i in range(n):
            builder.add_transition(f"s{i}", f"s{(i + 1) % n}", 1.0)
        findings = engine_compatibility("sericola", builder.build(),
                                        JOINT_QUERY)
        assert any(d.code == "E007" for d in findings)
        assert not any(d.code == "E007" for d in engine_compatibility(
            "sericola", build_clean_model(), JOINT_QUERY))

    def test_capabilities_declared(self):
        assert not SericolaEngine.capabilities().impulse_rewards
        assert ErlangEngine.capabilities().impulse_rewards
        disc = DiscretizationEngine.capabilities()
        assert disc.natural_rewards_only and disc.grid_aligned_time


# ----------------------------------------------------------------------
# SRN passes
# ----------------------------------------------------------------------

def clean_net():
    net = StochasticRewardNet()
    net.add_place("idle", tokens=1)
    net.add_place("busy")
    net.add_timed_transition("work", rate=2.0,
                             inputs=["idle"], outputs=["busy"])
    net.add_timed_transition("rest", rate=1.0,
                             inputs=["busy"], outputs=["idle"])
    net.set_reward(lambda m: 1.0 if m["busy"] else 0.0)
    return net


class TestSrnPasses:
    def test_clean_net(self):
        assert lint_srn(clean_net()).clean

    def test_s001_dead_transition_and_s002_never_marked(self):
        net = clean_net()
        net.add_place("spare")
        net.add_timed_transition("never", rate=1.0,
                                 inputs=["spare"], outputs=["idle"])
        report = lint_srn(net)
        assert "S001" in codes(report)
        assert "S002" in codes(report)
        s001 = next(d for d in report if d.code == "S001")
        assert "never" in s001.location
        s002 = next(d for d in report if d.code == "S002")
        assert "spare" in s002.location

    def test_s003_structural_unboundedness_and_s004_abort(self):
        net = StochasticRewardNet()
        net.add_place("pool", tokens=1)
        net.add_timed_transition("spawn", rate=1.0,
                                 outputs=["pool"])
        net.set_reward(lambda m: 0.0)
        report = lint_srn(net)
        assert "S003" in codes(report)
        assert "S004" in codes(report)

    def test_s003_clean_with_inhibitor(self):
        net = StochasticRewardNet()
        net.add_place("pool", tokens=0)
        net.add_timed_transition("spawn", rate=1.0, outputs=["pool"],
                                 inhibitors=[("pool", 3)])
        net.add_timed_transition("drain", rate=1.0, inputs=["pool"])
        net.set_reward(lambda m: float(m["pool"]))
        report = lint_srn(net)
        assert "S003" not in codes(report)
        assert "S004" not in codes(report)


# ----------------------------------------------------------------------
# full-pipeline properties
# ----------------------------------------------------------------------

class TestLintPipeline:
    def test_engine_families_combine(self):
        report = lint(model=impulse_model(),
                      formula="P>=0.5 [ (up | mid) U[0,1][0,1] down ]",
                      engine=("sericola", "erlang", "discretization"))
        assert "E001" in codes(report)
        assert report.has_errors

    def test_engine_instances_accepted(self):
        report = lint(model=build_clean_model(),
                      engine=DiscretizationEngine(step=1.0 / 64))
        assert report.clean

    @given(n=st.integers(min_value=2, max_value=5),
           rate=st.floats(min_value=0.1, max_value=10.0),
           t=st.sampled_from((0.5, 1.0, 2.0)),
           bound=st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=25, deadline=None)
    def test_clean_inputs_yield_zero_diagnostics(self, n, rate, t,
                                                 bound):
        """A well-formed ring model with positive integer rewards and a
        sensible P3 formula produces no findings at all, for any
        engine."""
        builder = ModelBuilder()
        for i in range(n):
            builder.add_state(f"s{i}", labels=(f"s{i}",),
                              reward=float(1 + i % 2))
        for i in range(n):
            builder.add_transition(f"s{i}", f"s{(i + 1) % n}", rate)
        model = builder.build()
        max_reward = 2.0
        r = max_reward * t / 2.0
        formula = f"P>={bound:g} [ s0 U[0,{t:g}][0,{r:g}] s1 ]"
        report = lint(model=model, formula=formula,
                      engine=("sericola", "erlang", "discretization"))
        assert report.clean, report.to_text()
