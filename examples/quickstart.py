#!/usr/bin/env python
"""Quickstart: build a Markov reward model and check CSRL formulas.

A tiny dependable-system model: a server that is up (earning 2 units
of useful work per hour), degraded (earning 1), or down (earning
nothing).  We ask questions that exercise all four until variants of
the paper (P0-P3) plus the NEXT and steady-state operators.

Run with:  python examples/quickstart.py
"""

from repro import ModelBuilder, ModelChecker
from repro.algorithms import (DiscretizationEngine, ErlangEngine,
                              SericolaEngine)


def build_server_model():
    """Three-state degradable server with repair."""
    builder = ModelBuilder()
    builder.add_state("up", labels=("operational",), reward=2.0)
    builder.add_state("degraded", labels=("operational",), reward=1.0)
    builder.add_state("down", labels=("failed",), reward=0.0)
    builder.add_transition("up", "degraded", 0.2)     # partial failure
    builder.add_transition("degraded", "down", 0.5)   # full failure
    builder.add_transition("degraded", "up", 1.0)     # quick fix
    builder.add_transition("down", "up", 0.25)        # full repair
    return builder.build(initial_state="up")


def main():
    model = build_server_model()
    print(f"model: {model}")
    checker = ModelChecker(model)

    queries = [
        # P0: unbounded until -- will the server eventually fail?
        "P>=1 [ F failed ]",
        # P1: time-bounded -- failure within 10 hours?
        "P<0.5 [ F[0,10] failed ]",
        # P2: reward-bounded -- failure before 5 units of work done?
        "P<0.2 [ operational U[0,inf][0,5] failed ]",
        # P3: both bounds -- failure within 10 hours AND below 5 units
        # of accumulated work?
        "P<0.2 [ operational U[0,10][0,5] failed ]",
        # NEXT with bounds: first transition into 'degraded' within
        # one hour, having produced at most 1.5 units.
        "P>0.1 [ X[0,1][0,1.5] degraded ]",
        # Steady state: long-run availability above 80 percent?
        "S>0.8 [ operational ]",
    ]
    print("\nsatisfaction per query (initial state 'up'):")
    for query in queries:
        result = checker.check(query)
        value = ("" if result.probabilities is None
                 else f"  value={result.probability_of(0):.6f}")
        verdict = "holds" if result.holds_initially else "fails"
        print(f"  {query:55s} -> {verdict}{value}")

    # The same P3 probability with each of the paper's three engines.
    print("\nP(operational U[0,10][0,5] failed) by engine:")
    phi = checker.satisfaction_set("operational")
    psi = checker.satisfaction_set("failed")
    from repro.mc.until import time_reward_bounded_until
    from repro.logic.intervals import Interval
    for engine in (SericolaEngine(epsilon=1e-10),
                   ErlangEngine(phases=256),
                   DiscretizationEngine(step=1.0 / 128)):
        probs = time_reward_bounded_until(
            model, set(phi), set(psi), Interval.upto(10.0),
            Interval.upto(5.0), engine)
        print(f"  {engine!r:45s} {probs[0]:.8f}")


if __name__ == "__main__":
    main()
