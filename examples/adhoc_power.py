#!/usr/bin/env python
"""The paper's case study: an ad hoc network station under power
constraints (Section 5).

Builds the stochastic reward net of Fig. 2 with the rates/rewards of
Table 1, generates the 9-state Markov reward model, checks the three
CSRL properties Q1-Q3, and regenerates (small versions of) the
engine-comparison experiments of Tables 2-4.

Run with:  python examples/adhoc_power.py [--describe] [--full]
"""

import argparse
import time

import numpy as np

from repro.algorithms import (DiscretizationEngine, ErlangEngine,
                              SericolaEngine)
from repro.logic.parser import parse_formula
from repro.mc import ModelChecker
from repro.models import adhoc


def describe():
    net = adhoc.build_adhoc_srn()
    print("=== stochastic reward net (Fig. 2) ===")
    print(net.describe())
    model = adhoc.adhoc_model()
    print("\n=== underlying Markov reward model ===")
    print(model)
    for s in range(model.num_states):
        print(f"  {s}: {model.name_of(s):35s} "
              f"reward {model.reward(s):6.1f} mA")
    reduction = adhoc.reduced_q3_model()
    print("\n=== Theorem-1 reduction for Q3 ===")
    print(f"{reduction.model} "
          f"(uniformisation rate {reduction.model.max_exit_rate}/h)")
    for s in range(reduction.model.num_states):
        print(f"  {s}: {reduction.model.name_of(s):25s} "
              f"reward {reduction.model.reward(s):6.1f} mA")


def check_properties():
    model = adhoc.adhoc_model()
    checker = ModelChecker(model, epsilon=1e-9)
    initial = int(np.argmax(model.initial_distribution))
    print(f"\n=== properties of Section 5.3 "
          f"(from {model.name_of(initial)}) ===")
    for name, formula in (("Q1", adhoc.Q1), ("Q2", adhoc.Q2),
                          ("Q3", adhoc.Q3)):
        result = checker.check(formula)
        verdict = "holds" if result.holds_initially else "does not hold"
        print(f"{name}: {formula}")
        print(f"    probability {result.probability_of(initial):.8f} "
              f"-> {verdict}")


def engine_tables(full: bool):
    reduction = adhoc.reduced_q3_model()
    model = reduction.model
    goal = reduction.goal_state
    t, r = adhoc.Q3_TIME_BOUND, adhoc.Q3_REWARD_BOUND
    initial = int(np.argmax(model.initial_distribution))

    print("\n=== Table 2: occupation-time algorithm (Sericola) ===")
    print(f"{'epsilon':>10s} {'N':>5s} {'value':>12s} {'time':>9s}"
          f"   (paper value)")
    rows = adhoc.TABLE2_OCCUPATION_TIME if full else \
        adhoc.TABLE2_OCCUPATION_TIME[::2]
    for epsilon, _n, paper_value in rows:
        engine = SericolaEngine(epsilon=epsilon)
        start = time.perf_counter()
        value = engine.joint_probability_vector(model, t, r,
                                                [goal])[initial]
        elapsed = time.perf_counter() - start
        depth = engine.last_diagnostics.truncation_steps
        print(f"{epsilon:>10.0e} {depth:>5d} {value:>12.8f} "
              f"{elapsed:>8.3f}s   ({paper_value:.8f})")

    print("\n=== Table 3: pseudo-Erlang approximation ===")
    print(f"{'k':>6s} {'value':>12s} {'rel.err':>8s} {'time':>9s}"
          f"   (paper value, rel.err)")
    exact = SericolaEngine(epsilon=1e-10).joint_probability_vector(
        model, t, r, [goal])[initial]
    rows = adhoc.TABLE3_PSEUDO_ERLANG if full else \
        adhoc.TABLE3_PSEUDO_ERLANG[:8:2] + adhoc.TABLE3_PSEUDO_ERLANG[8:9]
    for phases, paper_value, paper_error in rows:
        engine = ErlangEngine(phases=phases)
        start = time.perf_counter()
        value = engine.joint_probability_vector(model, t, r,
                                                [goal])[initial]
        elapsed = time.perf_counter() - start
        error = 100.0 * (exact - value) / exact
        print(f"{phases:>6d} {value:>12.8f} {error:>7.2f}% "
              f"{elapsed:>8.3f}s   ({paper_value:.8f}, "
              f"{paper_error:.2f}%)")

    print("\n=== Table 4: Tijms-Veldman discretisation ===")
    print(f"{'d':>8s} {'value':>12s} {'rel.err':>8s} {'time':>9s}"
          f"   (paper value, rel.err)")
    indicator = np.zeros(model.num_states)
    indicator[goal] = 1.0
    rows = adhoc.TABLE4_DISCRETIZATION if full else \
        adhoc.TABLE4_DISCRETIZATION[:2]
    for step, paper_value, paper_error in rows:
        engine = DiscretizationEngine(step=step)
        start = time.perf_counter()
        value = engine.joint_probability_from(model, t, r, indicator,
                                              initial)
        elapsed = time.perf_counter() - start
        error = 100.0 * abs(value - exact) / exact
        print(f"   1/{int(round(1 / step)):<4d} {value:>12.8f} "
              f"{error:>7.2f}% {elapsed:>8.3f}s   "
              f"({paper_value:.8f}, {paper_error:.2f}%)")

    print(f"\nconverged value {exact:.8f}; the paper reports "
          f"{adhoc.Q3_REFERENCE_VALUE:.8f} -- see EXPERIMENTS.md for "
          f"the model-reconstruction tolerance.")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--describe", action="store_true",
                        help="print the SRN and MRM structure only")
    parser.add_argument("--full", action="store_true",
                        help="run every row of Tables 2-4 (slower)")
    args = parser.parse_args()
    if args.describe:
        describe()
        return
    describe()
    check_properties()
    engine_tables(full=args.full)


if __name__ == "__main__":
    main()
