#!/usr/bin/env python
"""Visualising the two-dimensional process (X_t, Y_t) of Fig. 1.

The paper reduces CSRL model checking to a stochastic process with a
discrete CTMC component and a continuously growing accumulated-reward
component, with an absorbing barrier at the reward bound r.  This
example simulates paths of the case-study model and renders them in
ASCII: time flows left to right, the vertical axis is accumulated
reward, the letter marks the current state, and paths stop at the
barrier (reward bound) or the horizon (time bound).

Run with:  python examples/two_dimensional_process.py [paths]
"""

import sys

import numpy as np

from repro.models import adhoc
from repro.sim import PathSimulator

WIDTH = 72      # time resolution (columns)
HEIGHT = 24     # reward resolution (rows)


def render_path(model, path, t_bound, r_bound):
    """One path as an ASCII picture of the (time, reward) plane."""
    grid = [[" "] * (WIDTH + 1) for _ in range(HEIGHT + 1)]
    letters = {}
    for s in range(model.num_states):
        name = model.name_of(s)
        letters[s] = ("D" if name == "doze"
                      else "".join(w[0] for w in name.split("+"))[:1]
                      .upper())

    crossed = None
    for column in range(WIDTH + 1):
        instant = t_bound * column / WIDTH
        if instant > path.horizon:
            break
        reward = path.reward_at(instant, model.rewards)
        if reward > r_bound:
            crossed = column
            break
        row = HEIGHT - int(round(reward / r_bound * HEIGHT))
        state = path.state_at(instant)
        grid[row][column] = letters.get(state, "?")

    lines = []
    barrier = "=" * (WIDTH + 1) + "  <- absorbing barrier (r = %g)" \
        % r_bound
    lines.append(barrier)
    for row_index, row in enumerate(grid):
        reward_label = (1.0 - row_index / HEIGHT) * r_bound
        lines.append("".join(row) + f"  {reward_label:8.1f}")
    lines.append("-" * (WIDTH + 1) + f"  t in [0, {t_bound:g}]")
    if crossed is not None:
        lines.insert(1, " " * crossed + "^ crossed the barrier here")
    return "\n".join(lines)


def main():
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    model = adhoc.adhoc_model()
    t_bound, r_bound = 8.0, 600.0

    print(__doc__)
    print(f"states: "
          + ", ".join(f"{model.name_of(s)}" for s in range(4)) + ", ...")
    simulator = PathSimulator(model, seed=7)
    crossed = 0
    for index in range(count):
        path = simulator.sample_path(t_bound)
        print(f"\n--- path {index + 1} "
              f"(final reward {path.final_reward:.1f} mAh) ---")
        print(render_path(model, path, t_bound, r_bound))
        if path.final_reward > r_bound:
            crossed += 1

    # Estimate the barrier-crossing probability and compare with the
    # numerical value Pr{Y_t > r} = 1 - Pr{Y_t <= r}.
    from repro.mc.measures import performability_distribution
    numeric = 1.0 - performability_distribution(model, t_bound, r_bound)
    sample = sum(
        simulator.sample_path(t_bound).final_reward > r_bound
        for _ in range(4000)) / 4000
    print(f"\nPr{{Y_{t_bound:g} > {r_bound:g}}}: "
          f"numeric {numeric:.4f}, simulated {sample:.4f}")


if __name__ == "__main__":
    main()
