#!/usr/bin/env python
"""Meyer's degradable multiprocessor: the classic performability model.

CSRL subsumes Meyer's performability distribution (the paper's
Section 1): the accumulated reward Y_t of an MRM whose reward rate is
the momentary processing capacity is exactly Meyer's "performability"
variable.  This example

* builds an n-processor degradable system with repair,
* computes the performability distribution Pr{Y_t <= r} over a grid
  of r with the occupation-time engine (printing an ASCII curve),
* cross-checks one point against the pseudo-Erlang engine and a
  Monte-Carlo estimate,
* and asks CSRL questions that mix dependability and performance.

Run with:  python examples/degradable_multiprocessor.py
"""

import numpy as np

from repro.algorithms import ErlangEngine
from repro.mc import ModelChecker, measures
from repro.models.workloads import degradable_multiprocessor
from repro.sim import estimate_accumulated_reward_cdf

PROCESSORS = 4
HORIZON = 10.0  # hours


def ascii_curve(points, width=52):
    """Render (x, y) points, y in [0,1], as a small ASCII plot."""
    lines = []
    for x, y in points:
        bar = "#" * int(round(y * width))
        lines.append(f"  r={x:7.2f} |{bar:<{width}s}| {y:.4f}")
    return "\n".join(lines)


def main():
    model = degradable_multiprocessor(PROCESSORS, failure_rate=0.2,
                                      repair_rate=0.5)
    print(f"model: {model} ({PROCESSORS} processors, reward = "
          f"operational capacity)")

    # --- Meyer's performability distribution ------------------------
    print(f"\nPr{{Y_{HORIZON:g} <= r}} -- accumulated useful work by "
          f"t = {HORIZON:g} h:")
    peak = PROCESSORS * HORIZON
    grid = np.linspace(0.1 * peak, peak, 10)
    curve = [(r, measures.performability_distribution(model, HORIZON, r))
             for r in grid]
    print(ascii_curve(curve))

    expected = measures.expected_accumulated_reward(model, HORIZON)
    print(f"\nE[Y_{HORIZON:g}] = {expected:.4f} "
          f"(out of an ideal {peak:g})")
    print(f"long-run capacity: "
          f"{measures.long_run_reward_rate(model)[PROCESSORS]:.4f} "
          f"processors")

    # --- cross-validation at one point ------------------------------
    r_check = 0.75 * peak
    sericola = measures.performability_distribution(model, HORIZON,
                                                    r_check)
    erlang = measures.performability_distribution(
        model, HORIZON, r_check, engine=ErlangEngine(phases=512))
    simulated = estimate_accumulated_reward_cdf(
        model, HORIZON, r_check, samples=20_000, seed=1)
    print(f"\ncross-check at r = {r_check:g}:")
    print(f"  occupation-time engine  {sericola:.6f}")
    print(f"  pseudo-Erlang (k=512)   {erlang:.6f}")
    print(f"  simulation              {simulated}")

    # --- CSRL questions ----------------------------------------------
    checker = ModelChecker(model)
    queries = [
        # Does the system, with probability > 0.9, stay off the 'down'
        # state for 10 hours while producing at least... note: CSRL
        # reward bounds are upper bounds, so we ask the dual question:
        # reaching 'down' within 10 h with *less* than half the ideal
        # work done is unlikely.
        f"P<0.25 [ operational U[0,{HORIZON:g}][0,{peak / 2:g}] down ]",
        # A degraded state is entered quickly with high probability.
        "P>0.5 [ F[0,2] degraded ]",
        # Long-run: at least three quarters of the time some capacity.
        "S>0.75 [ operational ]",
    ]
    print("\nCSRL queries (from the fully-operational state):")
    initial = PROCESSORS
    for query in queries:
        result = checker.check(query)
        verdict = "holds" if initial in result.states else "fails"
        value = ("" if result.probabilities is None else
                 f"  value={result.probability_of(initial):.6f}")
        print(f"  {query:58s} -> {verdict}{value}")


if __name__ == "__main__":
    main()
