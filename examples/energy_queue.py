#!/usr/bin/env python
"""Energy- and repair-cost analysis of a queue with breakdowns.

Shows the extensions beyond the paper working together:

* an SRN with inhibitor arcs and **impulse rewards** (per-repair cost)
  generating an MRM with transition rewards;
* the discretisation engine checking a time+cost-bounded until on it
  (the occupation-time engine refuses impulse models, by design);
* the expected-reward operator ``R`` (instantaneous / cumulative /
  reachability / long-run) on the same model;
* cross-validation by simulation.

Run with:  python examples/energy_queue.py
"""

import numpy as np

from repro.algorithms import DiscretizationEngine
from repro.ctmc.export import model_to_dot
from repro.mc import ModelChecker
from repro.models.queueing import mm1_breakdown_model, mm1_breakdown_srn



def main():
    model = mm1_breakdown_model(capacity=4, arrival_rate=1.0,
                                service_rate=2.0, failure_rate=0.1,
                                repair_rate=0.5, busy_power=3.0,
                                repair_cost=10.0)
    initial = int(np.argmax(model.initial_distribution))
    print(f"model: {model} "
          f"(impulse rewards: {model.has_impulse_rewards})")
    print(f"initial state: {model.name_of(initial)}")

    checker = ModelChecker(model,
                           engine=DiscretizationEngine(step=1.0 / 64))

    # ---- expected-reward operator ------------------------------------
    print("\nexpected-cost queries (R operator):")
    for query in ("R<=20 [ C<=10 ]",          # total cost in 10 h
                  "R<=3 [ I=10 ]",            # power draw at t=10
                  "R<=2 [ S ]"):              # long-run cost rate
        result = checker.check(query)
        verdict = "holds" if initial in result.states else "fails"
        print(f"  {query:22s} value={result.probability_of(initial):8.4f}"
              f"  -> {verdict}")
    # Note: C<=t sums only *rate* rewards; repair impulses enter the
    # path-based measures below.

    # ---- time+cost-bounded until (P3 with impulses) -------------------
    print("\ncost-bounded reachability (paper's P3, with impulses):")
    formula = "P>0.5 [ true U[0,10][0,25] full ]"
    result = checker.check(formula)
    value = result.probability_of(initial)
    print(f"  {formula}")
    print(f"  probability {value:.6f} "
          f"({'holds' if initial in result.states else 'fails'})")

    from repro.logic.intervals import Interval
    from repro.sim import estimate_until_probability
    estimate = estimate_until_probability(
        model, set(range(model.num_states)),
        set(model.states_with("full")),
        Interval.upto(10.0), Interval.upto(25.0),
        samples=20_000, seed=1, initial_state=initial)
    print(f"  (simulation cross-check: {estimate})")

    # ---- DOT export ----------------------------------------------------
    dot = model_to_dot(model, graph_name="queue")
    print(f"\nDOT export: {len(dot.splitlines())} lines "
          f"(render with `dot -Tpdf`); first transition line:")
    print("  " + next(line for line in dot.splitlines()
                      if "->" in line).strip())

    net = mm1_breakdown_srn(capacity=4, failure_rate=0.1)
    print(f"\nSRN structure:\n{net.describe()}")


if __name__ == "__main__":
    main()
