#!/usr/bin/env python
"""Dependability analysis of a workstation cluster with CSRL.

A cluster of N workstations with a single repair unit delivers a
service capacity equal to the number of working stations (the reward
rate).  CSRL expresses the dependability measures of the paper's
motivation -- including the new time+reward-bounded kind: "does the
cluster, within the first day, deliver at least some amount of work
without a total outage?".  (Reward bounds in CSRL are upper bounds,
so the work guarantee is expressed through its complement.)

Run with:  python examples/workstation_cluster.py
"""

import numpy as np

from repro.mc import ModelChecker, measures
from repro.models.workloads import workstation_cluster

STATIONS = 8
DAY = 24.0


def main():
    model = workstation_cluster(STATIONS, failure_rate=0.05,
                                repair_rate=0.5)
    checker = ModelChecker(model)
    initial = STATIONS
    print(f"cluster: {STATIONS} stations, reward = working stations")

    # ----- classic CSL dependability queries --------------------------
    print("\nclassic dependability queries:")
    queries = [
        # long-run availability of the 'available' service level
        "S>0.95 [ available ]",
        # probability of a total outage within a day
        "P<0.001 [ F[0,24] outage ]",
        # once degraded below the threshold, quick recovery?
        "P>0.6 [ !available U[0,4] available ]",
    ]
    for query in queries:
        result = checker.check(query)
        verdict = "holds" if initial in result.states else "fails"
        value = ("" if result.probabilities is None else
                 f"  value={result.probability_of(initial):.6f}")
        print(f"  {query:48s} -> {verdict}{value}")

    # ----- the paper's new measure kind -------------------------------
    # P3-type: reach the outage state within a day AND with little
    # accumulated service delivered -- the "catastrophic early failure"
    # probability.  Low work bound makes this doubly rare.
    little_work = 0.1 * STATIONS * DAY
    p3 = f"P<1e-6 [ available U[0,{DAY:g}][0,{little_work:g}] outage ]"
    result = checker.check(p3)
    print("\nnew (P3-type) measure -- catastrophic early failure:")
    print(f"  {p3}")
    print(f"  probability = {result.probability_of(initial):.3e} "
          f"({'holds' if initial in result.states else 'fails'})")

    # ----- performability summary --------------------------------------
    print("\nperformability summary over one day:")
    expected = measures.expected_accumulated_reward(model, DAY)
    ideal = STATIONS * DAY
    print(f"  E[delivered work] = {expected:8.2f} station-hours "
          f"({100 * expected / ideal:.1f}% of ideal {ideal:g})")
    for fraction in (0.90, 0.95, 0.99):
        r = fraction * ideal
        value = measures.performability_distribution(model, DAY, r)
        print(f"  Pr{{work <= {100 * fraction:.0f}% of ideal}} "
              f"= {value:.6f}")

    # Capacity-availability curve: long-run fraction of time at least
    # k stations are up.
    print("\nlong-run Pr{at least k stations working}:")
    from repro.numerics.linear import stationary_distribution
    pi = stationary_distribution(model)
    tail = np.cumsum(pi[::-1])[::-1]
    for k in range(STATIONS, max(-1, STATIONS - 5), -1):
        print(f"  k >= {k}: {tail[k]:.6f}")


if __name__ == "__main__":
    main()
