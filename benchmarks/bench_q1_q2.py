"""Properties Q1 and Q2 of the case study (Section 5.3).

The paper states these are checked with "well investigated" procedures
and reports no numbers; we regenerate the checks -- Q2 by the P1
procedure (transient analysis) and Q1 by the P2 procedure (duality +
transient analysis) -- and record values and timings.
"""

import numpy as np

from repro.logic.intervals import Interval
from repro.mc import until
from repro.models import adhoc

from conftest import report


def _sat_sets(model):
    phi = set(range(model.num_states))  # F = true U
    psi = set(model.states_with("call_incoming"))
    return phi, psi


def bench_q2_time_bounded(benchmark):
    """Q2: P>0.5 ( F^{<=24h} call_incoming ), the P1 procedure."""
    model = adhoc.adhoc_model()
    phi, psi = _sat_sets(model)

    def run():
        return until.time_bounded_until(model, phi, psi,
                                        Interval.upto(24.0))

    probabilities = benchmark(run)
    value = float(probabilities[0])
    assert value > 0.5, "Q2 holds in the initial state"
    report(benchmark, value=round(value, 8), bound=">0.5",
           verdict="holds")


def bench_q1_reward_bounded(benchmark):
    """Q1: P>0.5 ( F_{<=600mAh} call_incoming ), the P2 procedure
    (duality transformation + transient analysis on the dual)."""
    model = adhoc.adhoc_model()
    phi, psi = _sat_sets(model)

    def run():
        return until.reward_bounded_until(model, phi, psi,
                                          Interval.upto(600.0))

    probabilities = benchmark(run)
    value = float(probabilities[0])
    assert value > 0.5, "Q1 holds in the initial state"
    report(benchmark, value=round(value, 8), bound=">0.5",
           verdict="holds")


def bench_q3_full_checker(benchmark):
    """Q3 end to end through the recursive model checker (parsing,
    satisfaction sets, Theorem-1 reduction, Sericola engine)."""
    from repro.mc import ModelChecker
    model = adhoc.adhoc_model()

    def run():
        checker = ModelChecker(model, epsilon=1e-8)
        return checker.check(adhoc.Q3)

    result = benchmark(run)
    initial = int(np.argmax(model.initial_distribution))
    value = result.probability_of(initial)
    assert not result.holds_initially, \
        "Q3 is just below the 0.5 bound (the paper's point)"
    report(benchmark, value=round(float(value), 8),
           paper_value=adhoc.Q3_REFERENCE_VALUE, verdict="fails (<0.5)")
