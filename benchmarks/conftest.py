"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table (or one observation) of the
paper's evaluation section on the case-study model.  Timings are
collected by pytest-benchmark; the computed values and their paper
counterparts are attached to each benchmark's ``extra_info`` and
printed, so a run with

    pytest benchmarks/ --benchmark-only -s

reproduces the tables side by side with the paper's numbers.
"""

import numpy as np
import pytest

from repro.models import adhoc


@pytest.fixture(scope="session")
def q3_reduction():
    """The Theorem-1 reduction of the case study (3 transient + 2
    absorbing states, uniformisation rate 19.5/h)."""
    return adhoc.reduced_q3_model()


@pytest.fixture(scope="session")
def q3_setting(q3_reduction):
    """(model, goal state, initial state, t, r) of property Q3."""
    model = q3_reduction.model
    initial = int(np.argmax(model.initial_distribution))
    return (model, q3_reduction.goal_state, initial,
            adhoc.Q3_TIME_BOUND, adhoc.Q3_REWARD_BOUND)


@pytest.fixture(scope="session")
def q3_exact(q3_setting):
    """Converged Q3 path probability on our reconstruction."""
    from repro.algorithms import SericolaEngine
    model, goal, initial, t, r = q3_setting
    engine = SericolaEngine(epsilon=1e-10)
    return float(engine.joint_probability_vector(model, t, r,
                                                 [goal])[initial])


def report(benchmark, **info):
    """Attach comparison data to the benchmark and print one row."""
    benchmark.extra_info.update(info)
    row = "  ".join(f"{key}={value}" for key, value in info.items())
    print(f"\n    [{benchmark.name}] {row}")
