"""Scaling and ablation studies behind the paper's Section 5.4 notes.

The paper's "general observations" make several complexity claims that
these benchmarks measure on controlled workloads:

* the occupation-time method degrades when the time bound is large
  relative to the uniformisation rate (cost ~ N_epsilon^2 and
  N_epsilon ~ lambda t);
* the discretisation method suffers from large time bounds and state
  spaces;
* the pseudo-Erlang chain grows k-fold (cost of the expanded
  transient analysis);
* Theorem 1's amalgamation of decided states shrinks the model.
"""

import numpy as np
import pytest

from repro.algorithms import (DiscretizationEngine, ErlangEngine,
                              SericolaEngine)
from repro.mc.transform import (amalgamated_until_reduction,
                                until_reduction)
from repro.models import adhoc
from repro.models.workloads import workstation_cluster

from conftest import report


@pytest.mark.parametrize("stations", [5, 10, 20, 40],
                         ids=lambda n: f"n={n}")
def bench_sericola_state_scaling(benchmark, stations):
    """Occupation-time engine vs state-space size (cluster models)."""
    model = workstation_cluster(stations)
    t = 10.0
    r = 0.9 * stations * t
    engine = SericolaEngine(epsilon=1e-6)

    def run():
        return engine.joint_probability_vector(
            model, t, r, range(stations // 2, stations + 1))

    value = benchmark(run)
    report(benchmark, states=model.num_states,
           reward_levels=len(model.distinct_rewards()),
           value=round(float(value[stations]), 6))


@pytest.mark.parametrize("horizon", [5.0, 10.0, 20.0, 40.0],
                         ids=lambda t: f"t={t:g}")
def bench_sericola_time_scaling(benchmark, horizon):
    """Occupation-time engine vs time bound: N ~ lambda*t, cost ~ N^2
    -- the paper's 'less attractive when the time bound is large'."""
    model = workstation_cluster(8)
    engine = SericolaEngine(epsilon=1e-6)
    r = 0.9 * 8 * horizon

    def run():
        return engine.joint_probability_vector(model, horizon, r,
                                               range(4, 9))

    benchmark(run)
    report(benchmark, lambda_t=round(model.max_exit_rate * horizon, 1),
           N=engine.last_diagnostics.truncation_steps)


@pytest.mark.parametrize("phases", [16, 64, 256],
                         ids=lambda k: f"k={k}")
def bench_erlang_phase_scaling(benchmark, q3_setting, phases):
    """Pseudo-Erlang engine: cost vs expanded chain size."""
    model, goal, initial, t, r = q3_setting
    engine = ErlangEngine(phases=phases)

    def run():
        return engine.joint_probability_vector(model, t, r,
                                               [goal])[initial]

    benchmark(run)
    report(benchmark, expanded_states=engine.last_expanded_size,
           uniformization_rate=round(
               model.max_exit_rate + phases * model.max_reward / r, 2))


@pytest.mark.parametrize("stations", [4, 8, 16],
                         ids=lambda n: f"n={n}")
def bench_discretization_state_scaling(benchmark, stations):
    """Discretisation cost grows with the state space (paper note)."""
    model = workstation_cluster(stations)
    t, r = 4.0, 2.0 * stations
    engine = DiscretizationEngine(step=1.0 / 32)
    indicator = np.ones(model.num_states)

    def run():
        return engine.joint_probability_from(model, t, r, indicator,
                                             stations)

    benchmark.pedantic(run, rounds=2, iterations=1)
    report(benchmark, states=model.num_states,
           reward_cells=int(r * 32) + 1)


def bench_amalgamation_ablation(benchmark):
    """Theorem 1 with vs without state amalgamation.

    The paper: "we can amalgamate all states satisfying Psi and all
    states satisfying !(Phi | Psi), thereby making the MRM considerably
    smaller."  On the case study this is 9 states vs 5; on bigger
    models the gap widens.  Both variants must agree numerically.
    """
    model = adhoc.adhoc_model()
    phi = set(model.states_with("call_idle")) | set(
        model.states_with("doze"))
    psi = set(model.states_with("call_initiated"))
    t, r = adhoc.Q3_TIME_BOUND, adhoc.Q3_REWARD_BOUND
    engine = SericolaEngine(epsilon=1e-8)

    plain = until_reduction(model, phi, psi)
    amalgamated = amalgamated_until_reduction(model, phi, psi)

    def run_both():
        full = engine.joint_probability_vector(plain, t, r, psi)[0]
        small = engine.joint_probability_vector(
            amalgamated.model, t, r, [amalgamated.goal_state])
        return full, small[amalgamated.state_map[0]]

    full_value, small_value = benchmark(run_both)
    assert full_value == pytest.approx(small_value, abs=1e-9)
    report(benchmark, plain_states=plain.num_states,
           amalgamated_states=amalgamated.model.num_states,
           value=round(float(small_value), 8))


def bench_ablation_lumping(benchmark):
    """Bisimulation minimisation as a preprocessing step.

    A replicated model (3 independent 2-state components observed only
    through the number of 'up' components) lumps 8 states to 4; the
    checking result is invariant.
    """
    from repro.ctmc import ModelBuilder
    from repro.ctmc.lumping import lump

    builder = ModelBuilder()
    for bits in range(8):
        count = bin(bits).count("1")
        builder.add_state(f"c{bits:03b}", labels=(f"up{count}",),
                          reward=float(count))
    for bits in range(8):
        for component in range(3):
            flipped = bits ^ (1 << component)
            rate = 1.0 if bits & (1 << component) else 2.0
            builder.add_transition(bits, flipped, rate)
    model = builder.build(initial_state=7)

    def run():
        result = lump(model)
        engine = SericolaEngine(epsilon=1e-8)
        quotient_value = engine.joint_probability_vector(
            result.quotient, 4.0, 8.0,
            result.quotient.states_with("up3"))
        return result, result.lift(quotient_value)

    result, lifted = benchmark(run)
    direct = SericolaEngine(epsilon=1e-8).joint_probability_vector(
        model, 4.0, 8.0, model.states_with("up3"))
    assert np.allclose(lifted, direct, atol=1e-8)
    report(benchmark, original_states=model.num_states,
           lumped_states=result.num_blocks)


def bench_ablation_sericola_steady_state_detection(benchmark):
    """The paper's Section 5.4 outlook, measured: steady-state
    detection inside the occupation-time series on a long horizon."""
    import time
    from repro.models.workloads import workstation_cluster
    model = workstation_cluster(8, failure_rate=0.5, repair_rate=5.0)
    t = 200.0
    r = 0.9 * 8 * t
    target = range(4, 9)

    def compare():
        plain_engine = SericolaEngine(epsilon=1e-8)
        start = time.perf_counter()
        plain = plain_engine.joint_probability_vector(model, t, r,
                                                      target)
        plain_time = time.perf_counter() - start
        detecting = SericolaEngine(epsilon=1e-8,
                                   steady_state_detection=True)
        start = time.perf_counter()
        detected = detecting.joint_probability_vector(model, t, r,
                                                      target)
        detect_time = time.perf_counter() - start
        return (plain, detected, plain_time, detect_time,
                plain_engine.last_diagnostics.truncation_steps,
                detecting.last_diagnostics.truncation_steps)

    plain, detected, plain_time, detect_time, full_n, used_n = \
        benchmark.pedantic(compare, rounds=1, iterations=1)
    assert np.allclose(plain, detected, atol=1e-7)
    assert used_n < full_n
    report(benchmark, full_N=full_n, detected_N=used_n,
           plain_seconds=round(plain_time, 3),
           detected_seconds=round(detect_time, 3))


def bench_ablation_sericola_matrix(benchmark, q3_setting):
    """Aggregated-vector vs full-matrix occupation-time computation.

    The paper stores full |S| x |S| matrices (space O(N^2 |S|^2)); the
    library's default aggregates target columns into one vector.  The
    matrix reconstruction costs one run per state, so the measured gap
    is ~|S|x in time (and the memory gap is |S|x by construction).
    """
    import time
    model, goal, initial, t, r = q3_setting
    engine = SericolaEngine(epsilon=1e-6)

    def compare():
        start = time.perf_counter()
        vector = engine.joint_probability_vector(model, t, r, [goal])
        vector_time = time.perf_counter() - start
        start = time.perf_counter()
        matrix = engine.joint_distribution_matrix(model, t, r)
        matrix_time = time.perf_counter() - start
        return vector[initial], matrix, vector_time, matrix_time

    value, matrix, vector_time, matrix_time = benchmark.pedantic(
        compare, rounds=1, iterations=1)
    assert matrix.shape == (model.num_states, model.num_states)
    assert matrix_time > vector_time
    report(benchmark,
           vector_seconds=round(vector_time, 4),
           matrix_seconds=round(matrix_time, 4),
           speedup=round(matrix_time / vector_time, 1))


def bench_engine_shootout(benchmark, q3_setting, q3_exact):
    """All three engines at roughly three-digit accuracy on Q3 --
    the paper's bottom-line comparison across Tables 2-4."""
    model, goal, initial, t, r = q3_setting
    indicator = np.zeros(model.num_states)
    indicator[goal] = 1.0
    engines = {
        "sericola(1e-4)": lambda: SericolaEngine(epsilon=1e-4)
        .joint_probability_vector(model, t, r, [goal])[initial],
        "erlang(k=256)": lambda: ErlangEngine(phases=256)
        .joint_probability_vector(model, t, r, [goal])[initial],
        "discretization(1/64)": lambda: DiscretizationEngine(
            step=1.0 / 64).joint_probability_from(model, t, r,
                                                  indicator, initial),
    }

    import time
    def shootout():
        results = {}
        for name, call in engines.items():
            start = time.perf_counter()
            value = call()
            results[name] = (float(value), time.perf_counter() - start)
        return results

    results = benchmark.pedantic(shootout, rounds=1, iterations=1)
    for name, (value, _elapsed) in results.items():
        assert value == pytest.approx(q3_exact, rel=5e-3), name
    report(benchmark, **{name: f"{value:.6f}/{elapsed:.3f}s"
                         for name, (value, elapsed) in results.items()})
