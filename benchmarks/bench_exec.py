#!/usr/bin/env python
"""Executor benchmark: thread vs process sweeps, clean and under chaos.

Evaluates the paper's Q3 property over a ``(t, r)`` grid (the Table 4
workload) through the partial-sweep machinery four ways:

* **thread** -- the in-process GIL-releasing fan-out
  (``executor="thread"``), the baseline;
* **process** -- :class:`~repro.exec.ProcessShardExecutor`,
  crash-isolated worker processes (model shipped once per worker,
  spec-transported engines);
* **process+chaos** -- the same, with the fault-injection harness
  crashing/corrupting ~20% of first attempts: measures the price of a
  retry storm;
* **process+checkpoint** -- a cold checkpointed run, then a resume
  from the finished file: measures checkpoint overhead and the resume
  fast-path.

All four grids must agree **bit for bit** (max|diff| exactly 0.0) --
the fault-tolerance layer is not allowed to cost accuracy.  Results
are merged into ``BENCH_<YYYYMMDD>.json`` under the ``exec`` section.

Usage::

    PYTHONPATH=src python benchmarks/bench_exec.py           # 6x6 grid
    PYTHONPATH=src python benchmarks/bench_exec.py --quick   # 3x3, <60s
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.algorithms import DiscretizationEngine, clear_caches
from repro.exec import ProcessShardExecutor
from repro.models import adhoc

CHAOS = "rate=0.2;kinds=crash,corrupt;seed=9"


def _grid_bounds(points: int):
    fractions = np.arange(1, points + 1) / points
    times = [float(adhoc.Q3_TIME_BOUND * f) for f in fractions]
    rewards = [float(adhoc.Q3_REWARD_BOUND * f) for f in fractions]
    return times, rewards


def _run(engine_factory, model, target, times, rewards, *,
         executor=None, checkpoint=None):
    clear_caches()
    engine = engine_factory()
    start = time.perf_counter()
    partial = engine.joint_probability_sweep_partial(
        model, times, rewards, target, executor=executor,
        checkpoint=checkpoint)
    elapsed = time.perf_counter() - start
    assert partial.complete, partial.failures
    return partial.grid, elapsed


def exec_section(quick: bool, workers: int, tmp: Path) -> dict:
    points = 3 if quick else 6
    times, rewards = _grid_bounds(points)
    reduction = adhoc.reduced_q3_model()
    model = reduction.model
    target = [reduction.goal_state]

    def factory():
        return DiscretizationEngine(step=1.0 / (32 if quick else 64))

    print(f"(t, r) grid: {points}x{points}, {workers} workers, "
          f"{model.num_states}-state reduced Q3 model")

    reference, thread_seconds = _run(
        factory, model, target, times, rewards, executor="thread")

    def process(**options):
        return ProcessShardExecutor(max_workers=workers, **options)

    grids = {}
    grids["process"], process_seconds = _run(
        factory, model, target, times, rewards, executor=process())

    chaos_executor = process(faults=CHAOS, heartbeat_interval=0.05,
                             heartbeat_timeout=1.0)
    grids["chaos"], chaos_seconds = _run(
        factory, model, target, times, rewards,
        executor=chaos_executor)

    checkpoint = tmp / "bench_exec_checkpoint.jsonl"
    if checkpoint.exists():
        checkpoint.unlink()
    grids["checkpointed"], cold_seconds = _run(
        factory, model, target, times, rewards, executor=process(),
        checkpoint=str(checkpoint))
    grids["resumed"], resume_seconds = _run(
        factory, model, target, times, rewards, executor=process(),
        checkpoint=str(checkpoint))
    checkpoint.unlink()

    diffs = {name: float(np.max(np.abs(grid - reference)))
             for name, grid in grids.items()}
    row = {
        "grid": f"{points}x{points}",
        "workers": workers,
        "thread_seconds": round(thread_seconds, 4),
        "process_seconds": round(process_seconds, 4),
        "chaos_seconds": round(chaos_seconds, 4),
        "chaos_faults": CHAOS,
        "chaos_restarts": chaos_executor.restarts,
        "chaos_retries": chaos_executor.retries,
        "checkpoint_cold_seconds": round(cold_seconds, 4),
        "checkpoint_resume_seconds": round(resume_seconds, 4),
        "max_abs_diffs": diffs,
    }
    print(f"  thread  {thread_seconds:6.3f}s   "
          f"process {process_seconds:6.3f}s   "
          f"chaos {chaos_seconds:6.3f}s "
          f"({chaos_executor.restarts} restarts, "
          f"{chaos_executor.retries} retries)")
    print(f"  checkpoint cold {cold_seconds:6.3f}s   "
          f"resume {resume_seconds:6.3f}s   "
          f"max|diff| {max(diffs.values()):.1e}")
    return {"engine": "discretization", "runs": row}


def merge_into_bench_json(section: dict, output: Path) -> None:
    results = {}
    if output.exists():
        results = json.loads(output.read_text())
    results.setdefault("date", datetime.date.today().isoformat())
    results.setdefault("python", platform.python_version())
    results["exec"] = section
    output.write_text(json.dumps(results, indent=2) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="3x3 grid for CI smoke (< 60 s)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--output", type=Path, default=None)
    arguments = parser.parse_args(argv)

    started = time.perf_counter()
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        section = exec_section(arguments.quick, arguments.workers,
                               Path(tmp))
    section["quick"] = arguments.quick
    section["total_seconds"] = round(time.perf_counter() - started, 2)

    stamp = datetime.date.today().strftime("%Y%m%d")
    output = arguments.output or (
        Path(__file__).resolve().parent / f"BENCH_{stamp}.json")
    merge_into_bench_json(section, output)
    print(f"\nwrote {output} ({section['total_seconds']}s total)")

    diffs = section["runs"]["max_abs_diffs"]
    if max(diffs.values()) != 0.0:
        print(f"FAIL: executor grids are not bit-identical: {diffs}")
        return 1
    print("all executor grids bit-identical to the threaded baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
