"""Benchmarks of the numerical substrate (uniformisation, Fox-Glynn).

Not a paper table, but the foundation every procedure rests on: these
benchmarks track the transient engine against scipy's Krylov-based
``expm_multiply`` and measure the effect of steady-state detection --
the optimisation the paper wishes for in its Section 5.4 outlook.
"""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.models.workloads import random_mrm, workstation_cluster
from repro.numerics.poisson import poisson_weights
from repro.numerics.uniformization import transient_distribution

from conftest import report


@pytest.mark.parametrize("states", [10, 100, 1000],
                         ids=lambda n: f"n={n}")
def bench_transient_uniformization(benchmark, states):
    model = random_mrm(states, density=min(0.2, 20.0 / states), seed=1)
    t = 5.0

    def run():
        return transient_distribution(model, t, epsilon=1e-10)

    pi = benchmark(run)
    assert pi.sum() == pytest.approx(1.0, abs=1e-8)
    report(benchmark, states=states,
           lambda_t=round(model.max_exit_rate * t, 1))


@pytest.mark.parametrize("states", [10, 100],
                         ids=lambda n: f"n={n}")
def bench_transient_expm_multiply_reference(benchmark, states):
    """scipy's expm_multiply on the same problem, for comparison."""
    model = random_mrm(states, density=min(0.2, 20.0 / states), seed=1)
    generator = model.generator_matrix().transpose().tocsc()
    alpha = model.initial_distribution

    def run():
        return spla.expm_multiply(generator * 5.0, alpha)

    pi = benchmark(run)
    reference = transient_distribution(model, 5.0, epsilon=1e-12)
    assert np.allclose(pi, reference, atol=1e-7)
    report(benchmark, states=states)


def bench_steady_state_detection(benchmark):
    """Detection pays off on stiff ergodic chains at long horizons --
    the optimisation the paper's outlook asks for."""
    model = workstation_cluster(12, failure_rate=0.5, repair_rate=5.0)
    t = 10_000.0

    def run():
        return transient_distribution(model, t, epsilon=1e-10,
                                      steady_state_detection=True)

    with_detection = benchmark(run)
    without = transient_distribution(model, t, epsilon=1e-10,
                                     steady_state_detection=False)
    assert np.allclose(with_detection, without, atol=1e-7)
    report(benchmark, horizon=t,
           lambda_t=round(model.max_exit_rate * t, 0))


@pytest.mark.parametrize("rate", [50.0, 500.0, 5000.0],
                         ids=lambda q: f"q={q:g}")
def bench_fox_glynn_weights(benchmark, rate):
    weights = benchmark(poisson_weights, rate, 1e-12)
    assert weights.weights.sum() == pytest.approx(1.0)
    report(benchmark, window=len(weights))
