#!/usr/bin/env python
"""Diff two ``run_all.py`` BENCH files.

Aligns the table rows of two benchmark runs by their sweep key
(``epsilon`` / ``phases`` / ``step``) and reports, per row, the value
drift and the wall-clock ratio, plus the headline sections (batched
speedup, cache behaviour, total runtime).  Handles schema 1
(pre-registry), schema 2 (registry counters), schema 3 (kernel
backend + throughput), schema 4 (peak RSS) and schema 5
(cross-process RSS roll-up + ``obs_overhead`` section) files -- the
row keys compared here exist in all five, and newer-schema-only
fields (``kernel_backend``, ``states_per_second``,
``peak_rss_bytes``, ``worker_peak_rss_bytes``) are simply reported
when present.

Usage::

    python benchmarks/compare.py OLD.json NEW.json
    python benchmarks/compare.py OLD.json NEW.json --tolerance 1e-6
    python benchmarks/compare.py OLD.json NEW.json --min-speedup 3.0

Exit code 0 when every aligned value agrees within ``--tolerance``,
1 when any value drifted.  With ``--min-speedup X`` the run also
fails when any aligned Table-4 (discretisation) row is not at least
``X`` times faster in the new file -- the CI guard for the kernel
layer; plain timing changes never fail the run otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: table name -> the row field that identifies a sweep point.
TABLES = (
    ("table2_sericola", "epsilon"),
    ("table3_erlang", "phases"),
    ("table4_discretization", "step"),
)


def load(path: Path) -> Dict[str, Any]:
    data = json.loads(path.read_text())
    if not isinstance(data, dict):
        raise SystemExit(f"{path}: not a BENCH file (expected an object)")
    return data


def _schema(data: Dict[str, Any]) -> int:
    return int(data.get("schema", 1))


def _index_rows(rows: List[Dict[str, Any]],
                key: str) -> Dict[Any, Dict[str, Any]]:
    return {row.get(key): row for row in rows}


def _ratio(old: Optional[float], new: Optional[float]) -> str:
    if not old or new is None:
        return "     n/a"
    return f"{new / old:7.2f}x"


def compare_table(name: str, key: str,
                  old: Dict[str, Any], new: Dict[str, Any],
                  tolerance: float,
                  min_speedup: Optional[float] = None
                  ) -> Tuple[List[str], int, int]:
    """Lines for one table plus the drifted and too-slow row counts."""
    old_rows = _index_rows(old.get(name, []), key)
    new_rows = _index_rows(new.get(name, []), key)
    if not old_rows and not new_rows:
        return [], 0, 0
    lines = [f"{name} (by {key}):"]
    drifted = 0
    too_slow = 0
    for row_key in old_rows.keys() | new_rows.keys():
        before = old_rows.get(row_key)
        after = new_rows.get(row_key)
        if before is None or after is None:
            side = "old" if after is None else "new"
            lines.append(f"  {key}={row_key}: only in {side} file")
            continue
        delta = abs(float(after["value"]) - float(before["value"]))
        marker = ""
        if delta > tolerance:
            marker = "  DRIFT"
            drifted += 1
        if min_speedup is not None and float(after["seconds"]) > 0:
            speedup = float(before["seconds"]) / float(after["seconds"])
            if speedup < min_speedup:
                marker += f"  SLOW ({speedup:.2f}x < {min_speedup:g}x)"
                too_slow += 1
        kernel = after.get("kernel_backend")
        suffix = f"  kernel={kernel}" if kernel else ""
        rss = after.get("peak_rss_bytes")
        if rss:
            suffix += f"  rss={rss / 2 ** 20:.0f}MiB"
        lines.append(
            f"  {key}={row_key}: value {before['value']:.8f} -> "
            f"{after['value']:.8f} (|d|={delta:.2e}){marker}  "
            f"time {before['seconds']:.3f}s -> {after['seconds']:.3f}s "
            f"[{_ratio(before['seconds'], after['seconds'])}]{suffix}")
    # Deterministic output whatever the dict iteration order.
    lines[1:] = sorted(lines[1:])
    return lines, drifted, too_slow


def compare(old: Dict[str, Any], new: Dict[str, Any],
            tolerance: float,
            min_speedup: Optional[float] = None) -> Tuple[str, int]:
    lines = [
        f"old: schema {_schema(old)}, {old.get('date', '?')}, "
        f"quick={old.get('quick')}, python {old.get('python', '?')}",
        f"new: schema {_schema(new)}, {new.get('date', '?')}, "
        f"quick={new.get('quick')}, python {new.get('python', '?')}",
        "",
    ]
    drifted = 0
    too_slow = 0
    for name, key in TABLES:
        # The speedup guard targets the discretisation rows (the
        # kernel layer's hot path); the other tables only gate values.
        guard = min_speedup if name == "table4_discretization" else None
        table_lines, table_drift, table_slow = compare_table(
            name, key, old, new, tolerance, min_speedup=guard)
        if table_lines:
            lines.extend(table_lines)
            lines.append("")
        drifted += table_drift
        too_slow += table_slow

    old_speed = old.get("batched_speedup") or {}
    new_speed = new.get("batched_speedup") or {}
    if old_speed and new_speed:
        lines.append(
            f"batched_speedup: {old_speed.get('speedup')}x -> "
            f"{new_speed.get('speedup')}x")
    old_cache = old.get("cache") or {}
    new_cache = new.get("cache") or {}
    if old_cache and new_cache:
        lines.append(
            f"cache repeat: {old_cache.get('repeat_seconds')}s -> "
            f"{new_cache.get('repeat_seconds')}s")
    if "total_seconds" in old and "total_seconds" in new:
        lines.append(
            f"total: {old['total_seconds']}s -> {new['total_seconds']}s "
            f"[{_ratio(old['total_seconds'], new['total_seconds'])}]")
    if drifted:
        lines.append("")
        lines.append(f"{drifted} value(s) drifted beyond "
                     f"tolerance {tolerance:g}")
    if too_slow:
        lines.append("")
        lines.append(f"{too_slow} table4 row(s) below the required "
                     f"{min_speedup:g}x speedup")
    return "\n".join(lines), drifted + too_slow


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("old", type=Path, help="baseline BENCH file")
    parser.add_argument("new", type=Path, help="candidate BENCH file")
    parser.add_argument("--tolerance", type=float, default=1e-6,
                        help="max |value| drift per aligned row "
                             "(default 1e-6); timings never fail")
    parser.add_argument("--min-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless every aligned "
                             "table4_discretization row is at least X "
                             "times faster in NEW (CI kernel guard)")
    args = parser.parse_args(argv)
    report, failures = compare(load(args.old), load(args.new),
                               args.tolerance,
                               min_speedup=args.min_speedup)
    print(report)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
