#!/usr/bin/env python
"""Kernel-backend scaling benchmark: states/second on a lattice MRM.

Times the Tijms-Veldman discretisation propagation -- the hot loop
owned by :mod:`repro.kernels` -- on the ``grid_mrm`` lattice workload
(|S| = 10^4 by default) once per available kernel backend and reports
the propagation throughput in states/second plus the cross-backend
agreement.  With numba installed this is the apples-to-apples
numpy-vs-numba comparison behind the BENCH numbers; without it the
script still times the pure-NumPy backend.

The model is deliberately banded-sparse (four lattice neighbours per
state) with column-striped reward levels, so each propagation step is
one CSR-times-dense-block product plus the reward shift -- exactly the
work :class:`repro.kernels.base.DiscretizationPropagator` fuses.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py           # 100x100
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick   # 32x32

Exit code 0 when every pair of backends agrees to within 1e-12,
1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Tuple

import numpy as np

from repro.algorithms import DiscretizationEngine, clear_caches
from repro.kernels import available_backends
from repro.models.workloads import grid_mrm

#: Maximum |value| disagreement tolerated between any two backends.
TOLERANCE = 1e-12

FULL = {"width": 100, "height": 100, "t": 2.0, "r": 8.0,
        "step": 1.0 / 16, "repeats": 3}
QUICK = {"width": 32, "height": 32, "t": 2.0, "r": 8.0,
         "step": 1.0 / 16, "repeats": 3}


def time_backend(backend: str, model, t: float, r: float, step: float,
                 indicator: np.ndarray, initial: int,
                 repeats: int) -> Tuple[float, float, float]:
    """``(value, best_seconds, states_per_second)`` for one backend."""
    engine = DiscretizationEngine(step=step, kernel=backend)
    clear_caches()
    # Warm-up run: builds the cached step operators and shift plans
    # and, on the numba backend, pays the JIT compilation once outside
    # the timed region.
    value = engine.joint_probability_from(model, t, r, indicator, initial)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        again = engine.joint_probability_from(model, t, r, indicator,
                                              initial)
        best = min(best, time.perf_counter() - start)
        if abs(again - value) > TOLERANCE:
            raise AssertionError(
                f"{backend}: non-deterministic result "
                f"({again!r} vs {value!r})")
    steps = int(round(t / step))
    return value, best, model.num_states * steps / best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="32x32 grid for CI smoke (< 10 s)")
    arguments = parser.parse_args(argv)
    config = QUICK if arguments.quick else FULL

    model = grid_mrm(config["width"], config["height"])
    # Target the zero-reward stripe (every third column): reachable
    # within the time bound from the start corner, so the computed
    # probability is macroscopic and backend disagreement shows up.
    indicator = (model.rewards == 0.0).astype(float)
    steps = int(round(config["t"] / config["step"]))
    print(f"grid {config['width']}x{config['height']} "
          f"({model.num_states} states, {model.num_transitions} "
          f"transitions), t={config['t']}, r={config['r']}, "
          f"d={config['step']:g} ({steps} steps)")

    backends = available_backends()
    results: List[Tuple[str, float, float, float]] = []
    for backend in backends:
        value, seconds, rate = time_backend(
            backend, model, config["t"], config["r"], config["step"],
            indicator, 0, config["repeats"])
        results.append((backend, value, seconds, rate))
        print(f"  {backend:6s} {seconds:8.3f}s  "
              f"{rate:14,.0f} states/s  value={value:.12f}")

    if len(results) > 1:
        values = [value for _, value, _, _ in results]
        spread = max(values) - min(values)
        baseline = results[0][2]
        for backend, _, seconds, _ in results[1:]:
            print(f"  {results[0][0]} -> {backend} speedup: "
                  f"{baseline / seconds:.2f}x")
        print(f"  cross-backend max|diff| = {spread:.3e} "
              f"(tolerance {TOLERANCE:g})")
        if spread > TOLERANCE:
            print("  BACKENDS DISAGREE", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
