#!/usr/bin/env python
"""Kernel-backend scaling benchmark: states/second across workloads.

Times the Tijms-Veldman discretisation propagation -- the hot loop
owned by :mod:`repro.kernels` -- on three synthetic workloads from
:mod:`repro.models.workloads`:

``grid``
    banded lattice (four neighbours per state, striped rewards) at
    |S| = 10^4 and |S| ~ 10^5 -- the apples-to-apples backend shootout;
``crowd``
    the replica-symmetric ring at |S| = 10^5 -- sparse-backend
    territory (and the lumping pre-pass's canonical workload);
``virus``
    the SIR epidemic at |S| ~ 10^5 -- irregular sparsity.

Each (workload, backend) cell reports propagation throughput in
states/second, the value computed, and the process peak RSS.  Cells
whose *dense* step operator would exceed the memory budget
(``--dense-budget-mb``, default 512) are skipped with an explicit
``oom_skipped`` status instead of thrashing or dying on allocation:
a dense |S| x |S| float64 operator at |S| = 10^5 is 80 GB.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py             # full
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick     # CI
    PYTHONPATH=src python benchmarks/bench_kernels.py --min-speedup 3

Exit code 0 when every pair of completed backends agrees to within
1e-12 (and, with ``--min-speedup X``, when the sparse backend is at
least ``X`` times faster than the dense baseline on every cell where
both ran); 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.algorithms import DiscretizationEngine, clear_caches
from repro.kernels import available_backends
from repro.models.workloads import crowd_mrm, grid_mrm, virus_mrm
from repro.obs import peak_rss_bytes

#: Maximum |value| disagreement tolerated between any two backends.
TOLERANCE = 1e-12

#: Default dense-operator memory budget in MiB; a cell whose |S| x |S|
#: float64 step operator would not fit is skipped, not attempted.
DEFAULT_DENSE_BUDGET_MB = 512

#: (name, model factory, t, r, step, repeats).  The large cells use a
#: coarser discretisation so the full grid stays minutes, not hours.
FULL = [
    ("grid-10k", lambda: grid_mrm(100, 100), 2.0, 8.0, 1.0 / 16, 3),
    ("grid-100k", lambda: grid_mrm(316, 316), 1.0, 4.0, 1.0 / 8, 2),
    ("crowd-100k", lambda: crowd_mrm(200, 500), 1.0, 4.0, 1.0 / 8, 2),
    ("virus-100k", lambda: virus_mrm(450), 1.0, 4.0, 1.0 / 8, 2),
]
QUICK = [
    ("grid-4k", lambda: grid_mrm(64, 64), 2.0, 8.0, 1.0 / 16, 2),
    ("grid-100k", lambda: grid_mrm(316, 316), 1.0, 4.0, 1.0 / 8, 1),
    ("crowd-100k", lambda: crowd_mrm(200, 500), 1.0, 4.0, 1.0 / 8, 1),
]


def dense_operator_bytes(num_states: int) -> int:
    """Memory the dense backend's |S| x |S| step operator needs."""
    return num_states * num_states * 8


def time_backend(backend: str, model, t: float, r: float, step: float,
                 indicator: np.ndarray, initial: int,
                 repeats: int) -> Dict[str, object]:
    """One completed BENCH cell for *backend* on *model*."""
    engine = DiscretizationEngine(step=step, kernel=backend)
    clear_caches()
    # Warm-up run: builds the cached step operators and shift plans
    # and, on the numba backend, pays the JIT compilation once outside
    # the timed region.
    value = engine.joint_probability_from(model, t, r, indicator, initial)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        again = engine.joint_probability_from(model, t, r, indicator,
                                              initial)
        best = min(best, time.perf_counter() - start)
        if abs(again - value) > TOLERANCE:
            raise AssertionError(
                f"{backend}: non-deterministic result "
                f"({again!r} vs {value!r})")
    steps = int(round(t / step))
    return {
        "kernel_backend": backend,
        "status": "ok",
        "value": float(value),
        "seconds": round(best, 4),
        "states_per_second": round(model.num_states * steps / best, 1),
        "peak_rss_bytes": peak_rss_bytes(),
    }


def run_workload(name: str, factory, t: float, r: float, step: float,
                 repeats: int, backends: List[str],
                 dense_budget_bytes: int) -> List[Dict[str, object]]:
    """All backend cells for one workload (skipped cells included)."""
    model = factory()
    # Target the zero-reward states: reachable within the time bound
    # from the start state, so the computed probability is macroscopic
    # and backend disagreement shows up.
    indicator = (np.asarray(model.rewards) == 0.0).astype(float)
    if not indicator.any():
        indicator = np.ones(model.num_states)
    steps = int(round(t / step))
    print(f"{name}: {model.num_states} states, "
          f"{model.num_transitions} transitions, t={t:g}, r={r:g}, "
          f"d={step:g} ({steps} steps)")
    rows: List[Dict[str, object]] = []
    for backend in backends:
        need = dense_operator_bytes(model.num_states)
        if backend == "dense" and need > dense_budget_bytes:
            print(f"  {backend:6s} skipped: dense operator needs "
                  f"{need / 2 ** 20:,.0f} MiB "
                  f"(budget {dense_budget_bytes / 2 ** 20:,.0f} MiB)")
            rows.append({"kernel_backend": backend,
                         "status": "oom_skipped",
                         "required_bytes": need,
                         "budget_bytes": dense_budget_bytes})
            continue
        row = time_backend(backend, model, t, r, step, indicator, 0,
                           repeats)
        rows.append(row)
        print(f"  {backend:6s} {row['seconds']:8.3f}s  "
              f"{row['states_per_second']:14,.0f} states/s  "
              f"value={row['value']:.12f}  "
              f"rss={row['peak_rss_bytes'] / 2 ** 20:,.0f}MiB")
    for row in rows:
        row["workload"] = name
        row["states"] = model.num_states
    return rows


def check_agreement(name: str, rows: List[Dict[str, object]]) -> bool:
    """Print and verify the cross-backend value spread for one cell."""
    completed = [row for row in rows if row["status"] == "ok"]
    if len(completed) < 2:
        return True
    values = [row["value"] for row in completed]
    spread = max(values) - min(values)
    print(f"  {name}: cross-backend max|diff| = {spread:.3e} "
          f"(tolerance {TOLERANCE:g})")
    if spread > TOLERANCE:
        print(f"  {name}: BACKENDS DISAGREE", file=sys.stderr)
        return False
    return True


def check_speedup(name: str, rows: List[Dict[str, object]],
                  min_speedup: float) -> bool:
    """Verify sparse >= min_speedup x dense where both completed."""
    by_backend = {row["kernel_backend"]: row for row in rows
                  if row["status"] == "ok"}
    sparse, dense = by_backend.get("sparse"), by_backend.get("dense")
    if sparse is None or dense is None:
        return True
    ratio = (float(sparse["states_per_second"])
             / float(dense["states_per_second"]))
    print(f"  {name}: sparse vs dense {ratio:.2f}x "
          f"(required {min_speedup:g}x)")
    if ratio < min_speedup:
        print(f"  {name}: SPARSE TOO SLOW", file=sys.stderr)
        return False
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small grid + one 10^5 sparse cell for "
                             "CI smoke (< 60 s)")
    parser.add_argument("--dense-budget-mb", type=float,
                        default=DEFAULT_DENSE_BUDGET_MB, metavar="MB",
                        help="skip dense cells whose |S|x|S| operator "
                             "exceeds this budget (default "
                             f"{DEFAULT_DENSE_BUDGET_MB} MiB)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless the sparse backend is at "
                             "least X times faster (states/s) than "
                             "the dense baseline on every cell where "
                             "both ran")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the cells as JSON rows")
    arguments = parser.parse_args(argv)
    config = QUICK if arguments.quick else FULL
    budget = int(arguments.dense_budget_mb * 2 ** 20)

    backends = available_backends()
    all_rows: List[Dict[str, object]] = []
    failures = 0
    for name, factory, t, r, step, repeats in config:
        rows = run_workload(name, factory, t, r, step, repeats,
                            backends, budget)
        all_rows.extend(rows)
        if not check_agreement(name, rows):
            failures += 1
        if arguments.min_speedup is not None and not check_speedup(
                name, rows, arguments.min_speedup):
            failures += 1

    skipped = [row for row in all_rows if row["status"] == "oom_skipped"]
    if skipped:
        print(f"{len(skipped)} dense cell(s) oom_skipped under the "
              f"{budget / 2 ** 20:,.0f} MiB budget")
    if arguments.output is not None:
        arguments.output.write_text(
            json.dumps({"schema": 4, "kernel_cells": all_rows},
                       indent=2) + "\n")
        print(f"wrote {arguments.output}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
