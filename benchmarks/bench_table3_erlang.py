"""Table 3: the pseudo-Erlang approximation under a phase sweep.

One benchmark per number of phases k in {1, 2, ..., 1024}; each
reports the computed value, its relative error against the converged
value, and the paper's counterparts.  The paper's qualitative claims
are asserted: convergence is monotone from below and the error roughly
halves per doubling of k.
"""

import pytest

from repro.algorithms import ErlangEngine
from repro.models import adhoc

from conftest import report


@pytest.mark.parametrize(
    "phases,paper_value,paper_error",
    [pytest.param(row[0], row[1], row[2], id=f"k={row[0]}")
     for row in adhoc.TABLE3_PSEUDO_ERLANG])
def bench_table3_row(benchmark, q3_setting, q3_exact, phases,
                     paper_value, paper_error):
    model, goal, initial, t, r = q3_setting
    engine = ErlangEngine(phases=phases)

    def run():
        return engine.joint_probability_vector(model, t, r,
                                               [goal])[initial]

    value = benchmark(run)
    error_pct = 100.0 * (q3_exact - value) / q3_exact
    assert value < q3_exact, "pseudo-Erlang converges from below"
    report(benchmark,
           phases=phases,
           value=round(float(value), 8), paper_value=paper_value,
           rel_error_pct=round(float(error_pct), 3),
           paper_rel_error_pct=paper_error,
           expanded_states=engine.last_expanded_size)


def bench_table3_error_halving(benchmark, q3_setting, q3_exact):
    """Qualitative shape: the error roughly halves per doubling of k."""
    model, goal, initial, t, r = q3_setting

    def sweep():
        errors = []
        for phases in (8, 16, 32, 64, 128):
            engine = ErlangEngine(phases=phases)
            value = engine.joint_probability_vector(
                model, t, r, [goal])[initial]
            errors.append(q3_exact - value)
        return errors

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ratios = [earlier / later
              for earlier, later in zip(errors, errors[1:])]
    for ratio in ratios:
        assert 1.5 < ratio < 2.6, (
            f"error should roughly halve per doubling, got {ratios}")
    report(benchmark, ratios=[round(float(r), 2) for r in ratios],
           paper_ratio_hint="~2 per doubling (Table 3)")


def bench_table3_bound_grid_sweep(benchmark, q3_setting):
    """A (t, r) bound grid through the shared-prefix sweep API.

    For each reward bound the expanded chain's backward iterates are
    shared across all time bounds; distinct reward bounds (distinct
    expansions) fan out over threads.  The result must match
    independent per-point calls to 1e-10.
    """
    import numpy as np
    from repro.algorithms import clear_caches
    model, goal, initial, t, r = q3_setting
    times = [t * f for f in (0.25, 0.5, 0.75, 1.0)]
    rewards = [r * f for f in (0.25, 0.5, 0.75, 1.0)]
    engine = ErlangEngine(phases=64)

    def run():
        clear_caches()
        return engine.joint_probability_sweep(model, times, rewards,
                                              [goal])

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    clear_caches()
    reference = ErlangEngine(phases=64)
    for i, time_bound in enumerate(times):
        for j, reward_bound in enumerate(rewards):
            point = reference.joint_probability_vector(
                model, time_bound, reward_bound, [goal])
            assert np.max(np.abs(grid[i, j] - point)) <= 1e-10
    report(benchmark, grid=f"{len(times)}x{len(rewards)}",
           value=round(float(grid[-1, -1, initial]), 8),
           sweep_matvecs=engine.stats.matvec_count,
           per_point_matvecs=reference.stats.matvec_count)
