#!/usr/bin/env python
"""One-shot benchmark harness: regenerate the paper's tables as JSON.

Runs the three engines on property Q3 of the ad hoc network case study
(Section 5 of the paper) -- the Sericola epsilon sweep (Table 2), the
pseudo-Erlang phase sweep (Table 3) and the discretisation step sweep
(Table 4) -- plus three measurements of this library's performance
layer: the batched all-initial-states propagation against the seed's
per-state loop, the joint-vector cache behaviour under repeated
identical checks, and the shared-prefix ``(t, r)`` grid sweep against
the per-point loop (see :mod:`bench_sweep`).  Results (computed values, errors against the
paper's reference, wall-clock seconds, cache counters) are written to
``BENCH_<YYYYMMDD>.json`` next to this script.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py           # full tables
    PYTHONPATH=src python benchmarks/run_all.py --quick   # CI smoke, <60s
    PYTHONPATH=src python benchmarks/run_all.py --output out.json

Unlike the ``bench_*.py`` files this needs no pytest-benchmark; it is
plain timed Python so it can run as a CI smoke job.
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.algorithms import (DiscretizationEngine, ErlangEngine,
                              SericolaEngine, cache_info, clear_caches)
from repro.mc.checker import ModelChecker
from repro.models import adhoc
from repro.numerics.poisson import poisson_cache_info
from repro.obs import OBS, REGISTRY
from repro.obs.metrics import ENGINE_STAT_COUNTERS

from bench_sweep import sweep_section

REFERENCE = adhoc.Q3_REFERENCE_VALUE

#: Output format version.  2 = per-row engine counters and timing
#: totals are read back from the ``repro.obs`` metrics registry (the
#: primary ledger) instead of the ``EngineStats`` compatibility view,
#: and the file carries this ``schema`` marker for
#: ``benchmarks/compare.py``.  3 = table rows additionally record the
#: propagation kernel backend (``kernel_backend``, see
#: :mod:`repro.kernels`) and the throughput ``states_per_second``;
#: matvec timing histograms are keyed by ``(engine, kernel)``.  4 =
#: rows carry ``peak_rss_bytes`` (the process high-water mark sampled
#: by the engines' observability wrapper) and ``kernel_backend``
#: reports the *resolved* backend when the engine ran on ``auto``.
#: 5 = ``peak_rss_bytes`` is read from the cross-process roll-up gauge
#: ``repro_peak_rss_bytes_max`` (the per-process gauges are now
#: ``worker=``-labelled), rows gain ``worker_peak_rss_bytes`` (the
#: largest single process's high-water mark) and the file carries an
#: ``obs_overhead`` section timing an obs-on process sweep against the
#: dark run (the PR 5 overhead contract extended to the executor).
SCHEMA_VERSION = 5

QUICK = {
    "epsilons": [1e-2, 1e-4, 1e-6],
    "phases": [16, 64],
    "steps": [1.0 / 32],
    "speedup_step": 1.0 / 32,
}
FULL = {
    "epsilons": [row[0] for row in adhoc.TABLE2_OCCUPATION_TIME],
    "phases": [row[0] for row in adhoc.TABLE3_PSEUDO_ERLANG
               if row[0] <= 256],
    "steps": [row[0] for row in adhoc.TABLE4_DISCRETIZATION[:3]],
    "speedup_step": 1.0 / 64,
}


def _timed(function):
    start = time.perf_counter()
    value = function()
    return value, time.perf_counter() - start


def _captured(function):
    """Run *function* under a fresh observability capture.

    Returns ``(value, seconds)`` like :func:`_timed`; afterwards the
    registry holds exactly this run's counters and timing histograms,
    which :func:`_registry_row` reads back into the bench row.
    """
    with OBS.capture(reset_metrics=True):
        return _timed(function)


def _registry_row(engine_name: str) -> dict:
    """One run's engine counters and timing totals, from the registry."""
    snapshot = REGISTRY.snapshot()
    label = f'{{engine="{engine_name}"}}'
    row = {field: int(snapshot.get(metric, {}).get(label, 0))
           for field, metric in ENGINE_STAT_COUNTERS.items()}
    # Since schema 3 the matvec histogram carries a kernel label next
    # to the engine label, so match by substring and sum across any
    # backends the run touched.
    needle = f'engine="{engine_name}"'
    matvec_sum, matvec_count = 0.0, 0
    for labels, summary in snapshot.get(
            "repro_matvec_block_seconds", {}).items():
        if needle in labels and summary.get("count"):
            matvec_sum += float(summary["sum"])
            matvec_count += int(summary["count"])
    if matvec_count:
        row["matvec_seconds"] = round(matvec_sum, 6)
    fox = snapshot.get("repro_fox_glynn_seconds", {}).get("")
    if fox and fox.get("count"):
        row["fox_glynn_seconds"] = round(float(fox["sum"]), 6)
    rss = snapshot.get("repro_peak_rss_bytes_max", {}).get("")
    if rss:
        row["peak_rss_bytes"] = int(rss)
    worker_rss = [int(value) for labels, value in
                  snapshot.get("repro_peak_rss_bytes", {}).items()
                  if "worker=" in labels]
    if worker_rss:
        row["worker_peak_rss_bytes"] = max(worker_rss)
    return row


def _states_rate(num_states: int, registry_row: dict,
                 seconds: float) -> float:
    """Propagation throughput: ``|S| * steps / wall-clock``."""
    steps = int(registry_row.get("propagation_steps", 0))
    if seconds <= 0.0 or not steps:
        return 0.0
    return round(num_states * steps / seconds, 1)


#: Converged self-reference (set in main); errors are measured against
#: this, the way the pytest benchmarks do, because the reconstruction's
#: converged Q3 value differs from the paper's scanned reference in the
#: third decimal (rate-table ambiguity, see bench_table2_sericola).
_CONVERGED = REFERENCE


def _row(value: float, seconds: float, **extra) -> dict:
    error = abs(value - _CONVERGED)
    row = dict(extra)
    row.update(value=round(float(value), 8),
               abs_error=float(error),
               rel_error_pct=round(100.0 * error / _CONVERGED, 4),
               seconds=round(seconds, 4))
    return row


def bench_table2(setting, epsilons) -> list:
    model, goal, initial, t, r = setting
    rows = []
    for epsilon in epsilons:
        clear_caches()
        engine = SericolaEngine(epsilon=epsilon)
        vector, seconds = _captured(
            lambda: engine.joint_probability_vector(model, t, r, [goal]))
        registry = _registry_row(engine.name)
        rows.append(_row(vector[initial], seconds, epsilon=epsilon,
                         kernel_backend=engine.last_kernel or engine.kernel,
                         states_per_second=_states_rate(
                             model.num_states, registry, seconds),
                         **registry))
        print(f"  sericola eps={epsilon:.0e}: {rows[-1]['value']:.8f} "
              f"({seconds:.3f}s)")
    return rows


def bench_table3(setting, phase_counts) -> list:
    model, goal, initial, t, r = setting
    rows = []
    for phases in phase_counts:
        clear_caches()
        engine = ErlangEngine(phases=phases)
        vector, seconds = _captured(
            lambda: engine.joint_probability_vector(model, t, r, [goal]))
        registry = _registry_row(engine.name)
        rows.append(_row(vector[initial], seconds, phases=phases,
                         expanded_states=engine.last_expanded_size,
                         kernel_backend=engine.last_kernel or engine.kernel,
                         states_per_second=_states_rate(
                             engine.last_expanded_size or model.num_states,
                             registry, seconds),
                         **registry))
        print(f"  erlang k={phases:4d}: {rows[-1]['value']:.8f} "
              f"({seconds:.3f}s)")
    return rows


def bench_table4(setting, steps) -> list:
    model, goal, initial, t, r = setting
    rows = []
    for step in steps:
        clear_caches()
        engine = DiscretizationEngine(step=step)
        vector, seconds = _captured(
            lambda: engine.joint_probability_vector(model, t, r, [goal]))
        registry = _registry_row(engine.name)
        rows.append(_row(vector[initial], seconds,
                         step=f"1/{int(round(1 / step))}",
                         kernel_backend=engine.last_kernel or engine.kernel,
                         states_per_second=_states_rate(
                             model.num_states, registry, seconds),
                         **registry))
        print(f"  discretization d=1/{int(round(1 / step)):3d}: "
              f"{rows[-1]['value']:.8f} ({seconds:.3f}s)")
    return rows


def bench_batched_speedup(setting, step) -> dict:
    """Seed-style per-state loop vs the batched adjoint propagation."""
    model, goal, initial, t, r = setting
    indicator = np.zeros(model.num_states)
    indicator[goal] = 1.0
    engine = DiscretizationEngine(step=step)

    clear_caches()
    loop, loop_seconds = _timed(lambda: np.array(
        [engine.joint_probability_from(model, t, r, indicator, s)
         for s in range(model.num_states)]))
    clear_caches()
    batched, batched_seconds = _timed(
        lambda: engine.joint_probability_vector(model, t, r, [goal]))
    speedup = loop_seconds / batched_seconds
    print(f"  per-state loop {loop_seconds:.3f}s vs batched "
          f"{batched_seconds:.3f}s -> {speedup:.1f}x")
    return {
        "step": f"1/{int(round(1 / step))}",
        "states": model.num_states,
        "loop_seconds": round(loop_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "speedup": round(speedup, 2),
        "max_abs_diff": float(np.max(np.abs(loop - batched))),
    }


def bench_cache(setting) -> dict:
    """Repeated identical checks through the model checker."""
    clear_caches()
    checker = ModelChecker(adhoc.adhoc_model())
    formula = ("P<=0.25 [ (call_idle | doze) U[0,24][0,600] "
               "call_initiated ]")
    with OBS.capture(reset_metrics=True):
        _, first_seconds = _timed(lambda: checker.check(formula))
        checker.clear_cache()
        _, second_seconds = _timed(lambda: checker.check(formula))
    stats = _registry_row(checker.engine.name)
    print(f"  first check {first_seconds:.3f}s, repeat "
          f"{second_seconds:.4f}s, stats {stats}")
    return {
        "formula": formula,
        "first_seconds": round(first_seconds, 4),
        "repeat_seconds": round(second_seconds, 6),
        "engine_stats": stats,
        "joint_cache": cache_info()["joint"],
        "poisson_cache": poisson_cache_info(),
    }


def bench_obs_overhead(setting) -> dict:
    """Cross-process aggregation overhead: obs-on sweep vs dark run.

    Worker telemetry (metric snapshots, span segments, the flight
    recorder) piggybacks on the result pipe; this times the same
    process-executor grid with observability off and on and reports
    the overhead.  The 5% budget is the PR 5 contract extended to the
    executor -- exceeding it prints a warning and is recorded in the
    row, so regressions are visible in the BENCH diff.
    """
    from repro.exec import ProcessShardExecutor
    model, goal, _initial, time_bound, reward_bound = setting
    times = [time_bound / 2.0, time_bound]
    rewards = [reward_bound / 2.0, reward_bound]
    engine = DiscretizationEngine(step=1.0 / 32)

    def run():
        partial = engine.joint_probability_sweep_partial(
            model, times, rewards, [goal],
            executor=ProcessShardExecutor(max_workers=2))
        assert partial.complete
        return partial

    clear_caches()
    _, seconds_off = _timed(run)
    clear_caches()
    with OBS.capture(reset_metrics=True):
        _, seconds_on = _timed(run)
        snapshot = REGISTRY.snapshot()
    worker_rss = [int(value) for labels, value in
                  snapshot.get("repro_peak_rss_bytes", {}).items()
                  if "worker=" in labels]
    overhead_pct = (100.0 * (seconds_on - seconds_off) / seconds_off
                    if seconds_off > 0.0 else 0.0)
    within = overhead_pct <= 5.0
    if not within:
        print("  WARNING: cross-process observability overhead "
              f"{overhead_pct:.1f}% exceeds the 5% budget")
    print(f"  obs off {seconds_off:.3f}s | obs on {seconds_on:.3f}s "
          f"| overhead {overhead_pct:+.1f}%")
    return {
        "grid_cells": len(times) * len(rewards),
        "seconds_off": round(seconds_off, 4),
        "seconds_on": round(seconds_on, 4),
        "overhead_pct": round(overhead_pct, 2),
        "within_budget": within,
        "worker_peak_rss_bytes": max(worker_rss, default=0),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sweeps for CI smoke (< 60 s)")
    parser.add_argument("--output", type=Path, default=None,
                        help="output JSON path (default: "
                             "benchmarks/BENCH_<YYYYMMDD>.json)")
    arguments = parser.parse_args(argv)
    config = QUICK if arguments.quick else FULL

    reduction = adhoc.reduced_q3_model()
    model = reduction.model
    initial = int(np.argmax(model.initial_distribution))
    setting = (model, reduction.goal_state, initial,
               adhoc.Q3_TIME_BOUND, adhoc.Q3_REWARD_BOUND)

    started = time.perf_counter()
    global _CONVERGED
    converged = SericolaEngine(epsilon=1e-10).joint_probability_vector(
        model, setting[3], setting[4], [reduction.goal_state])
    _CONVERGED = float(converged[initial])
    print(f"converged self-reference: {_CONVERGED:.8f} "
          f"(paper: {REFERENCE:.8f})")
    print("Table 2 (Sericola / occupation time):")
    table2 = bench_table2(setting, config["epsilons"])
    print("Table 3 (pseudo-Erlang):")
    table3 = bench_table3(setting, config["phases"])
    print("Table 4 (Tijms-Veldman discretisation):")
    table4 = bench_table4(setting, config["steps"])
    print("Batched vs per-state discretisation:")
    speedup = bench_batched_speedup(setting, config["speedup_step"])
    print("Result cache under repeated checks:")
    cache = bench_cache(setting)
    print("Shared-prefix (t, r) grid sweep:")
    sweep = sweep_section(quick=arguments.quick)
    print("Cross-process telemetry aggregation overhead:")
    obs_overhead = bench_obs_overhead(setting)

    results = {
        "schema": SCHEMA_VERSION,
        "date": datetime.date.today().isoformat(),
        "quick": arguments.quick,
        "python": platform.python_version(),
        "total_seconds": round(time.perf_counter() - started, 2),
        "model": {
            "name": "adhoc-battery-q3",
            "reduced_states": model.num_states,
            "time_bound": adhoc.Q3_TIME_BOUND,
            "reward_bound": adhoc.Q3_REWARD_BOUND,
            "paper_reference_value": REFERENCE,
            "converged_value": round(_CONVERGED, 8),
        },
        "table2_sericola": table2,
        "table3_erlang": table3,
        "table4_discretization": table4,
        "batched_speedup": speedup,
        "cache": cache,
        "sweep": sweep,
        "obs_overhead": obs_overhead,
    }
    stamp = datetime.date.today().strftime("%Y%m%d")
    output = arguments.output or (
        Path(__file__).resolve().parent / f"BENCH_{stamp}.json")
    output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {output} ({results['total_seconds']}s total)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
