"""Table 4: the Tijms--Veldman discretisation under a step-size sweep.

One benchmark per step size d; the paper halves d per row and observes
the runtime quadrupling (cost ~ t*r/d^2) while the value converges.
The d = 1/512 row of the paper takes minutes; it is included behind
the ``--run-slow-benchmarks`` flag equivalent (deselect by keyword) as
a single-round pedantic benchmark.
"""

import numpy as np
import pytest

from repro.algorithms import DiscretizationEngine
from repro.models import adhoc

from conftest import report

_ROWS = adhoc.TABLE4_DISCRETIZATION


@pytest.mark.parametrize(
    "step,paper_value,paper_error",
    [pytest.param(row[0], row[1], row[2],
                  id=f"d=1_{int(round(1 / row[0]))}")
     for row in _ROWS[:3]])
def bench_table4_row(benchmark, q3_setting, q3_exact, step,
                     paper_value, paper_error):
    model, goal, initial, t, r = q3_setting
    engine = DiscretizationEngine(step=step)
    indicator = np.zeros(model.num_states)
    indicator[goal] = 1.0

    def run():
        return engine.joint_probability_from(model, t, r, indicator,
                                             initial)

    value = benchmark.pedantic(run, rounds=1, iterations=1)
    error_pct = 100.0 * abs(value - q3_exact) / q3_exact
    assert error_pct < 0.1
    report(benchmark,
           step=f"1/{int(round(1 / step))}",
           value=round(float(value), 8), paper_value=paper_value,
           rel_error_pct=round(float(error_pct), 4),
           paper_rel_error_pct=paper_error)


def bench_table4_quadratic_cost(benchmark, q3_setting):
    """The paper's runtime observation: halving d quadruples the cost.

    Measured on coarser steps to keep the benchmark fast; the ratio of
    consecutive runtimes must be clearly super-linear.
    """
    import time
    model, goal, initial, t, r = q3_setting
    indicator = np.zeros(model.num_states)
    indicator[goal] = 1.0

    def measure():
        timings = []
        # The coarsest admissible step: 1 - E(s) d must stay positive,
        # and E_max = 19.5/h on the case study, so d <= 1/32 here.
        for step in (1.0 / 32, 1.0 / 64, 1.0 / 128):
            engine = DiscretizationEngine(step=step)
            start = time.perf_counter()
            engine.joint_probability_from(model, t, r, indicator,
                                          initial)
            timings.append(time.perf_counter() - start)
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratios = [later / earlier
              for earlier, later in zip(timings, timings[1:])]
    assert all(ratio > 2.0 for ratio in ratios), (
        f"cost should grow ~4x per halving of d, got ratios {ratios}")
    report(benchmark,
           ratios=[round(float(ratio), 2) for ratio in ratios],
           paper_ratio_hint="~4x per halving (Table 4 timings)")


def bench_table4_bound_grid_sweep(benchmark, q3_setting):
    """A (t, r) bound grid through the shared-prefix sweep API.

    One adjoint propagation per reward column serves every time bound
    (the backward recurrence is time-homogeneous), and columns fan out
    over threads.  The result must match independent per-point calls
    to 1e-10 -- it is bit-identical by construction.
    """
    import time
    from repro.algorithms import clear_caches
    model, goal, initial, t, r = q3_setting
    times = [t * f for f in (0.25, 0.5, 0.75, 1.0)]
    rewards = [r * f for f in (0.25, 0.5, 0.75, 1.0)]
    engine = DiscretizationEngine(step=1.0 / 32)

    def run():
        clear_caches()
        return engine.joint_probability_sweep(model, times, rewards,
                                              [goal])

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    clear_caches()
    reference = DiscretizationEngine(step=1.0 / 32)
    start = time.perf_counter()
    for i, time_bound in enumerate(times):
        for j, reward_bound in enumerate(rewards):
            point = reference.joint_probability_vector(
                model, time_bound, reward_bound, [goal])
            assert np.max(np.abs(grid[i, j] - point)) <= 1e-10
    per_point_seconds = time.perf_counter() - start
    report(benchmark, grid=f"{len(times)}x{len(rewards)}",
           value=round(float(grid[-1, -1, initial]), 8),
           per_point_seconds=round(per_point_seconds, 3),
           sweep_matvecs=engine.stats.matvec_count,
           per_point_matvecs=reference.stats.matvec_count)
