#!/usr/bin/env python
"""Sweep-evaluation benchmark: per-point vs shared-prefix vs threads.

Evaluates the paper's Q3 property over a whole ``(t, r)`` grid of
bounds (the workload behind Tables 2--4, where one formula is swept
over its accuracy/bound parameters) three ways per engine:

* **per-point** -- one :meth:`joint_probability_vector` call per grid
  cell, the pre-sweep baseline;
* **sweep** -- one :meth:`joint_probability_sweep` call sharing the
  propagation prefix across the grid;
* **threaded** -- the per-point cells fanned out over GIL-releasing
  threads (:func:`parallel_joint_vectors`), the no-sweep parallel
  baseline.

The three must agree to 1e-10; speedups and engine counters are merged
into ``BENCH_<YYYYMMDD>.json`` next to this script (created if
missing, the ``sweep`` section replaced if present).

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py            # 8x8 grid
    PYTHONPATH=src python benchmarks/bench_sweep.py --quick    # 4x4, <60s
    PYTHONPATH=src python benchmarks/bench_sweep.py --quick --min-speedup 1.0

``--min-speedup X`` exits non-zero when the discretisation engine's
sweep is less than ``X`` times faster than its per-point loop -- the
CI regression guard for the shared-prefix layer.
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.algorithms import (DiscretizationEngine, ErlangEngine,
                              SericolaEngine, clear_caches,
                              parallel_joint_vectors)
from repro.models import adhoc


def _grid_bounds(points: int):
    """Uniform (t, r) grids up to the Q3 bounds, ``points`` per axis."""
    fractions = np.arange(1, points + 1) / points
    times = [float(adhoc.Q3_TIME_BOUND * f) for f in fractions]
    rewards = [float(adhoc.Q3_REWARD_BOUND * f) for f in fractions]
    return times, rewards


def measure_engine(engine_factory, setting, times, rewards,
                   max_workers=None) -> dict:
    """Time the three evaluation strategies for one engine config.

    *engine_factory* builds a fresh engine per strategy so counters and
    caches never leak between measurements.  Returns one JSON row.
    """
    model, goal, _initial, _t, _r = setting
    target = [goal]

    clear_caches()
    engine = engine_factory()
    start = time.perf_counter()
    loop = np.empty((len(times), len(rewards), model.num_states))
    for i, t in enumerate(times):
        for j, r in enumerate(rewards):
            loop[i, j] = engine.joint_probability_vector(model, t, r,
                                                         target)
    per_point_seconds = time.perf_counter() - start
    per_point_stats = engine.stats.as_dict()

    clear_caches()
    engine = engine_factory()
    start = time.perf_counter()
    swept = engine.joint_probability_sweep(model, times, rewards,
                                           target)
    sweep_seconds = time.perf_counter() - start
    sweep_stats = engine.stats.as_dict()

    clear_caches()
    engine = engine_factory()
    queries = [(model, t, r, target) for t in times for r in rewards]
    start = time.perf_counter()
    threaded = parallel_joint_vectors(engine, queries,
                                      max_workers=max_workers)
    threaded_seconds = time.perf_counter() - start

    flat = np.array(threaded).reshape(loop.shape)
    sweep_diff = float(np.max(np.abs(swept - loop)))
    threaded_diff = float(np.max(np.abs(flat - loop)))
    row = {
        "engine": engine.name,
        "grid": f"{len(times)}x{len(rewards)}",
        "per_point_seconds": round(per_point_seconds, 4),
        "sweep_seconds": round(sweep_seconds, 4),
        "threaded_seconds": round(threaded_seconds, 4),
        "sweep_speedup": round(per_point_seconds / sweep_seconds, 2),
        "threaded_speedup": round(
            per_point_seconds / threaded_seconds, 2),
        "sweep_max_abs_diff": sweep_diff,
        "threaded_max_abs_diff": threaded_diff,
        "per_point_matvecs": per_point_stats["matvec_count"],
        "sweep_matvecs": sweep_stats["matvec_count"],
        "sweep_stats": sweep_stats,
    }
    print(f"  {engine.name:>14}: per-point {per_point_seconds:6.3f}s  "
          f"sweep {sweep_seconds:6.3f}s ({row['sweep_speedup']:.1f}x)  "
          f"threads {threaded_seconds:6.3f}s "
          f"({row['threaded_speedup']:.1f}x)  "
          f"max|diff| {max(sweep_diff, threaded_diff):.2e}")
    return row


def sweep_section(quick: bool) -> dict:
    """The full ``sweep`` benchmark section (reused by run_all)."""
    points = 4 if quick else 8
    times, rewards = _grid_bounds(points)
    reduction = adhoc.reduced_q3_model()
    model = reduction.model
    initial = int(np.argmax(model.initial_distribution))
    setting = (model, reduction.goal_state, initial,
               adhoc.Q3_TIME_BOUND, adhoc.Q3_REWARD_BOUND)
    print(f"(t, r) grid: {points}x{points} up to "
          f"t={adhoc.Q3_TIME_BOUND}, r={adhoc.Q3_REWARD_BOUND}")
    engines = [
        lambda: SericolaEngine(epsilon=1e-6),
        lambda: ErlangEngine(phases=64),
        lambda: DiscretizationEngine(step=1.0 / 32),
    ]
    rows = [measure_engine(factory, setting, times, rewards)
            for factory in engines]
    return {
        "times": times,
        "reward_bounds": rewards,
        "reduced_states": model.num_states,
        "engines": rows,
    }


def merge_into_bench_json(section: dict, output: Path) -> None:
    """Write *section* under the ``sweep`` key, keeping other sections."""
    results = {}
    if output.exists():
        results = json.loads(output.read_text())
    results.setdefault("date", datetime.date.today().isoformat())
    results.setdefault("python", platform.python_version())
    results["sweep"] = section
    output.write_text(json.dumps(results, indent=2) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="4x4 grid for CI smoke (< 60 s)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail if the discretisation sweep is less "
                             "than this many times faster than the "
                             "per-point loop")
    parser.add_argument("--output", type=Path, default=None,
                        help="output JSON path (default: "
                             "benchmarks/BENCH_<YYYYMMDD>.json)")
    arguments = parser.parse_args(argv)

    started = time.perf_counter()
    section = sweep_section(arguments.quick)
    section["quick"] = arguments.quick
    section["total_seconds"] = round(time.perf_counter() - started, 2)

    stamp = datetime.date.today().strftime("%Y%m%d")
    output = arguments.output or (
        Path(__file__).resolve().parent / f"BENCH_{stamp}.json")
    merge_into_bench_json(section, output)
    print(f"\nwrote {output} ({section['total_seconds']}s total)")

    for row in section["engines"]:
        if max(row["sweep_max_abs_diff"],
               row["threaded_max_abs_diff"]) > 1e-10:
            print(f"FAIL: {row['engine']} strategies disagree beyond "
                  f"1e-10")
            return 1
    if arguments.min_speedup is not None:
        disc = next(row for row in section["engines"]
                    if row["engine"] == "discretization")
        if disc["sweep_speedup"] < arguments.min_speedup:
            print(f"FAIL: discretization sweep speedup "
                  f"{disc['sweep_speedup']}x below required "
                  f"{arguments.min_speedup}x")
            return 1
        print(f"discretization sweep speedup {disc['sweep_speedup']}x "
              f">= required {arguments.min_speedup}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
