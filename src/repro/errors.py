"""Exception hierarchy for the repro library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch one base class.  Specific subclasses distinguish
modelling errors (bad input models), logic errors (bad formulas) and
numerical failures (non-convergence, invalid tolerances).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ModelError(ReproError):
    """An input model (CTMC, MRM, SRN) is malformed or inconsistent."""


class StateSpaceError(ModelError):
    """State-space generation failed (e.g. unbounded net, limit hit)."""


class RewardError(ModelError):
    """A reward structure violates a precondition of an algorithm."""


class FormulaError(ReproError):
    """A CSRL formula is syntactically or semantically invalid."""


class ParseError(FormulaError):
    """The CSRL text parser rejected its input.

    Attributes
    ----------
    position:
        Character offset in the input at which the error was detected,
        or ``None`` when not applicable.
    """

    def __init__(self, message: str, position: "int | None" = None):
        super().__init__(message)
        self.position = position


class UnsupportedFormulaError(FormulaError):
    """The formula is well-formed but outside the decidable fragment."""


class NumericalError(ReproError):
    """A numerical procedure failed (divergence, invalid tolerance...)."""


class ConvergenceError(NumericalError):
    """An iterative solver exhausted its iteration budget."""

    def __init__(self, message: str, iterations: "int | None" = None,
                 residual: "float | None" = None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class WorkerError(NumericalError):
    """One task of a threaded fan-out failed.

    Wraps the original exception together with the task's position in
    the fan-out, so a failing grid cell or reward column can be
    identified from the error alone.

    Attributes
    ----------
    index:
        0-based position of the task in the submitted sequence.
    label:
        Human-readable task description (e.g. ``"r=600.0"``), or
        ``None`` when the caller provided no labels.
    cause:
        The exception the worker raised.
    flight_tail:
        The dying worker's last flight-recorder events (a tuple of
        plain dicts, see :class:`repro.obs.recorder.FlightRecorder`),
        attached by the process executor; empty for thread-pool
        failures and when no recorder ran.
    """

    def __init__(self, index: int, cause: BaseException,
                 label: "str | None" = None,
                 flight_tail: "tuple | list" = ()):
        where = f"task {index}" + (f" ({label})" if label else "")
        super().__init__(
            f"{where} failed: {type(cause).__name__}: {cause}")
        self.index = int(index)
        self.label = label
        self.cause = cause
        self.flight_tail = tuple(flight_tail)

    def __reduce__(self):
        # The default Exception reduction replays ``args`` -- a single
        # message string -- into ``__init__(index, cause, label)`` and
        # explodes.  Reconstructing from the real fields keeps the
        # error picklable, which process transport (:mod:`repro.exec`)
        # and anyone using ``multiprocessing`` relies on.
        return (WorkerError, (self.index, self.cause, self.label,
                              self.flight_tail))


class ParallelExecutionError(NumericalError):
    """One or more tasks of a threaded fan-out failed.

    Raised once per fan-out after not-yet-started tasks have been
    cancelled; :attr:`failures` carries one :class:`WorkerError` per
    failing task (in task order), so callers see *every* failure, not
    just the first.
    """

    def __init__(self, failures: "list[WorkerError]", total: int):
        details = "; ".join(str(f) for f in failures)
        super().__init__(
            f"{len(failures)} of {total} parallel tasks failed: "
            f"{details}")
        self.failures = list(failures)
        self.total = int(total)

    def __reduce__(self):
        return (ParallelExecutionError, (self.failures, self.total))


class WorkerCrashError(NumericalError):
    """A worker *process* died before returning its task's result.

    Raised (or recorded inside a :class:`WorkerError`) by the process
    executor (:mod:`repro.exec`) when a worker crashes, is killed, or
    stops heartbeating; distinguishes infrastructure failures from
    numerical ones so retry policies can treat them differently.

    Attributes
    ----------
    reason:
        Why the worker was given up on: ``"crash"`` (process exited),
        ``"killed"`` (terminated by signal, e.g. an OOM kill),
        ``"hang"`` (heartbeat went stale), ``"timeout"`` (per-task
        wall-clock limit exceeded) or ``"corrupt"`` (result failed its
        checksum).
    worker_id:
        Identifier of the worker process, or ``None``.
    exitcode:
        The process exit code (negative = killed by that signal), or
        ``None`` when the process was still alive (hang/timeout).
    flight_tail:
        The victim's last flight-recorder events (a tuple of plain
        dicts), read back from its fsynced sidecar by the parent;
        empty when no recorder ran or the sidecar was unreadable.
    """

    def __init__(self, reason: str, worker_id: "int | None" = None,
                 exitcode: "int | None" = None,
                 flight_tail: "tuple | list" = ()):
        where = (f"worker {worker_id}" if worker_id is not None
                 else "worker")
        detail = f" (exit code {exitcode})" if exitcode is not None else ""
        super().__init__(f"{where} failed: {reason}{detail}")
        self.reason = reason
        self.worker_id = worker_id
        self.exitcode = exitcode
        self.flight_tail = tuple(flight_tail)

    def __reduce__(self):
        return (WorkerCrashError,
                (self.reason, self.worker_id, self.exitcode,
                 self.flight_tail))


class RemoteTaskError(NumericalError):
    """An exception raised inside a worker process, carried home.

    The original exception object may not survive pickling, so the
    process transport ships its type name, message and formatted
    traceback instead; the traceback text is attached for diagnosis.
    """

    def __init__(self, exc_type: str, message: str,
                 traceback_text: str = ""):
        super().__init__(f"{exc_type}: {message}")
        self.exc_type = exc_type
        self.message = message
        self.traceback_text = traceback_text

    def __reduce__(self):
        return (RemoteTaskError,
                (self.exc_type, self.message, self.traceback_text))


class CheckpointError(NumericalError):
    """A sweep checkpoint file cannot be used for the requested sweep
    (wrong fingerprint, engine parameters or grid axes)."""


class BudgetExhaustedError(NumericalError):
    """A per-query budget (deadline or refinement rounds) ran out."""


class PreflightError(NumericalError):
    """The static pre-flight analysis vetoed the computation.

    Raised by :class:`~repro.mc.checker.ModelChecker` before any engine
    runs when the analysis passes (see :mod:`repro.analysis`) find an
    ``ERROR``-severity incompatibility between the model, the formula
    and the selected engine.  The offending findings ride along so
    callers can render codes and fix hints instead of a traceback.

    Attributes
    ----------
    diagnostics:
        The ``ERROR``-severity :class:`~repro.analysis.Diagnostic`
        findings that triggered the veto, in report order.
    """

    def __init__(self, message: str, diagnostics: "tuple | list" = ()):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)
