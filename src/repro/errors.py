"""Exception hierarchy for the repro library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch one base class.  Specific subclasses distinguish
modelling errors (bad input models), logic errors (bad formulas) and
numerical failures (non-convergence, invalid tolerances).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ModelError(ReproError):
    """An input model (CTMC, MRM, SRN) is malformed or inconsistent."""


class StateSpaceError(ModelError):
    """State-space generation failed (e.g. unbounded net, limit hit)."""


class RewardError(ModelError):
    """A reward structure violates a precondition of an algorithm."""


class FormulaError(ReproError):
    """A CSRL formula is syntactically or semantically invalid."""


class ParseError(FormulaError):
    """The CSRL text parser rejected its input.

    Attributes
    ----------
    position:
        Character offset in the input at which the error was detected,
        or ``None`` when not applicable.
    """

    def __init__(self, message: str, position: "int | None" = None):
        super().__init__(message)
        self.position = position


class UnsupportedFormulaError(FormulaError):
    """The formula is well-formed but outside the decidable fragment."""


class NumericalError(ReproError):
    """A numerical procedure failed (divergence, invalid tolerance...)."""


class ConvergenceError(NumericalError):
    """An iterative solver exhausted its iteration budget."""

    def __init__(self, message: str, iterations: "int | None" = None,
                 residual: "float | None" = None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
