"""Definition of stochastic reward nets.

A stochastic reward net (SRN) extends a generalised stochastic Petri
net with guards, marking-dependent rates and a reward function over
markings [Ciardo, Muppala, Trivedi 1989].  The net structure here
supports:

* timed transitions with exponential firing delays whose rate may be a
  constant or a function of the current marking;
* immediate transitions with weights and priorities (they fire in zero
  time; markings enabling one are *vanishing* and are eliminated
  during state-space generation);
* input, output and inhibitor arcs with integer multiplicities;
* boolean guard functions per transition;
* a rate-reward function over markings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import ModelError
from repro.srn.marking import Marking

RateLike = Union[float, Callable[[Marking], float]]
Guard = Callable[[Marking], bool]
RewardFunction = Callable[[Marking], float]


@dataclass(frozen=True)
class Place:
    """A place of the net."""
    name: str
    position: int
    initial_tokens: int = 0


@dataclass
class Transition:
    """A transition of the net (timed or immediate)."""
    name: str
    rate: Optional[RateLike]        # None for immediate transitions
    weight: float = 1.0             # used by immediate transitions
    priority: int = 0               # higher fires first (immediate only)
    guard: Optional[Guard] = None
    impulse: RateLike = 0.0         # instantaneous reward on firing
    inputs: List[Tuple[int, int]] = field(default_factory=list)
    outputs: List[Tuple[int, int]] = field(default_factory=list)
    inhibitors: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def is_immediate(self) -> bool:
        return self.rate is None

    def is_enabled(self, marking: Marking) -> bool:
        """Structural + guard enabling in *marking*."""
        for position, multiplicity in self.inputs:
            if marking[position] < multiplicity:
                return False
        for position, multiplicity in self.inhibitors:
            if marking[position] >= multiplicity:
                return False
        if self.guard is not None and not self.guard(marking):
            return False
        return True

    def impulse_in(self, marking: Marking) -> float:
        """The impulse reward earned by firing in *marking*."""
        value = (self.impulse(marking) if callable(self.impulse)
                 else self.impulse)
        if not math.isfinite(value):
            raise ModelError(
                f"transition {self.name!r} has non-finite impulse "
                f"{value} in {marking!r}")
        if value < 0.0:
            raise ModelError(
                f"transition {self.name!r} has negative impulse "
                f"{value} in {marking!r}")
        return float(value)

    def rate_in(self, marking: Marking) -> float:
        """The firing rate in *marking* (timed transitions only)."""
        if self.rate is None:
            raise ModelError(
                f"immediate transition {self.name!r} has no rate")
        value = self.rate(marking) if callable(self.rate) else self.rate
        if not math.isfinite(value):
            raise ModelError(
                f"transition {self.name!r} has non-finite rate "
                f"{value} in {marking!r}")
        if value < 0.0:
            raise ModelError(
                f"transition {self.name!r} has negative rate {value} "
                f"in {marking!r}")
        return float(value)

    def fire(self, marking: Marking) -> Marking:
        """The marking after firing in *marking*."""
        deltas: Dict[int, int] = {}
        for position, multiplicity in self.inputs:
            deltas[position] = deltas.get(position, 0) - multiplicity
        for position, multiplicity in self.outputs:
            deltas[position] = deltas.get(position, 0) + multiplicity
        return marking.with_delta(deltas)


class StochasticRewardNet:
    """A stochastic reward net under construction.

    >>> net = StochasticRewardNet()
    >>> net.add_place("idle", tokens=1)
    >>> net.add_place("busy")
    >>> net.add_timed_transition("work", rate=2.0,
    ...                          inputs=["idle"], outputs=["busy"])
    >>> net.add_timed_transition("rest", rate=1.0,
    ...                          inputs=["busy"], outputs=["idle"])
    >>> net.set_reward(lambda m: 5.0 if m["busy"] else 0.0)
    """

    def __init__(self):
        self._places: Dict[str, Place] = {}
        self._order: List[str] = []
        self._transitions: Dict[str, Transition] = {}
        self._reward: Optional[RewardFunction] = None
        self._extra_labels: List[Tuple[str, Callable[[Marking], bool]]] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_place(self, name: str, tokens: int = 0) -> None:
        """Add a place with *tokens* initial tokens."""
        if name in self._places:
            raise ModelError(f"duplicate place {name!r}")
        if tokens < 0:
            raise ModelError(f"negative initial marking for {name!r}")
        self._places[name] = Place(name=name,
                                   position=len(self._order),
                                   initial_tokens=tokens)
        self._order.append(name)

    def _resolve_arcs(self, arcs) -> List[Tuple[int, int]]:
        resolved = []
        for arc in arcs or []:
            if isinstance(arc, tuple):
                place, multiplicity = arc
            else:
                place, multiplicity = arc, 1
            if place not in self._places:
                raise ModelError(f"unknown place {place!r}")
            if multiplicity < 1:
                raise ModelError(
                    f"arc multiplicity must be >= 1, got {multiplicity}")
            resolved.append((self._places[place].position,
                             int(multiplicity)))
        return resolved

    def add_timed_transition(self,
                             name: str,
                             rate: RateLike,
                             inputs=None,
                             outputs=None,
                             inhibitors=None,
                             guard: Optional[Guard] = None,
                             impulse: RateLike = 0.0) -> None:
        """Add an exponentially timed transition.

        *inputs*, *outputs* and *inhibitors* are lists of place names
        or ``(place, multiplicity)`` pairs.  *rate* may be a constant
        or a function of the marking (marking-dependent rates);
        *impulse* is an instantaneous reward earned when the
        transition fires (constant or marking-dependent).
        """
        self._add_transition(name, rate=rate, weight=1.0, priority=0,
                             inputs=inputs, outputs=outputs,
                             inhibitors=inhibitors, guard=guard,
                             impulse=impulse)

    def add_immediate_transition(self,
                                 name: str,
                                 weight: float = 1.0,
                                 priority: int = 1,
                                 inputs=None,
                                 outputs=None,
                                 inhibitors=None,
                                 guard: Optional[Guard] = None) -> None:
        """Add an immediate transition (fires in zero time).

        When several immediate transitions are enabled, the highest
        *priority* wins; ties are resolved probabilistically by
        *weight*.
        """
        if weight <= 0.0:
            raise ModelError(
                f"immediate transition {name!r} needs positive weight")
        if priority < 1:
            raise ModelError(
                f"immediate transition {name!r} needs priority >= 1")
        self._add_transition(name, rate=None, weight=weight,
                             priority=priority, inputs=inputs,
                             outputs=outputs, inhibitors=inhibitors,
                             guard=guard, impulse=0.0)

    def _add_transition(self, name, rate, weight, priority,
                        inputs, outputs, inhibitors, guard,
                        impulse=0.0) -> None:
        if name in self._transitions:
            raise ModelError(f"duplicate transition {name!r}")
        self._transitions[name] = Transition(
            name=name, rate=rate, weight=weight, priority=priority,
            guard=guard, impulse=impulse,
            inputs=self._resolve_arcs(inputs),
            outputs=self._resolve_arcs(outputs),
            inhibitors=self._resolve_arcs(inhibitors))

    def set_reward(self, reward: RewardFunction) -> None:
        """Set the rate-reward function over markings."""
        self._reward = reward

    def add_label(self, name: str,
                  predicate: Callable[[Marking], bool]) -> None:
        """Add a custom atomic proposition over markings.

        By default every place name is a proposition (holding when the
        place is non-empty); extra labels allow arbitrary predicates,
        e.g. ``net.add_label("overloaded", lambda m: m["queue"] > 5)``.
        """
        self._extra_labels.append((name, predicate))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def place_names(self) -> List[str]:
        """Place names in insertion order."""
        return list(self._order)

    @property
    def transitions(self) -> List[Transition]:
        """All transitions in insertion order."""
        return list(self._transitions.values())

    @property
    def extra_labels(self):
        """Custom labels added via :meth:`add_label`."""
        return list(self._extra_labels)

    def reward_of(self, marking: Marking) -> float:
        """Evaluate the reward function (0 when none is set)."""
        if self._reward is None:
            return 0.0
        value = float(self._reward(marking))
        if not math.isfinite(value):
            raise ModelError(
                f"non-finite reward {value} in marking {marking!r}")
        if value < 0.0:
            raise ModelError(
                f"negative reward {value} in marking {marking!r}")
        return value

    def initial_marking(self) -> Marking:
        """The initial marking from the places' initial tokens."""
        if not self._order:
            raise ModelError("the net has no places")
        index = {name: place.position
                 for name, place in self._places.items()}
        tokens = [self._places[name].initial_tokens
                  for name in self._order]
        return Marking(tokens, index)

    def describe(self) -> str:
        """A plain-text summary of the net structure."""
        lines = ["places:"]
        for name in self._order:
            place = self._places[name]
            lines.append(f"  {name} (initial: {place.initial_tokens})")
        lines.append("transitions:")
        for transition in self._transitions.values():
            kind = ("immediate" if transition.is_immediate
                    else f"rate={transition.rate!r}")
            arcs = []
            for position, mult in transition.inputs:
                arcs.append(f"-{self._order[position]}"
                            + (f"*{mult}" if mult > 1 else ""))
            for position, mult in transition.outputs:
                arcs.append(f"+{self._order[position]}"
                            + (f"*{mult}" if mult > 1 else ""))
            for position, mult in transition.inhibitors:
                arcs.append(f"!{self._order[position]}"
                            + (f"*{mult}" if mult > 1 else ""))
            lines.append(f"  {transition.name} ({kind}) "
                         + " ".join(arcs))
        return "\n".join(lines)
