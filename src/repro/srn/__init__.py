"""Stochastic reward nets (SRNs).

The paper's case study is specified as a stochastic reward net [Ciardo,
Muppala, Trivedi 1989]: a stochastic Petri net with timed
(exponential) and immediate transitions, inhibitor arcs, guards,
marking-dependent rates and a marking-based rate-reward function.

This package provides:

* :class:`~repro.srn.net.StochasticRewardNet` -- the net definition;
* :class:`~repro.srn.marking.Marking` -- immutable markings with
  by-name access;
* :func:`~repro.srn.reachability.build_mrm` -- reachability-graph
  generation with on-the-fly elimination of vanishing markings,
  producing the underlying :class:`~repro.ctmc.mrm.MarkovRewardModel`
  labelled with one atomic proposition per non-empty place (as in the
  paper: a proposition holds when its place contains a token).
"""

from repro.srn.net import StochasticRewardNet, Place, Transition
from repro.srn.marking import Marking
from repro.srn.reachability import build_mrm, ReachabilityGraph

__all__ = ["StochasticRewardNet", "Place", "Transition", "Marking",
           "build_mrm", "ReachabilityGraph"]
