"""Immutable markings of a stochastic reward net."""

from __future__ import annotations

from typing import Dict, Iterator, Sequence, Tuple


class Marking:
    """A token assignment, indexable by place position or name.

    Markings are value objects: hashable, comparable, and usable as
    dictionary keys during state-space exploration.
    """

    __slots__ = ("_tokens", "_index")

    def __init__(self, tokens: Sequence[int], index: Dict[str, int]):
        self._tokens: Tuple[int, ...] = tuple(int(x) for x in tokens)
        self._index = index  # shared place-name -> position map

    @property
    def tokens(self) -> Tuple[int, ...]:
        """The raw token counts, ordered by place position."""
        return self._tokens

    def __getitem__(self, place: "str | int") -> int:
        if isinstance(place, str):
            return self._tokens[self._index[place]]
        return self._tokens[place]

    def with_delta(self, deltas: Dict[int, int]) -> "Marking":
        """A new marking with *deltas* (position -> change) applied."""
        tokens = list(self._tokens)
        for position, delta in deltas.items():
            tokens[position] += delta
        return Marking(tokens, self._index)

    def nonempty_places(self) -> Iterator[str]:
        """Names of the places holding at least one token."""
        for name, position in self._index.items():
            if self._tokens[position] > 0:
                yield name

    def __hash__(self) -> int:
        return hash(self._tokens)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Marking)
                and self._tokens == other._tokens)

    def __repr__(self) -> str:
        inside = ", ".join(f"{name}:{self[name]}"
                           for name in sorted(self._index)
                           if self[name] > 0)
        return f"Marking({inside})"

    def label(self) -> str:
        """Compact human-readable name, e.g. ``"call_idle+adhoc_idle"``."""
        parts = []
        for name in sorted(self._index, key=self._index.get):
            count = self[name]
            if count == 1:
                parts.append(name)
            elif count > 1:
                parts.append(f"{name}*{count}")
        return "+".join(parts) if parts else "empty"
