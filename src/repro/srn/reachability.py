"""Reachability-graph generation: from an SRN to its underlying MRM.

Markings enabling an immediate transition are *vanishing* -- the net
leaves them in zero time -- and never become CTMC states.  During the
breadth-first exploration every timed firing into a vanishing marking
is resolved on the fly into a probability distribution over tangible
markings (following chains of immediate firings, with memoisation;
cyclic vanishing behaviour is rejected).

The resulting :class:`~repro.ctmc.mrm.MarkovRewardModel` has

* one state per reachable tangible marking,
* rate ``R(s, s') = sum over timed transitions and vanishing paths``,
* reward ``rho(s)`` from the net's reward function,
* one atomic proposition per place, holding when the place is
  non-empty (the labelling convention of the paper's Section 5.3),
  plus any custom labels.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.ctmc.mrm import MarkovRewardModel
from repro.errors import StateSpaceError
from repro.srn.marking import Marking
from repro.srn.net import StochasticRewardNet, Transition


@dataclass
class ReachabilityGraph:
    """The tangible reachability graph of a net.

    Attributes
    ----------
    markings:
        The reachable tangible markings; index = CTMC state.
    transitions:
        Sparse list of ``(source, target, rate, transition_name,
        impulse)`` records (vanishing paths keep the name and impulse
        of the timed transition that started them).
    initial_index:
        Index of the (tangible resolution of the) initial marking.
    """
    markings: List[Marking]
    transitions: List[Tuple[int, int, float, str]]
    initial_index: int = 0
    initial_distribution: Optional[np.ndarray] = None


def _enabled(net: StochasticRewardNet, marking: Marking,
             immediate: bool) -> List[Transition]:
    chosen = [t for t in net.transitions
              if t.is_immediate == immediate and t.is_enabled(marking)]
    if immediate and chosen:
        top = max(t.priority for t in chosen)
        chosen = [t for t in chosen if t.priority == top]
    return chosen


def _resolve_vanishing(net: StochasticRewardNet,
                       marking: Marking,
                       cache: Dict[Marking, Dict[Marking, float]],
                       trail: "set[Marking]",
                       ) -> Dict[Marking, float]:
    """Distribution over tangible markings reached from *marking* in
    zero time.  *trail* detects cycles of vanishing markings."""
    immediates = _enabled(net, marking, immediate=True)
    if not immediates:
        return {marking: 1.0}
    cached = cache.get(marking)
    if cached is not None:
        return cached
    if marking in trail:
        raise StateSpaceError(
            f"cycle of vanishing markings through {marking!r}; "
            f"the net has a zero-time loop")
    trail.add(marking)
    total_weight = sum(t.weight for t in immediates)
    distribution: Dict[Marking, float] = {}
    for transition in immediates:
        probability = transition.weight / total_weight
        successor = transition.fire(marking)
        for tangible, p in _resolve_vanishing(net, successor, cache,
                                              trail).items():
            distribution[tangible] = (distribution.get(tangible, 0.0)
                                      + probability * p)
    trail.discard(marking)
    cache[marking] = distribution
    return distribution


def explore(net: StochasticRewardNet,
            max_states: int = 1_000_000) -> ReachabilityGraph:
    """Generate the tangible reachability graph of *net*.

    Raises :class:`~repro.errors.StateSpaceError` when more than
    *max_states* tangible markings are found (unbounded or huge nets).
    """
    vanishing_cache: Dict[Marking, Dict[Marking, float]] = {}
    initial = net.initial_marking()
    initial_distribution = _resolve_vanishing(net, initial,
                                              vanishing_cache, set())

    index: Dict[Marking, int] = {}
    markings: List[Marking] = []
    queue: "deque[Marking]" = deque()

    def intern(marking: Marking) -> int:
        position = index.get(marking)
        if position is None:
            if len(markings) >= max_states:
                raise StateSpaceError(
                    f"more than {max_states} tangible markings; "
                    f"increase max_states if the net is really this big")
            position = len(markings)
            index[marking] = position
            markings.append(marking)
            queue.append(marking)
        return position

    for tangible in initial_distribution:
        intern(tangible)

    records: List[Tuple[int, int, float, str, float]] = []
    while queue:
        marking = queue.popleft()
        source = index[marking]
        for transition in _enabled(net, marking, immediate=False):
            rate = transition.rate_in(marking)
            if rate == 0.0:
                continue
            impulse = transition.impulse_in(marking)
            fired = transition.fire(marking)
            for tangible, probability in _resolve_vanishing(
                    net, fired, vanishing_cache, set()).items():
                target = intern(tangible)
                records.append((source, target, rate * probability,
                                transition.name, impulse))

    alpha = np.zeros(len(markings))
    for tangible, probability in initial_distribution.items():
        alpha[index[tangible]] = probability
    graph = ReachabilityGraph(markings=markings, transitions=records,
                              initial_distribution=alpha)
    best = int(np.argmax(alpha))
    graph.initial_index = best
    return graph


def build_mrm(net: StochasticRewardNet,
              max_states: int = 1_000_000) -> MarkovRewardModel:
    """Generate the Markov reward model underlying *net*.

    Labelling: every place name is an atomic proposition holding in
    the states whose marking puts at least one token on it; custom
    labels from :meth:`StochasticRewardNet.add_label` are evaluated on
    each tangible marking.
    """
    graph = explore(net, max_states=max_states)
    n = len(graph.markings)
    impulse_matrix = None
    if graph.transitions:
        rows, cols, vals = zip(*[(s, t, r)
                                 for s, t, r, _, _ in graph.transitions])
        rates = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
        rates.sum_duplicates()
        # Self-loops are probabilistically meaningless in a CTMC.
        rates.setdiag(0.0)
        rates.eliminate_zeros()
        # Transitions merged between the same pair of tangible
        # markings carry the rate-weighted average of their impulses
        # (the standard SRN-to-MRM flattening of transition rewards).
        if any(impulse > 0.0 for *_rest, impulse in graph.transitions):
            weighted = sp.coo_matrix(
                ([r * i for s, t, r, _, i in graph.transitions],
                 (rows, cols)), shape=(n, n)).tocsr()
            weighted.sum_duplicates()
            weighted.setdiag(0.0)
            weighted.eliminate_zeros()
            average = weighted.tocoo()
            data = [average.data[k] / rates[average.row[k],
                                            average.col[k]]
                    for k in range(average.nnz)]
            impulse_matrix = sp.coo_matrix(
                (data, (average.row, average.col)), shape=(n, n)).tocsr()
    else:
        rates = sp.csr_matrix((n, n))

    rewards = [net.reward_of(marking) for marking in graph.markings]

    labels: Dict[str, set] = {name: set() for name in net.place_names}
    for state, marking in enumerate(graph.markings):
        for place in marking.nonempty_places():
            labels[place].add(state)
    for name, predicate in net.extra_labels:
        labels[name] = {state for state, marking
                        in enumerate(graph.markings)
                        if predicate(marking)}

    names = [marking.label() for marking in graph.markings]
    # Guard against duplicate labels (multisets can collide only if
    # two distinct markings print identically, which label() prevents).
    if len(set(names)) != len(names):
        names = [f"{label}#{i}" for i, label in enumerate(names)]

    return MarkovRewardModel(rates,
                             rewards=rewards,
                             labels=labels,
                             initial_distribution=(
                                 graph.initial_distribution),
                             state_names=names,
                             impulse_rewards=impulse_matrix)
