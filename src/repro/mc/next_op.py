"""The NEXT operator ``X_I^J Phi``.

A path satisfies ``X_I^J Phi`` iff its first transition leads to a
``Phi``-state, occurs at a time ``tau`` in the time interval ``I``,
and the reward ``rho(s) * tau`` earned in the current state ``s`` up
to the jump lies in the reward interval ``J``.

For state ``s`` with exit rate ``E(s) > 0`` the jump time is
exponential, and the two constraints intersect to a single interval
``[a, b]`` of admissible jump times, so

    Pr(s) = (sum_{s' in Sat(Phi)} R(s, s') / E(s))
            * (e^{-E(s) a} - e^{-E(s) b}).

Because this is a one-dimensional integral, *arbitrary* intervals are
supported here -- not only the ``[0, b]`` form the paper restricts its
until procedures to.
"""

from __future__ import annotations

import math
from typing import Set

import numpy as np

from repro.ctmc.mrm import MarkovRewardModel
from repro.logic.intervals import Interval


def admissible_jump_window(reward_rate: float,
                           time: Interval,
                           reward: Interval) -> "Interval | None":
    """Intersect the time interval with the reward constraint.

    Returns the interval of jump times ``tau`` with ``tau in I`` and
    ``reward_rate * tau in J``, or ``None`` when it is empty.
    """
    if reward_rate == 0.0:
        # No reward is ever earned: the constraint is "0 in J".
        if reward.lower > 0.0:
            return None
        return time
    lower = reward.lower / reward_rate
    upper = (math.inf if math.isinf(reward.upper)
             else reward.upper / reward_rate)
    return time.intersect(Interval(lower, upper))


def next_probabilities(model: MarkovRewardModel,
                       phi: Set[int],
                       time: Interval,
                       reward: Interval) -> np.ndarray:
    """Per-state probability of the path formula ``X_I^J Phi``."""
    n = model.num_states
    rates = model.rate_matrix
    exit_rates = model.exit_rates
    # One-step probability of jumping into Sat(Phi), per state.
    indicator = np.zeros(n)
    for s in phi:
        indicator[s] = 1.0
    into_phi = rates @ indicator  # total rate into Phi-states

    probabilities = np.zeros(n)
    for s in range(n):
        rate = exit_rates[s]
        if rate == 0.0:
            continue  # absorbing: no next state at all
        window = admissible_jump_window(model.reward(s), time, reward)
        if window is None:
            continue
        upper_term = (0.0 if math.isinf(window.upper)
                      else math.exp(-rate * window.upper))
        weight = math.exp(-rate * window.lower) - upper_term
        probabilities[s] = (into_phi[s] / rate) * weight
    return np.clip(probabilities, 0.0, 1.0)
