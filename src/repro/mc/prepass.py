"""Automatic lumping pre-pass for the P3 checking pipeline.

The joint-distribution engines see the Theorem-1-reduced model and the
target indicator ``1_{Sat(Psi)}`` -- nothing else.  Whenever that
reduced model admits a non-trivial ordinary lumping whose blocks
neither split the target set nor mix reward rates, the engine can run
on the quotient instead: by ordinary lumpability the backward joint
probability ``Pr{Y_t <= r, X_t in Sat(Psi) | X_0 = s}`` is constant on
each block, so the per-original-state answer is exactly the quotient
answer read through ``block_of``.  The pre-pass is therefore *exact*
-- it changes which chain is propagated, never the quantity computed
-- and it is the lever that turns replica-symmetric 10^5-state models
into few-hundred-block computations.

:func:`prepare` wraps :func:`repro.ctmc.lumping.try_lump` with the
pipeline-specific partition seed (target membership) and the cost caps
that keep a failed attempt cheap, records ``repro_lump_*`` metrics and
a ``lump_prepass`` span, and remembers the outcome of the most recent
attempt for ``repro check -v`` reporting
(:func:`last_info`).  Callers fall back to the unlumped model whenever
it returns ``None``.

The knob surface (``ModelChecker(lump=...)``, ``repro check
--no-lump``):

``"auto"``
    attempt the pre-pass under the state-count cap
    (:data:`LUMP_MAX_STATES`) and apply it only on models of at least
    :data:`LUMP_MIN_STATES` states -- the default.  Below that floor a
    propagation is already trivially cheap, and skipping keeps small
    checks bit-for-bit identical to the unlumped pipeline (the
    quotient's aggregated rates are mathematically exact but sum in a
    different floating-point order);
``True``
    attempt it regardless of model size (the pass cap still applies)
    and apply on any reduction;
``False``
    never lump.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Set, Union

import numpy as np

from repro.ctmc.lumping import Lumping, try_lump
from repro.ctmc.mrm import MarkovRewardModel
from repro.errors import ModelError
from repro.obs import OBS
from repro.obs import span as obs_span

#: Largest model the ``"auto"`` mode will attempt to lump; refinement
#: is one sparse re-bucketing plus a hash-grouping per pass, so this
#: keeps a *failed* attempt well under the cost of a single
#: propagation step at the same size.
LUMP_MAX_STATES = 262_144

#: Refinement-pass budget: a partition still unstable after this many
#: passes forfeits the attempt (a partial partition is not a valid
#: lumping).
LUMP_MAX_PASSES = 64

#: Smallest model ``"auto"`` will actually *apply* a found lumping to;
#: smaller quotients are still discovered and reported (``check -v``)
#: but the original chain is propagated -- it is already cheap, and
#: identical arithmetic beats a few saved states.
LUMP_MIN_STATES = 512

LumpMode = Union[str, bool]

_MODES = ("auto", True, False)


def validate_mode(mode: LumpMode) -> LumpMode:
    """Normalise and validate a ``lump=`` knob value."""
    if mode in _MODES:
        return mode
    raise ModelError(
        f"lump mode must be 'auto', True or False, got {mode!r}")


@dataclass(frozen=True)
class LumpPrepass:
    """A successful pre-pass: the quotient and how to read it back."""
    lumping: Lumping
    psi_blocks: FrozenSet[int]

    @property
    def quotient(self) -> MarkovRewardModel:
        return self.lumping.quotient

    @property
    def block_of(self) -> np.ndarray:
        return self.lumping.block_of

    @property
    def num_blocks(self) -> int:
        return self.lumping.num_blocks


@dataclass(frozen=True)
class PrepassInfo:
    """Outcome of the most recent pre-pass attempt (``check -v``)."""
    num_states: int
    num_blocks: Optional[int]
    applied: bool
    reason: str


_last_info: Optional[PrepassInfo] = None


def last_info() -> Optional[PrepassInfo]:
    """Outcome of the most recent :func:`prepare` call, if any."""
    return _last_info


def _record(info: PrepassInfo) -> None:
    global _last_info
    _last_info = info
    if OBS.enabled:
        if info.applied:
            OBS.metrics.counter("repro_lump_applied_total").inc()
            OBS.metrics.gauge("repro_lump_states_before").set(
                info.num_states)
            OBS.metrics.gauge("repro_lump_states_after").set(
                info.num_blocks)
        else:
            OBS.metrics.counter("repro_lump_skipped_total",
                                reason=info.reason).inc()


def prepare(model: MarkovRewardModel,
            psi: Set[int],
            mode: LumpMode = "auto") -> Optional[LumpPrepass]:
    """Attempt to lump the (Theorem-1-reduced) *model* for checking.

    *psi* is the target set the engine will be pointed at; its
    membership seeds the initial partition so the quotient target is
    well defined.  Returns ``None`` -- leaving the caller on the
    original model -- when lumping is disabled, capped out, unsound
    (impulse rewards) or yields no reduction.
    """
    mode = validate_mode(mode)
    if mode is False:
        _record(PrepassInfo(model.num_states, None, False, "disabled"))
        return None
    n = model.num_states
    max_states = LUMP_MAX_STATES if mode == "auto" else None
    if max_states is not None and n > max_states:
        _record(PrepassInfo(n, None, False, "too_large"))
        return None
    if model.has_impulse_rewards:
        _record(PrepassInfo(n, None, False, "impulse_rewards"))
        return None
    seed = np.zeros(n, dtype=np.int64)
    if psi:
        seed[np.fromiter(psi, dtype=np.int64, count=len(psi))] = 1
    with obs_span("lump_prepass", states=n) as span:
        lumping = try_lump(model,
                           respect_labels=(),
                           respect_initial=False,
                           respect_partition=seed,
                           max_states=max_states,
                           max_passes=LUMP_MAX_PASSES)
        span.set(blocks=(lumping.num_blocks if lumping is not None
                         else n))
    if lumping is None:
        _record(PrepassInfo(n, None, False, "no_reduction"))
        return None
    if mode == "auto" and n < LUMP_MIN_STATES:
        _record(PrepassInfo(n, lumping.num_blocks, False,
                            "small_model"))
        return None
    psi_blocks = frozenset(
        int(b) for b in np.unique(lumping.block_of[list(psi)])
    ) if psi else frozenset()
    _record(PrepassInfo(n, lumping.num_blocks, True, "applied"))
    return LumpPrepass(lumping=lumping, psi_blocks=psi_blocks)
