"""The CSRL model checker.

The central entry point is :class:`~repro.mc.checker.ModelChecker`,
which evaluates CSRL state formulas over a Markov reward model by the
recursive bottom-up procedure of Section 3 of the paper:

* boolean operators by set manipulation;
* ``P<|p(X ...)`` by one-step integration (:mod:`repro.mc.next_op`);
* unbounded until ("P0") by a sparse linear solve;
* time-bounded until ("P1") by transient analysis of a transformed
  chain;
* reward-bounded until ("P2") by the duality transformation of
  [Baier et al. 2000] followed by the P1 procedure;
* time- and reward-bounded until ("P3") by Theorem 1 + one of the
  three joint-distribution engines of :mod:`repro.algorithms`;
* the steady-state operator by BSCC analysis.

:mod:`repro.mc.measures` adds classic performability measures (Meyer's
performability distribution, expected rewards) on top of the same
machinery.
"""

from repro.mc.budget import Budget
from repro.mc.checker import ModelChecker
from repro.mc.certified import (DEFAULT_CHAIN, CertifiedChecker,
                                CertifiedCheckResult, EngineFailure)
from repro.mc.result import CheckResult, Verdict, interval_verdict
from repro.mc.transform import until_reduction, dual_model
from repro.mc import measures

__all__ = ["ModelChecker", "CheckResult", "until_reduction", "dual_model",
           "measures",
           "Budget", "CertifiedChecker", "CertifiedCheckResult",
           "DEFAULT_CHAIN", "EngineFailure", "Verdict", "interval_verdict"]
