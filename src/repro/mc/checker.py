"""The recursive CSRL model checker (Section 3 of the paper).

Checking a state formula ``Phi`` computes the satisfaction set
``Sat(Phi)`` by a bottom-up traversal of the parse tree: atomic
propositions come from the state labelling, boolean operators are set
operations, and the probabilistic operators trigger the numerical
procedures of :mod:`repro.mc.until`, :mod:`repro.mc.next_op` and
:mod:`repro.mc.steady`.  Satisfaction sets are memoised per
(sub)formula, so shared subformulas are checked once.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Union

import numpy as np

from repro.algorithms.base import JointEngine, get_engine
from repro.algorithms.parallel import parallel_joint_sweeps
from repro.ctmc.mrm import MarkovRewardModel
from repro.errors import FormulaError
from repro.logic import ast
from repro.logic.parser import parse_formula
from repro.mc import next_op, prepass, reward_op, steady, until
from repro.mc.result import CheckResult
from repro.mc.transform import until_reduction
from repro.obs import span as obs_span

FormulaLike = Union[str, ast.StateFormula]


class ModelChecker:
    """Checks CSRL formulas over a Markov reward model.

    Parameters
    ----------
    model:
        The MRM (or plain CTMC -- rewards then default to zero and any
        downward-closed reward bound is trivially met).
    engine:
        Joint-distribution engine for time- and reward-bounded until
        formulas: an engine name (``"sericola"``, ``"erlang"``,
        ``"discretization"``), a :class:`JointEngine` instance, or
        ``None`` for the default (Sericola with ``epsilon``).
    epsilon:
        Truncation error bound used by the transient procedures.
    solver:
        Linear solver for unbounded until and steady state
        (``"direct"``, ``"jacobi"`` or ``"gauss-seidel"``).
    preflight:
        Run the static analysis passes (:mod:`repro.analysis`) before
        invoking the joint-distribution engine on a time- and
        reward-bounded until, and refuse with a
        :class:`~repro.errors.PreflightError` carrying the diagnostic
        codes and fix hints when an ``ERROR``-severity incompatibility
        is found -- instead of letting the engine fail mid-computation.
        Pass ``False`` to force the run anyway.
    lump:
        Lumping pre-pass policy for P3 checks (:mod:`repro.mc.\
prepass`): ``"auto"`` (default) minimises the Theorem-1-reduced model
        by ordinary lumpability when it is small enough to try and the
        quotient is smaller, ``True`` always attempts it, ``False``
        never does.  The pre-pass is exact -- answers are identical,
        only the propagated chain shrinks; :attr:`last_lump` reports
        what the last P3 check did.

    Examples
    --------
    >>> from repro.ctmc import ModelBuilder
    >>> builder = ModelBuilder()
    >>> _ = builder.add_state("working", labels=("up",), reward=1.0)
    >>> _ = builder.add_state("failed", labels=("down",), reward=0.0)
    >>> builder.add_transition("working", "failed", 0.1)
    >>> builder.add_transition("failed", "working", 5.0)
    >>> checker = ModelChecker(builder.build())
    >>> checker.check("P>0.9 [ up U[0,1] down ]").states
    frozenset({1})
    """

    def __init__(self,
                 model: MarkovRewardModel,
                 engine: Union[None, str, JointEngine] = None,
                 epsilon: float = 1e-12,
                 solver: str = "direct",
                 preflight: bool = True,
                 lump: prepass.LumpMode = "auto"):
        if not isinstance(model, MarkovRewardModel):
            model = MarkovRewardModel(model.rate_matrix,
                                      labels=model.labels_as_dict(),
                                      initial_distribution=(
                                          model.initial_distribution),
                                      state_names=model.state_names)
        self.model = model
        if engine is None:
            engine = get_engine("sericola", epsilon=min(epsilon, 1e-9))
        elif isinstance(engine, str):
            engine = get_engine(engine)
        self.engine = engine
        self.epsilon = float(epsilon)
        self.solver = solver
        self.preflight = bool(preflight)
        self.lump = prepass.validate_mode(lump)
        self._cache: Dict[ast.StateFormula, FrozenSet[int]] = {}

    @property
    def last_lump(self):
        """Outcome of the most recent lumping pre-pass attempt
        (:class:`~repro.mc.prepass.PrepassInfo`), or ``None`` when no
        P3 check has run yet."""
        return prepass.last_info()

    @property
    def engine_stats(self) -> Dict[str, int]:
        """Run counters of the joint-distribution engine.

        Exposes the engine's :class:`~repro.algorithms.cache.\
EngineStats` as a plain dict: ``cache_hits``/``cache_misses`` against
        the shared joint-vector LRU (repeated identical until-checks
        -- same model content, bounds and target -- are served from it
        without re-propagating), plus ``propagation_steps`` and
        ``matvec_count`` of the work actually performed.
        """
        return self.engine.stats.as_dict()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def check(self, formula: FormulaLike) -> CheckResult:
        """Check a state formula; returns the full :class:`CheckResult`."""
        formula = self._normalize(formula)
        with obs_span("check", formula=str(formula)):
            return self._check(formula)

    def _check(self, formula: ast.StateFormula) -> CheckResult:
        probabilities: Optional[np.ndarray] = None
        if isinstance(formula, ast.Prob):
            probabilities = self.probability_vector(formula.path)
            states = frozenset(
                int(s) for s in range(self.model.num_states)
                if ast.compare(float(probabilities[s]),
                               formula.comparison, formula.bound))
            self._cache[formula] = states
        elif isinstance(formula, ast.SteadyState):
            operand = self.satisfaction_set(formula.operand)
            probabilities = steady.steady_state_probabilities(
                self.model, set(operand))
            states = frozenset(
                int(s) for s in range(self.model.num_states)
                if ast.compare(float(probabilities[s]),
                               formula.comparison, formula.bound))
            self._cache[formula] = states
        elif isinstance(formula, ast.Reward):
            probabilities = self.expected_reward_vector(formula.query)
            states = frozenset(
                int(s) for s in range(self.model.num_states)
                if ast.compare(float(probabilities[s]),
                               formula.comparison, formula.bound))
            self._cache[formula] = states
        else:
            states = self.satisfaction_set(formula)
        return CheckResult(formula=formula, states=states,
                           model=self.model, probabilities=probabilities)

    def satisfaction_set(self, formula: FormulaLike) -> FrozenSet[int]:
        """The set ``Sat(formula)`` of satisfying state indices."""
        formula = self._normalize(formula)
        cached = self._cache.get(formula)
        if cached is not None:
            return cached
        states = self._compute_sat(formula)
        self._cache[formula] = states
        return states

    def holds_initially(self, formula: FormulaLike) -> bool:
        """Whether the formula holds in the model's initial state(s)."""
        return self.check(formula).holds_initially

    def probability_vector(self, path: ast.PathFormula) -> np.ndarray:
        """Per-state probability measure of the paths satisfying *path*.

        This is the numerical core behind ``P<|p``: entry ``s`` is
        ``Pr{ paths from s satisfying path }``.
        """
        if isinstance(path, ast.Eventually):
            path = path.as_until()
        if isinstance(path, ast.Globally):
            # G phi = !F !phi on the probability level.
            complement = ast.Eventually(ast.Not(path.operand),
                                        path.time, path.reward).as_until()
            return 1.0 - self.probability_vector(complement)
        if isinstance(path, ast.Next):
            phi = set(self.satisfaction_set(path.operand))
            return next_op.next_probabilities(self.model, phi,
                                              path.time, path.reward)
        if isinstance(path, ast.Until):
            return self._until_probabilities(path)
        raise FormulaError(f"unknown path formula {path!r}")

    def until_probability_sweep(self,
                                left: FormulaLike,
                                right: FormulaLike,
                                times,
                                rewards,
                                executor=None,
                                checkpoint=None) -> np.ndarray:
        """P3 probabilities for a whole grid of ``(t, r)`` bounds.

        Returns the ``(len(times), len(rewards), |S|)`` array whose
        cell ``[i, j]`` is the per-state probability of ``left
        U^{[0, times[i]]}_{[0, rewards[j]]} right`` -- the workload of
        the paper's tables, where one formula is swept over its bounds.
        The satisfaction sets and the Theorem 1 reduction are computed
        once and the engine shares the propagation prefix across the
        grid (:meth:`JointEngine.joint_probability_sweep`), instead of
        one full propagation per bound pair.

        *executor*/*checkpoint* switch to the fault-tolerant cell-by-
        cell evaluation (crash-isolated worker processes, durable
        resume; see :mod:`repro.exec`) with bit-identical values.
        """
        phi = set(self.satisfaction_set(left))
        psi = set(self.satisfaction_set(right))
        return until.time_reward_bounded_until_sweep(
            self.model, phi, psi, times, rewards, self.engine,
            lump=self.lump, executor=executor, checkpoint=checkpoint)

    def until_probability_sweeps(self,
                                 pairs,
                                 times,
                                 rewards,
                                 max_workers: Optional[int] = None):
        """One bound grid per ``(left, right)`` formula pair, threaded.

        The satisfaction sets and reductions are computed serially on
        the calling thread (the formula cache is not thread safe), then
        the per-model grids -- genuinely independent computations --
        are fanned out with :func:`~repro.algorithms.parallel.\\
parallel_joint_sweeps`: each worker evaluates one reduced model's grid
        with the shared-prefix sweep, so the two reuse layers compose.
        Results come back in *pairs* order and the workers' counters
        are merged into :attr:`engine_stats`.
        """
        queries = []
        lifts = []
        for left, right in pairs:
            phi = set(self.satisfaction_set(left))
            psi = set(self.satisfaction_set(right))
            reduced = until_reduction(self.model, phi, psi)
            pre = prepass.prepare(reduced, psi, mode=self.lump)
            if pre is not None:
                queries.append((pre.quotient, times, rewards,
                                pre.psi_blocks))
                lifts.append(pre.block_of)
            else:
                queries.append((reduced, times, rewards, psi))
                lifts.append(None)
        grids = parallel_joint_sweeps(self.engine, queries,
                                      max_workers=max_workers)
        return [np.clip(np.asarray(grid)[..., lift] if lift is not None
                        else grid, 0.0, 1.0)
                for grid, lift in zip(grids, lifts)]

    def check_certified(self,
                        formula: FormulaLike,
                        chain=None,
                        budget=None,
                        target_width: Optional[float] = None):
        """Certified three-valued check of a ``P<|p [ until ]`` formula.

        Convenience front end to :class:`~repro.mc.certified.\
CertifiedChecker` sharing this checker's formula cache: *chain* is the
        engine fallback chain (default
        :data:`~repro.mc.certified.DEFAULT_CHAIN`), *budget* a
        :class:`~repro.mc.budget.Budget` limiting wall clock and
        refinement rounds.  Returns a :class:`~repro.mc.certified.\
CertifiedCheckResult` whose verdict is TRUE/FALSE only when certified.
        """
        from repro.mc.certified import DEFAULT_CHAIN, CertifiedChecker
        certified = CertifiedChecker(
            self, chain=DEFAULT_CHAIN if chain is None else chain,
            budget=budget, target_width=target_width)
        return certified.check(formula)

    def until_probability_sweep_partial(self,
                                        left: FormulaLike,
                                        right: FormulaLike,
                                        times,
                                        rewards,
                                        deadline: Optional[float] = None,
                                        max_workers: Optional[int] = None,
                                        executor=None,
                                        checkpoint=None):
        """Deadline-bounded variant of :meth:`until_probability_sweep`.

        Evaluates the ``(t, r)`` grid cell by cell under an absolute
        ``time.monotonic()`` *deadline* and returns a
        :class:`~repro.algorithms.base.PartialSweep` instead of
        raising when time runs out: every cell finished before the
        deadline is kept, the rest are listed in ``unevaluated`` (and
        hold NaN in the grid), and per-cell worker failures are
        isolated into ``failures`` rather than poisoning the finished
        cells.  Completed cells land in the shared joint-vector cache,
        so a retry of the same grid resumes where this call stopped.

        *executor* shards the cells over crash-isolated worker
        processes (``"process"`` or a :class:`~repro.exec.\
ProcessShardExecutor`) instead of in-process threads; *checkpoint* (a
        path) additionally makes every completed cell durable, so the
        grid survives the death of this process and a re-run resumes
        from the file.  Results are bit-identical in all
        configurations.
        """
        from dataclasses import replace
        phi = set(self.satisfaction_set(left))
        psi = set(self.satisfaction_set(right))
        reduced = until_reduction(self.model, phi, psi)
        pre = prepass.prepare(reduced, psi, mode=self.lump)
        if pre is not None:
            partial = self.engine.joint_probability_sweep_partial(
                pre.quotient, times, rewards, pre.psi_blocks,
                deadline=deadline, max_workers=max_workers,
                executor=executor, checkpoint=checkpoint)
            partial = replace(partial,
                              grid=partial.grid[..., pre.block_of])
        else:
            partial = self.engine.joint_probability_sweep_partial(
                reduced, times, rewards, psi, deadline=deadline,
                max_workers=max_workers, executor=executor,
                checkpoint=checkpoint)
        return replace(partial, grid=np.clip(partial.grid, 0.0, 1.0))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    @staticmethod
    def _normalize(formula: FormulaLike) -> ast.StateFormula:
        if isinstance(formula, str):
            return parse_formula(formula)
        if not isinstance(formula, ast.StateFormula):
            raise FormulaError(
                f"expected a state formula or string, got {formula!r}")
        return formula

    def _compute_sat(self, formula: ast.StateFormula) -> FrozenSet[int]:
        n = self.model.num_states
        if isinstance(formula, ast.TrueFormula):
            return frozenset(range(n))
        if isinstance(formula, ast.FalseFormula):
            return frozenset()
        if isinstance(formula, ast.Atomic):
            return frozenset(self.model.states_with(formula.name))
        if isinstance(formula, ast.Not):
            return frozenset(range(n)) - self.satisfaction_set(
                formula.operand)
        if isinstance(formula, ast.And):
            return (self.satisfaction_set(formula.left)
                    & self.satisfaction_set(formula.right))
        if isinstance(formula, ast.Or):
            return (self.satisfaction_set(formula.left)
                    | self.satisfaction_set(formula.right))
        if isinstance(formula, ast.Implies):
            left = self.satisfaction_set(formula.left)
            right = self.satisfaction_set(formula.right)
            return (frozenset(range(n)) - left) | right
        if isinstance(formula, (ast.Prob, ast.SteadyState, ast.Reward)):
            return self.check(formula).states
        raise FormulaError(f"unknown state formula {formula!r}")

    def expected_reward_vector(self,
                               query: ast.RewardQuery) -> np.ndarray:
        """Per-state expected value of an ``R``-operator query."""
        if isinstance(query, ast.InstantaneousReward):
            return reward_op.instantaneous_reward_vector(
                self.model, query.time, epsilon=self.epsilon)
        if isinstance(query, ast.CumulativeReward):
            return reward_op.cumulative_reward_vector(
                self.model, query.time, epsilon=self.epsilon)
        if isinstance(query, ast.ReachabilityReward):
            phi = set(self.satisfaction_set(query.operand))
            return reward_op.reachability_reward_vector(
                self.model, phi, solver=self.solver)
        if isinstance(query, ast.SteadyStateReward):
            from repro.mc.measures import long_run_reward_rate
            return long_run_reward_rate(self.model)
        raise FormulaError(f"unknown reward query {query!r}")

    def _until_probabilities(self, path: ast.Until) -> np.ndarray:
        phi = set(self.satisfaction_set(path.left))
        psi = set(self.satisfaction_set(path.right))
        time, reward = path.time, path.reward
        # With an all-zero reward structure (and no impulses) Y_t = 0,
        # so any bound of the form [0, r] is vacuously met and the
        # reward dimension drops.
        reward_trivial = reward.is_trivial or (
            reward.lower == 0.0
            and not np.any(self.model.rewards > 0.0)
            and not self.model.has_impulse_rewards)
        if time.is_trivial and reward_trivial:
            return until.unbounded_until(self.model, phi, psi,
                                         solver=self.solver)
        if reward_trivial:
            return until.time_bounded_until(self.model, phi, psi, time,
                                            epsilon=self.epsilon)
        if time.is_trivial:
            return until.reward_bounded_until(self.model, phi, psi,
                                              reward, epsilon=self.epsilon)
        if self.preflight:
            self._preflight_until(phi, psi, path)
        return until.time_reward_bounded_until(self.model, phi, psi,
                                               time, reward, self.engine,
                                               lump=self.lump)

    def _preflight_until(self, phi, psi, path: ast.Until) -> None:
        """Static gate before the joint-distribution engine runs.

        The compatibility verdict is taken on the *reduced* model of
        Theorem 1, not the original: absorbing the ``psi`` and failure
        states clears their impulse rows, so a model that carries
        impulses only on absorbed transitions is legitimately fine for
        an engine without impulse support.
        """
        from repro.analysis import QueryProfile, engine_compatibility
        from repro.errors import PreflightError
        with obs_span("preflight", engine=self.engine.name):
            reduced = until_reduction(self.model, phi, psi)
            query = QueryProfile.from_formula(ast.Prob("<", 1.0, path))
            findings = [d for d in engine_compatibility(self.engine,
                                                        reduced, query)
                        if d.severity.label == "error"]
        if findings:
            details = "; ".join(
                f"[{d.code}] {d.message}" for d in findings)
            raise PreflightError(
                f"pre-flight analysis vetoed the {self.engine.name} "
                f"engine for this query: {details} (pass "
                f"preflight=False to force the run)",
                diagnostics=findings)

    def lint(self, formula: FormulaLike = None):
        """Static diagnostics for this model/engine (and *formula*).

        Runs every :mod:`repro.analysis` pass family that applies and
        returns the :class:`~repro.analysis.AnalysisReport` -- the
        programmatic face of ``repro lint``.
        """
        from repro import analysis
        return analysis.lint(model=self.model, formula=formula,
                             engine=self.engine)
    # ------------------------------------------------------------------

    def clear_cache(self) -> None:
        """Drop all memoised satisfaction sets."""
        self._cache.clear()

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(model={self.model!r}, "
                f"engine={self.engine!r})")
