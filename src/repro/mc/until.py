"""Numerical procedures for the four until variants (P0--P3).

Each function returns the per-state probability vector of the path
formula ``Phi U_I^J Psi`` -- entry ``s`` is the probability measure of
the satisfying paths starting in ``s``.  The caller (the model
checker) compares against the probability bound.

* :func:`unbounded_until` -- "P0", no bounds: Prob0/Prob1 graph
  precomputation plus one sparse linear solve on the embedded DTMC
  (the procedure of Hansson & Jonsson cited by the paper).
* :func:`time_bounded_until` -- "P1", ``I = [0, t]``: make decided
  states absorbing and read the probability mass in ``Sat(Psi)`` off a
  transient analysis at ``t`` (Baier et al. 2000).  A general interval
  ``I = [t1, t2]`` is supported through the standard two-phase scheme.
* :func:`reward_bounded_until` -- "P2", ``J = [0, r]``: swap the
  reward bound into a time bound via the duality transformation and
  run the P1 procedure on the dual model.
* :func:`time_reward_bounded_until` -- "P3", both bounds: Theorem 1
  reduction followed by a joint-distribution engine (Section 4).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Set

import numpy as np

from repro.algorithms.base import JointEngine
from repro.ctmc.mrm import MarkovRewardModel
from repro.errors import NumericalError, UnsupportedFormulaError
from repro.logic.intervals import Interval
from repro.mc import prepass
from repro.mc.transform import (until_reduction, dual_model,
                                eliminate_zero_reward_states)
from repro.numerics.dtmc import reachability_probabilities
from repro.numerics.uniformization import transient_target_probabilities


def _indicator(num_states: int, members: Set[int]) -> np.ndarray:
    vector = np.zeros(num_states)
    for s in members:
        vector[s] = 1.0
    return vector


def unbounded_until(model: MarkovRewardModel,
                    phi: Set[int],
                    psi: Set[int],
                    solver: str = "direct") -> np.ndarray:
    """Per-state probability of ``Phi U Psi`` (property class P0)."""
    return reachability_probabilities(model, phi, psi, method=solver)


def time_bounded_until(model: MarkovRewardModel,
                       phi: Set[int],
                       psi: Set[int],
                       time: Interval,
                       epsilon: float = 1e-12) -> np.ndarray:
    """Per-state probability of ``Phi U^I Psi`` (property class P1).

    ``I = [0, t]`` uses one transient analysis on the reduced chain;
    ``I = [t1, t2]`` with ``t1 > 0`` uses the two-phase scheme: the
    path must stay in ``Phi`` throughout ``[0, t1]`` and then satisfy
    a ``[0, t2 - t1]``-bounded until from wherever it is at ``t1``.
    """
    if math.isinf(time.upper):
        if time.lower == 0.0:
            return unbounded_until(model, phi, psi)
        raise UnsupportedFormulaError(
            f"time interval {time} with an infinite upper and positive "
            f"lower bound is not supported")
    horizon = time.upper - time.lower
    reduced = until_reduction(model, phi, psi)
    probabilities = transient_target_probabilities(
        reduced, horizon, _indicator(model.num_states, psi),
        epsilon=epsilon)
    if time.lower == 0.0:
        return np.clip(probabilities, 0.0, 1.0)
    # Phase 1: survive in Phi until t1.  Outside Phi the path is dead,
    # so make non-Phi states absorbing and zero their contribution.
    phi_indicator = _indicator(model.num_states, phi)
    survivor = until_reduction(model, phi, set())  # absorb !Phi states
    staged = transient_target_probabilities(
        survivor, time.lower, probabilities * phi_indicator,
        epsilon=epsilon)
    return np.clip(staged, 0.0, 1.0)


def reward_bounded_until(model: MarkovRewardModel,
                         phi: Set[int],
                         psi: Set[int],
                         reward: Interval,
                         epsilon: float = 1e-12) -> np.ndarray:
    """Per-state probability of ``Phi U_J Psi`` (property class P2).

    The reduction is applied first (which also zeroes the rewards of
    the decided states, keeping the duality well defined there), then
    the dual model turns the reward bound into a time bound.
    """
    if reward.lower != 0.0:
        raise UnsupportedFormulaError(
            f"reward interval {reward} does not start at 0; no "
            f"computational procedure is available (see Section 6)")
    if math.isinf(reward.upper):
        return unbounded_until(model, phi, psi)
    reduced = until_reduction(model, phi, psi)
    if np.any((reduced.rewards == 0.0) & (reduced.exit_rates > 0.0)):
        # The duality needs positive rewards on non-absorbing states;
        # zero-reward states are time-abstractly eliminable first
        # (sojourns there are free in the reward dimension).
        elimination = eliminate_zero_reward_states(reduced)
        kept_psi = [elimination.kept.index(s) for s in psi
                    if s in set(elimination.kept)]
        dual = dual_model(elimination.model)
        kept_values = transient_target_probabilities(
            dual, reward.upper,
            _indicator(elimination.model.num_states, set(kept_psi)),
            epsilon=epsilon)
        probabilities = elimination.lift(kept_values,
                                         model.num_states)
        return np.clip(probabilities, 0.0, 1.0)
    dual = dual_model(reduced)
    probabilities = transient_target_probabilities(
        dual, reward.upper, _indicator(model.num_states, psi),
        epsilon=epsilon)
    return np.clip(probabilities, 0.0, 1.0)


def time_reward_bounded_until(model: MarkovRewardModel,
                              phi: Set[int],
                              psi: Set[int],
                              time: Interval,
                              reward: Interval,
                              engine: JointEngine,
                              lump: prepass.LumpMode = "auto"
                              ) -> np.ndarray:
    """Per-state probability of ``Phi U_I^J Psi`` (property class P3).

    Theorem 1 reduces the problem to the joint probability
    ``Pr{Y_t <= r, X_t in Sat(Psi)}`` on the transformed model, which
    *engine* computes (Theorem 2).  When the reduced model admits a
    non-trivial ordinary lumping the engine runs on the quotient and
    the per-block answers are read back through ``block_of`` -- an
    exact rewrite, see :mod:`repro.mc.prepass` (*lump* = ``False``
    disables it).

    A single batched :meth:`JointEngine.joint_probability_vector` call
    covers **all** initial states in one propagation (no per-state
    loop), and its result is memoised in the shared joint-vector cache
    keyed by the reduced model's content fingerprint -- repeating an
    identical check is a cache hit even though ``until_reduction``
    rebuilds the reduced model object each time.
    """
    if time.lower != 0.0 or reward.lower != 0.0:
        raise UnsupportedFormulaError(
            f"intervals {time}/{reward} do not start at 0; no "
            f"computational procedure is available (see Section 6)")
    if math.isinf(time.upper):
        return reward_bounded_until(model, phi, psi, reward)
    if math.isinf(reward.upper):
        return time_bounded_until(model, phi, psi, time)
    reduced = until_reduction(model, phi, psi)
    pre = prepass.prepare(reduced, psi, mode=lump)
    if pre is not None:
        vector = engine.joint_probability_vector(
            pre.quotient, time.upper, reward.upper, pre.psi_blocks)
        vector = vector[pre.block_of]
    else:
        vector = engine.joint_probability_vector(
            reduced, time.upper, reward.upper, psi)
    return np.clip(vector, 0.0, 1.0)


def time_reward_bounded_until_interval(model: MarkovRewardModel,
                                       phi: Set[int],
                                       psi: Set[int],
                                       time: Interval,
                                       reward: Interval,
                                       engine: JointEngine,
                                       lump: prepass.LumpMode = "auto"
                                       ) -> "tuple[np.ndarray, np.ndarray]":
    """Certified per-state bounds on ``Phi U_I^J Psi`` (class P3).

    The Theorem 1 reduction is exact, so a sound enclosure of the
    joint probability on the reduced model (the engine's
    :meth:`~repro.algorithms.base.JointEngine.\
joint_probability_interval`) is a sound enclosure of the until
    probability; returns ``(lower, upper)`` vectors with
    ``lower[s] <= Pr{s |= Phi U_I^J Psi} <= upper[s]``.  The lumping
    pre-pass (:mod:`repro.mc.prepass`) composes soundly: the quotient
    is exactly equivalent, so its enclosure lifts per block.
    """
    if time.lower != 0.0 or reward.lower != 0.0:
        raise UnsupportedFormulaError(
            f"intervals {time}/{reward} do not start at 0; no "
            f"computational procedure is available (see Section 6)")
    if math.isinf(time.upper) or math.isinf(reward.upper):
        raise UnsupportedFormulaError(
            "certified intervals need finite time and reward bounds; "
            "check unbounded formulas with the exact P0-P2 procedures")
    reduced = until_reduction(model, phi, psi)
    pre = prepass.prepare(reduced, psi, mode=lump)
    if pre is not None:
        lower, upper = engine.joint_probability_interval(
            pre.quotient, time.upper, reward.upper, pre.psi_blocks)
        lower, upper = lower[pre.block_of], upper[pre.block_of]
    else:
        lower, upper = engine.joint_probability_interval(
            reduced, time.upper, reward.upper, psi)
    return np.clip(lower, 0.0, 1.0), np.clip(upper, 0.0, 1.0)


def time_reward_bounded_until_sweep(model: MarkovRewardModel,
                                    phi: Set[int],
                                    psi: Set[int],
                                    times: Sequence[float],
                                    rewards: Sequence[float],
                                    engine: JointEngine,
                                    lump: prepass.LumpMode = "auto",
                                    executor=None,
                                    checkpoint=None) -> np.ndarray:
    """P3 probabilities for a whole ``(t, r)`` grid of bounds.

    Returns the ``(len(times), len(rewards), |S|)`` array whose cell
    ``[i, j]`` equals :func:`time_reward_bounded_until` with
    ``I = [0, times[i]]`` and ``J = [0, rewards[j]]``.  The Theorem 1
    reduction is performed **once** -- it only depends on the
    satisfaction sets, not on the bounds -- and the engine evaluates
    the grid with its shared-prefix sweep
    (:meth:`JointEngine.joint_probability_sweep`) instead of one
    propagation per bound pair.  All bounds must be finite; unbounded
    rows or columns belong to the cheaper P0--P2 procedures.

    With *executor* (``"process"`` or a
    :class:`~repro.exec.ProcessShardExecutor`) and/or *checkpoint*
    (a path) the grid is evaluated cell by cell through the
    fault-tolerant partial-sweep machinery instead of the all-or-
    nothing shared-prefix run, with durable per-cell progress; values
    are bit-identical.  This full-grid entry point still promises a
    complete grid, so cells that permanently failed raise a
    :class:`~repro.errors.ParallelExecutionError` carrying every
    per-cell failure (resuming from the checkpoint retries only the
    missing cells).
    """
    for t in times:
        if math.isinf(t):
            raise UnsupportedFormulaError(
                "sweep grids need finite time bounds; check an "
                "unbounded formula separately")
    for r in rewards:
        if math.isinf(r):
            raise UnsupportedFormulaError(
                "sweep grids need finite reward bounds; check an "
                "unbounded formula separately")
    reduced = until_reduction(model, phi, psi)
    pre = prepass.prepare(reduced, psi, mode=lump)
    work_model = reduced if pre is None else pre.quotient
    work_target = psi if pre is None else pre.psi_blocks
    if executor is not None or checkpoint is not None:
        partial = engine.joint_probability_sweep_partial(
            work_model, times, rewards, work_target,
            executor=executor, checkpoint=checkpoint)
        if not partial.complete:
            from repro.errors import ParallelExecutionError, WorkerError
            failures = list(partial.failures)
            if not failures:
                failures = [
                    WorkerError(pos, NumericalError("cell not evaluated"),
                                f"cell (t={times[i]}, r={rewards[j]})")
                    for pos, (i, j) in enumerate(partial.unevaluated)]
            raise ParallelExecutionError(
                failures, len(times) * len(rewards))
        grid = np.asarray(partial.grid)
    else:
        grid = np.asarray(engine.joint_probability_sweep(
            work_model, times, rewards, work_target))
    if pre is not None:
        grid = grid[..., pre.block_of]
    return np.clip(grid, 0.0, 1.0)
