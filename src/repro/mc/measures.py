"""Classic performability measures on top of the CSRL machinery.

CSRL subsumes the well-known performability measures; this module
gives them first-class names:

* :func:`performability_distribution` -- Meyer's performability
  distribution ``Pr{Y_t <= r}`` of the accumulated reward (Meyer
  1980/1982), computed with any of the joint-distribution engines by
  taking the whole state space as target;
* :func:`expected_reward_rate` / :func:`expected_accumulated_reward`
  -- first moments, via uniformisation;
* :func:`long_run_reward_rate` -- the steady-state expected reward
  rate ``sum_s pi(s) rho(s)`` (per initial state when the chain is
  reducible).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.algorithms.base import JointEngine, get_engine
from repro.ctmc.mrm import MarkovRewardModel
from repro.numerics.dtmc import reachability_probabilities
from repro.numerics.linear import bscc_stationary_distributions
from repro.numerics.uniformization import (
    expected_accumulated_reward as _expected_accumulated_reward,
    expected_instantaneous_reward as _expected_instantaneous_reward,
)

EngineLike = Union[None, str, JointEngine]


def _resolve_engine(engine: EngineLike) -> JointEngine:
    if engine is None:
        return get_engine("sericola")
    if isinstance(engine, str):
        return get_engine(engine)
    return engine


def performability_distribution(model: MarkovRewardModel,
                                t: float,
                                r: float,
                                engine: EngineLike = None,
                                initial: Optional[Sequence[float]] = None
                                ) -> float:
    """Meyer's performability distribution ``Pr{Y_t <= r}``.

    The accumulated reward over ``[0, t]`` is the "performability"
    variable of Meyer's framework; its distribution is the special
    case of the joint measure with the full state space as target.
    """
    resolved = _resolve_engine(engine)
    return resolved.joint_probability(model, t, r,
                                      range(model.num_states),
                                      initial=initial)


def performability_distribution_vector(model: MarkovRewardModel,
                                       t: float,
                                       r: float,
                                       engine: EngineLike = None
                                       ) -> np.ndarray:
    """``Pr{Y_t <= r | X_0 = s}`` for every state ``s``."""
    resolved = _resolve_engine(engine)
    return resolved.joint_probability_vector(model, t, r,
                                             range(model.num_states))


def expected_reward_rate(model: MarkovRewardModel, t: float,
                         epsilon: float = 1e-12) -> float:
    """``E[rho(X_t)]`` -- the expected instantaneous reward rate."""
    return _expected_instantaneous_reward(model, t, epsilon=epsilon)


def expected_accumulated_reward(model: MarkovRewardModel, t: float,
                                epsilon: float = 1e-12) -> float:
    """``E[Y_t]`` -- the expected accumulated reward up to time ``t``."""
    return _expected_accumulated_reward(model, t, epsilon=epsilon)


def long_run_reward_rate(model: MarkovRewardModel) -> np.ndarray:
    """Per-initial-state long-run expected reward rate.

    ``lim_{t->inf} E[rho(X_t) | X_0 = s]``, computed from the BSCC
    stationary distributions weighted by their reachability
    probabilities.
    """
    n = model.num_states
    everything = set(range(n))
    result = np.zeros(n)
    for members, distribution in bscc_stationary_distributions(model):
        rate = sum(p * model.reward(s)
                   for s, p in zip(members, distribution))
        if rate == 0.0:
            continue
        reach = reachability_probabilities(model, everything, set(members))
        result += rate * reach
    return result
