"""Per-query resource budgets for certified checking.

A :class:`Budget` bounds one certified query along two axes: a
wall-clock *deadline* and a maximum number of *refinement rounds*
(each evaluation of one engine at one accuracy setting is a round).
The :class:`~repro.mc.certified.CertifiedChecker` consumes rounds
before every engine run and stops refining -- degrading to the next
engine, or reporting UNKNOWN -- once either axis is exhausted, so a
query near a probability threshold can never refine forever.

Budgets are *per query*: :meth:`Budget.restart` rewinds both axes, and
the checker restarts the budget at the beginning of every ``check``
call, so one Budget object can be attached to a checker and reused.
"""

from __future__ import annotations

import math
import time
from typing import Optional

from repro.errors import NumericalError


class Budget:
    """Wall-clock and refinement-round budget of one certified query.

    Parameters
    ----------
    seconds:
        Wall-clock allowance; ``None`` means unlimited.  Measured with
        ``time.monotonic`` from the most recent :meth:`restart`.
    max_rounds:
        Total number of engine evaluations (initial runs *and*
        refinements, across the whole fallback chain) the query may
        spend; ``None`` means unlimited.

    >>> budget = Budget(max_rounds=2)
    >>> budget.take_round(), budget.take_round(), budget.take_round()
    (True, True, False)
    """

    def __init__(self, seconds: Optional[float] = None,
                 max_rounds: Optional[int] = None):
        if seconds is not None and (
                not math.isfinite(seconds) or seconds <= 0.0):
            raise NumericalError(
                f"budget seconds must be positive and finite, "
                f"got {seconds}")
        if max_rounds is not None and max_rounds < 1:
            raise NumericalError(
                f"budget max_rounds must be >= 1, got {max_rounds}")
        self.seconds = None if seconds is None else float(seconds)
        self.max_rounds = (None if max_rounds is None
                           else int(max_rounds))
        self.rounds_used = 0
        self._start = time.monotonic()

    @classmethod
    def unlimited(cls) -> "Budget":
        """A budget that never expires."""
        return cls()

    def restart(self) -> "Budget":
        """Rewind both axes (new query); returns self for chaining."""
        self.rounds_used = 0
        self._start = time.monotonic()
        return self

    @property
    def deadline(self) -> Optional[float]:
        """Absolute ``time.monotonic()`` deadline, or ``None``."""
        if self.seconds is None:
            return None
        return self._start + self.seconds

    def remaining_seconds(self) -> float:
        """Wall-clock time left (``inf`` when unlimited)."""
        if self.seconds is None:
            return math.inf
        return max(0.0, self._start + self.seconds - time.monotonic())

    @property
    def expired(self) -> bool:
        """Whether the wall-clock deadline has passed."""
        return self.remaining_seconds() <= 0.0

    @property
    def rounds_exhausted(self) -> bool:
        """Whether every refinement round has been spent."""
        return (self.max_rounds is not None
                and self.rounds_used >= self.max_rounds)

    def take_round(self) -> bool:
        """Consume one refinement round if any resource remains.

        Returns ``False`` -- without consuming -- when the deadline
        has passed or all rounds are spent; the caller then stops
        computing and reports with what it has.
        """
        if self.expired or self.rounds_exhausted:
            return False
        self.rounds_used += 1
        return True

    def __repr__(self) -> str:
        return (f"Budget(seconds={self.seconds}, "
                f"max_rounds={self.max_rounds}, "
                f"rounds_used={self.rounds_used})")
