"""Procedures behind the expected-reward operator ``R <|b [ . ]``.

Three query forms, each returning a per-initial-state vector of
expected values:

* instantaneous (``I=t``): ``E[rho(X_t) | X_0 = s]``, one backward
  uniformisation run with the reward vector as terminal weight;
* cumulative (``C<=t``): ``E[Y_t | X_0 = s]``, via the Poisson-tail
  integration of the uniformisation series;
* reachability (``F Phi``): the expected reward accumulated until the
  first Phi-state, by one sparse linear solve -- infinite (numpy
  ``inf``) for states that do not reach Phi almost surely, following
  the usual convention.
"""

from __future__ import annotations

from typing import Optional, Set

import numpy as np
import scipy.sparse as sp

from repro.ctmc import graph
from repro.ctmc.mrm import MarkovRewardModel
from repro.errors import NumericalError
from repro.numerics.linear import solve_linear_system
from repro.numerics.poisson import poisson_weights
from repro.numerics.uniformization import transient_target_probabilities


def instantaneous_reward_vector(model: MarkovRewardModel,
                                t: float,
                                epsilon: float = 1e-12) -> np.ndarray:
    """``E[rho(X_t) | X_0 = s]`` for every state ``s``."""
    return transient_target_probabilities(model, t, model.rewards,
                                          epsilon=epsilon)


def cumulative_reward_vector(model: MarkovRewardModel,
                             t: float,
                             epsilon: float = 1e-12) -> np.ndarray:
    """``E[Y_t | X_0 = s]`` for every state ``s``.

    Uses ``int_0^t P^(u) rho du = (1/lambda) sum_k T_{k+1} P^k rho``
    with ``T_k`` the Poisson tail mass beyond ``k``.
    """
    if t < 0.0:
        raise NumericalError(f"time must be >= 0, got {t}")
    if t == 0.0:
        return np.zeros(model.num_states)
    rate = model.max_exit_rate
    if rate == 0.0:
        return model.rewards * t
    matrix = model.uniformized_dtmc_matrix(rate)
    weights = poisson_weights(rate * t, epsilon=epsilon)
    tails = weights.tail_from()

    vector = model.rewards.astype(float).copy()
    total = np.zeros_like(vector)
    for k in range(weights.right + 1):
        if k + 1 <= weights.left:
            tail = 1.0
        else:
            index = k + 1 - weights.left
            tail = float(tails[index]) if index < len(tails) else 0.0
        total += tail * vector
        if k < weights.right:
            vector = matrix @ vector
    return total / rate


def reachability_reward_vector(model: MarkovRewardModel,
                               phi: Set[int],
                               solver: str = "direct") -> np.ndarray:
    """Expected reward until first reaching *phi*, per initial state.

    For a non-*phi* state ``s`` the expectation satisfies

        x_s = rho(s) / E(s) + sum_{s'} P_jump(s, s') x_{s'}

    (``rho(s)/E(s)`` is the expected sojourn reward).  States from
    which *phi* is not reached with probability one get ``inf``.
    """
    n = model.num_states
    certain = graph.prob1_states(model, set(range(n)), set(phi))
    result = np.full(n, np.inf)
    for s in phi:
        result[s] = 0.0
    solve_states = sorted(certain - set(phi))
    if not solve_states:
        return result
    index = {s: i for i, s in enumerate(solve_states)}

    exit_rates = model.exit_rates
    rows = []
    cols = []
    vals = []
    rhs = np.zeros(len(solve_states))
    matrix = model.rate_matrix
    for s in solve_states:
        i = index[s]
        rate = exit_rates[s]
        # rate > 0 is guaranteed: an absorbing non-phi state cannot
        # reach phi with probability one.
        rhs[i] = model.reward(s) / rate
        rows.append(i)
        cols.append(i)
        vals.append(1.0)
        row = matrix.getrow(s)
        for target, transition_rate in zip(row.indices, row.data):
            target = int(target)
            if target in index:
                rows.append(i)
                cols.append(index[target])
                vals.append(-float(transition_rate) / rate)
    system = sp.coo_matrix((vals, (rows, cols)),
                           shape=(len(solve_states),) * 2).tocsr()
    system.sum_duplicates()
    solution = solve_linear_system(system, rhs, method=solver)
    for s, i in index.items():
        result[s] = max(0.0, float(solution[i]))
    return result
