"""The steady-state operator ``S<|p(Phi)``.

The paper omits this CSL operator (it focuses on the transient
fragment); it is included here for completeness following the
procedure of Baier/Katoen/Hermanns: the long-run probability of the
``Phi``-states from initial state ``s`` is

    pi_s(Phi) = sum_{B in BSCC} Pr{reach B from s} * pi_B(Sat(Phi) & B)

where ``pi_B`` is the stationary distribution of the bottom strongly
connected component ``B``.  Reaching a BSCC is an unbounded
reachability problem (one sparse solve per BSCC); the stationary
distributions need one solve per BSCC.
"""

from __future__ import annotations

from typing import Set

import numpy as np

from repro.ctmc.mrm import MarkovRewardModel
from repro.numerics.dtmc import reachability_probabilities
from repro.numerics.linear import bscc_stationary_distributions


def steady_state_probabilities(model: MarkovRewardModel,
                               phi: Set[int]) -> np.ndarray:
    """Per-initial-state long-run probability of the *phi*-states."""
    n = model.num_states
    everything = set(range(n))
    result = np.zeros(n)
    for members, distribution in bscc_stationary_distributions(model):
        weight = sum(p for s, p in zip(members, distribution) if s in phi)
        if weight == 0.0:
            continue
        reach = reachability_probabilities(model, everything, set(members))
        result += weight * reach
    return np.clip(result, 0.0, 1.0)
