"""Certified checking with adaptive refinement and graceful degradation.

The plain :class:`~repro.mc.checker.ModelChecker` compares a *point*
estimate against the probability bound of ``P<|p [ phi ]`` -- when the
estimate sits within numerical error of the threshold, the boolean
answer is a coin flip.  The :class:`CertifiedChecker` instead asks each
joint-distribution engine for a **sound enclosure** ``[lower, upper]``
of the probability (see
:meth:`~repro.algorithms.base.JointEngine.joint_probability_interval`)
and derives a three-valued :class:`~repro.mc.result.Verdict`:

* ``TRUE`` / ``FALSE`` -- the whole interval is on one side of the
  threshold; the answer is certified.
* ``UNKNOWN`` -- the interval straddles the threshold.  The checker
  then *refines* the engine (smaller ``d``, more phases, tighter
  ``epsilon``) and retries, as long as the per-query :class:`Budget`
  has wall-clock and rounds left.

When an engine fails -- a :class:`~repro.errors.NumericalError` from
underflow or non-convergence, or it cannot refine any further -- the
checker **degrades** to the next engine of its fallback chain instead
of crashing, and every failure is recorded on the result so the
degradation is visible, never silent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.algorithms.base import JointEngine, get_engine
from repro.ctmc.mrm import MarkovRewardModel
from repro.errors import NumericalError, UnsupportedFormulaError
from repro.exec import BREAKERS, breaker_key
from repro.logic import ast
from repro.mc import until
from repro.mc.budget import Budget
from repro.mc.checker import FormulaLike, ModelChecker
from repro.mc.result import Verdict, interval_verdict
from repro.obs import OBS
from repro.obs import span as obs_span

#: Default fallback chain: the a-priori-bounded Sericola engine first
#: (tightest certificates), then the pseudo-Erlang expansion, then the
#: Tijms--Veldman discretisation as the robust workhorse of last resort.
DEFAULT_CHAIN: Tuple[str, ...] = ("sericola", "erlang", "discretization")


@dataclass(frozen=True)
class EngineFailure:
    """One engine's failure on the way down the fallback chain.

    ``skipped_static`` marks engines the static compatibility analysis
    (:func:`repro.analysis.engine_compatibility`) ruled out *before*
    any invocation -- the engine never ran, so no runtime error was
    paid for the knowledge.  ``skipped_breaker`` marks engines whose
    circuit breaker (:data:`repro.exec.BREAKERS`) was open from recent
    repeated failures: the chain degrades past them immediately rather
    than paying for another likely failure, and retries once the
    breaker's cooldown admits a probe.  ``flight_tail`` carries the
    dying worker's last flight-recorder events when the failure came
    out of a process-executor run (see
    :class:`repro.obs.recorder.FlightRecorder`); ``repro check -v``
    prints them so "what was the worker doing when it died" survives
    all the way up the chain.
    """

    engine: str
    reason: str
    skipped_static: bool = False
    skipped_breaker: bool = False
    flight_tail: Tuple = ()

    def __str__(self) -> str:
        if self.skipped_static:
            prefix = "skipped (static): "
        elif self.skipped_breaker:
            prefix = "skipped (breaker): "
        else:
            prefix = ""
        return f"{self.engine}: {prefix}{self.reason}"


def _flight_tail_of(exc: BaseException) -> Tuple:
    """The flight-recorder tail riding on *exc*, if any.

    Process-executor failures carry the victim's last recorded events
    either directly (:class:`~repro.errors.WorkerError` /
    :class:`~repro.errors.WorkerCrashError`) or nested inside a
    :class:`~repro.errors.ParallelExecutionError`'s per-task failures;
    the first non-empty tail wins.
    """
    tail = getattr(exc, "flight_tail", ())
    if tail:
        return tuple(tail)
    for failure in getattr(exc, "failures", ()):
        tail = getattr(failure, "flight_tail", ())
        if tail:
            return tuple(tail)
    return ()


@dataclass(frozen=True)
class CertifiedCheckResult:
    """Outcome of one certified query.

    Attributes
    ----------
    formula:
        The checked ``P<|p`` state formula.
    verdict:
        Three-valued answer under the model's initial distribution:
        ``TRUE``/``FALSE`` only when certified for **every** state
        carrying initial probability mass.
    lower, upper:
        Certified per-state probability bounds from the narrowest
        enclosure any engine produced (``lower[s] <= Pr{s |= phi} <=
        upper[s]``).
    state_verdicts:
        Per-state three-valued verdicts against the formula's bound.
    engine:
        Name of the engine that produced the reported enclosure, or
        ``None`` when every engine failed before producing one.
    rounds_used:
        Engine evaluations spent (initial runs plus refinements,
        across the whole chain).
    failures:
        Everything that went wrong along the way -- engine errors,
        refinement floors, budget exhaustion -- in occurrence order.
        Empty for a clean first-try certification.
    model:
        The model the query ran on.
    """

    formula: ast.StateFormula
    verdict: Verdict
    lower: np.ndarray
    upper: np.ndarray
    state_verdicts: Tuple[Verdict, ...]
    engine: Optional[str]
    rounds_used: int
    failures: Tuple[EngineFailure, ...]
    model: MarkovRewardModel

    @property
    def width(self) -> float:
        """Widest per-state enclosure (``inf`` when no engine ran)."""
        spread = self.upper - self.lower
        if not np.all(np.isfinite(spread)):
            return float("inf")
        return float(np.max(spread)) if spread.size else 0.0

    @property
    def degraded(self) -> bool:
        """Whether any engine failed before the reported enclosure."""
        return bool(self.failures)

    def verdict_of(self, state: int) -> Verdict:
        """The certified verdict for one state."""
        return self.state_verdicts[state]

    def __str__(self) -> str:
        engine = self.engine or "none"
        return (f"{self.formula}: {self.verdict} "
                f"[engine={engine}, rounds={self.rounds_used}, "
                f"width={self.width:.2e}, "
                f"failures={len(self.failures)}]")


def _initial_verdict(model: MarkovRewardModel,
                     state_verdicts: Sequence[Verdict]) -> Verdict:
    """Combine per-state verdicts under the initial distribution.

    Mirrors :attr:`CheckResult.holds_initially`: the formula holds
    initially iff every state with initial mass satisfies it -- so one
    certified FALSE anywhere in the support decides FALSE, and TRUE
    needs certified TRUE everywhere in the support.
    """
    support = [state_verdicts[int(s)]
               for s in np.flatnonzero(model.initial_distribution)]
    if any(v is Verdict.FALSE for v in support):
        return Verdict.FALSE
    if all(v is Verdict.TRUE for v in support):
        return Verdict.TRUE
    return Verdict.UNKNOWN


class CertifiedChecker:
    """Three-valued checker with budgeted refinement and fallback.

    Parameters
    ----------
    model:
        The Markov reward model, or an existing
        :class:`~repro.mc.checker.ModelChecker` to share its formula
        cache (nested subformulas are still checked exactly -- only
        the outermost ``P<|p`` bound is certified).
    chain:
        Fallback chain: engine names or :class:`JointEngine` instances
        tried in order.  Defaults to :data:`DEFAULT_CHAIN`.
    budget:
        Per-query :class:`Budget`; restarted at each :meth:`check`.
        ``None`` means unlimited.
    target_width:
        When set, keep refining past a decided verdict until the
        initial-state enclosure is at most this wide (or the budget or
        the engine's refinement floor stops it).

    Examples
    --------
    >>> from repro.ctmc import ModelBuilder
    >>> builder = ModelBuilder()
    >>> _ = builder.add_state("up", labels=("up",), reward=2.0)
    >>> _ = builder.add_state("down", labels=("down",), reward=0.0)
    >>> builder.add_transition("up", "down", 0.1)
    >>> builder.add_transition("down", "up", 5.0)
    >>> checker = CertifiedChecker(builder.build())
    >>> result = checker.check("P>0.9 [ up U[0,1][0,3] down ]")
    >>> str(result.verdict)
    'FALSE'
    """

    def __init__(self,
                 model: Union[MarkovRewardModel, ModelChecker],
                 chain: Sequence[Union[str, JointEngine]] = DEFAULT_CHAIN,
                 budget: Optional[Budget] = None,
                 target_width: Optional[float] = None,
                 epsilon: float = 1e-12,
                 solver: str = "direct"):
        if isinstance(model, ModelChecker):
            self.checker = model
        else:
            self.checker = ModelChecker(model, epsilon=epsilon,
                                        solver=solver)
        self.model = self.checker.model
        engines = tuple(get_engine(entry) if isinstance(entry, str)
                        else entry for entry in chain)
        if not engines:
            raise NumericalError(
                "the fallback chain must name at least one engine")
        self.chain = engines
        self.budget = budget if budget is not None else Budget.unlimited()
        if target_width is not None and not 0.0 < target_width <= 1.0:
            raise NumericalError(
                f"target_width must be in (0, 1], got {target_width}")
        self.target_width = target_width

    # ------------------------------------------------------------------

    def check(self, formula: FormulaLike) -> CertifiedCheckResult:
        """Certified three-valued check of a ``P<|p [ until ]`` formula.

        Never raises for engine-level numerical trouble: failures feed
        the fallback chain and, in the worst case, an ``UNKNOWN``
        result that says exactly what went wrong.  Formula-level
        problems (not a ``P`` formula, unsupported bounds) still raise,
        since no amount of degradation can fix those.
        """
        formula = ModelChecker._normalize(formula)
        prob, path = self._require_supported(formula)
        phi = set(self.checker.satisfaction_set(path.left))
        psi = set(self.checker.satisfaction_set(path.right))

        budget = self.budget.restart()
        failures: "list[EngineFailure]" = []
        best: Optional[Tuple[float, np.ndarray, np.ndarray, str]] = None

        reduced, query = self._static_workload(phi, psi, path)

        for engine in self.chain:
            veto = self._static_veto(engine, reduced, query)
            if veto is not None:
                failures.append(veto)
                continue  # never invoked; degrade without a round spent
            # Consult -- but never create -- the engine's circuit
            # breaker: an executor run that repeatedly crashed or timed
            # out on this engine/kernel pair opens it, and the chain
            # degrades past the engine while the breaker cools down.
            # allow() on a half-open breaker admits this chain walk as
            # the probe; the outcome below closes or re-opens it.
            breaker = BREAKERS.get(breaker_key(engine))
            if breaker is not None and not breaker.allow():
                failures.append(EngineFailure(
                    engine.name,
                    f"circuit breaker {breaker.key!r} is open "
                    f"({breaker.consecutive_failures} recent failures)",
                    skipped_breaker=True))
                continue
            current: Optional[JointEngine] = engine
            while current is not None:
                if not budget.take_round():
                    failures.append(EngineFailure(
                        current.name,
                        f"budget exhausted before evaluation "
                        f"({budget!r})"))
                    return self._finish(formula, prob, best, failures,
                                        budget)
                if OBS.enabled:
                    OBS.metrics.counter("repro_certified_rounds_total",
                                        engine=current.name).inc()
                try:
                    with obs_span("certified_round", engine=current.name,
                                  round=budget.rounds_used):
                        lower, upper = \
                            until.time_reward_bounded_until_interval(
                                self.model, phi, psi, path.time,
                                path.reward, current,
                                lump=self.checker.lump)
                except UnsupportedFormulaError:
                    raise
                except NumericalError as exc:
                    if breaker is not None:
                        breaker.record_failure()
                    failures.append(EngineFailure(
                        current.name, str(exc),
                        flight_tail=_flight_tail_of(exc)))
                    break  # degrade to the next engine in the chain
                if breaker is not None:
                    # A produced enclosure closes a half-open breaker,
                    # so a consumed probe never leaves it stuck open.
                    breaker.record_success()
                width = self._initial_width(lower, upper)
                if best is None or width < best[0]:
                    best = (width, lower, upper, current.name)
                if self._good_enough(prob, lower, upper, width):
                    return self._finish(formula, prob, best, failures,
                                        budget)
                refined = current.refined()
                if refined is None:
                    failures.append(EngineFailure(
                        current.name,
                        f"cannot refine past its accuracy floor "
                        f"(enclosure width {width:.3e})"))
                current = refined
        return self._finish(formula, prob, best, failures, budget)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    @staticmethod
    def _require_supported(
            formula: ast.StateFormula) -> Tuple[ast.Prob, ast.Until]:
        if not isinstance(formula, ast.Prob):
            raise UnsupportedFormulaError(
                f"certified checking needs an outermost P operator, "
                f"got {formula}")
        path = formula.path
        if isinstance(path, ast.Eventually):
            path = path.as_until()
        if not isinstance(path, ast.Until):
            raise UnsupportedFormulaError(
                f"certified checking covers until path formulas, "
                f"got {formula.path}")
        return formula, path

    def _static_workload(self, phi, psi, path: ast.Until):
        """The reduced model and query profile the chain will face.

        The compatibility verdicts are taken on the Theorem 1
        *reduction* of the model: absorbing the ``psi`` and failure
        states clears their impulse rows, so impulses that sit only on
        absorbed transitions do not disqualify an engine.
        """
        from repro.analysis import QueryProfile
        from repro.mc.transform import until_reduction
        reduced = until_reduction(self.model, phi, psi)
        query = QueryProfile.from_formula(
            ast.Prob("<", 1.0, path))
        return reduced, query

    @staticmethod
    def _static_veto(engine: JointEngine, reduced,
                     query) -> Optional[EngineFailure]:
        """An :class:`EngineFailure` when the static analysis rules the
        engine out for this workload, else ``None``."""
        from repro.analysis import Severity, engine_compatibility
        findings = [d for d in engine_compatibility(engine, reduced,
                                                    query)
                    if d.severity is Severity.ERROR]
        if not findings:
            return None
        reason = "; ".join(f"[{d.code}] {d.message}" for d in findings)
        return EngineFailure(engine.name, reason, skipped_static=True)

    def _initial_width(self, lower: np.ndarray,
                       upper: np.ndarray) -> float:
        """Widest enclosure over the initial-distribution support."""
        support = np.flatnonzero(self.model.initial_distribution)
        if support.size == 0:
            return float(np.max(upper - lower))
        return float(np.max(upper[support] - lower[support]))

    def _good_enough(self, prob: ast.Prob, lower: np.ndarray,
                     upper: np.ndarray, width: float) -> bool:
        verdicts = self._state_verdicts(prob, lower, upper)
        if _initial_verdict(self.model, verdicts) is Verdict.UNKNOWN:
            return False
        if self.target_width is not None:
            return width <= self.target_width
        return True

    @staticmethod
    def _state_verdicts(prob: ast.Prob, lower: np.ndarray,
                        upper: np.ndarray) -> Tuple[Verdict, ...]:
        return tuple(interval_verdict(float(lo), float(up),
                                      prob.comparison, prob.bound)
                     for lo, up in zip(lower, upper))

    def _finish(self, formula: ast.StateFormula, prob: ast.Prob,
                best, failures: "list[EngineFailure]",
                budget: Budget) -> CertifiedCheckResult:
        n = self.model.num_states
        if best is None:
            # Every engine failed before producing an enclosure; the
            # vacuous [0, 1] bounds are still sound, just useless.
            lower, upper = np.zeros(n), np.ones(n)
            engine_name: Optional[str] = None
        else:
            _, lower, upper, engine_name = best
        verdicts = self._state_verdicts(prob, lower, upper)
        return CertifiedCheckResult(
            formula=formula,
            verdict=_initial_verdict(self.model, verdicts),
            lower=lower,
            upper=upper,
            state_verdicts=verdicts,
            engine=engine_name,
            rounds_used=budget.rounds_used,
            failures=tuple(failures),
            model=self.model)

    def __repr__(self) -> str:
        names = ", ".join(e.name for e in self.chain)
        return (f"{type(self).__name__}(chain=[{names}], "
                f"budget={self.budget!r}, "
                f"target_width={self.target_width})")
