"""Results of model-checking runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

import numpy as np

from repro.ctmc.ctmc import CTMC
from repro.logic.ast import StateFormula


@dataclass(frozen=True)
class CheckResult:
    """Outcome of checking a state formula on a model.

    Attributes
    ----------
    formula:
        The checked state formula.
    states:
        The satisfaction set ``Sat(formula)`` as a frozen set of state
        indices.
    probabilities:
        When the outermost operator is ``P<|p`` or ``S<|p``, the
        per-state numerical values that were compared against the
        bound; ``None`` for purely boolean formulas.
    model:
        The model the formula was checked on (used for pretty
        printing with state names).
    """

    formula: StateFormula
    states: FrozenSet[int]
    model: CTMC
    probabilities: Optional[np.ndarray] = None

    def holds_in(self, state: int) -> bool:
        """Whether the formula holds in *state*."""
        return state in self.states

    def __contains__(self, state: int) -> bool:
        return state in self.states

    @property
    def holds_initially(self) -> bool:
        """Whether the formula holds under the model's initial distribution.

        For a point-mass initial distribution this is satisfaction in
        the initial state; for a general distribution we require that
        every state carrying initial mass satisfies the formula.
        """
        alpha = self.model.initial_distribution
        return all(int(s) in self.states for s in np.flatnonzero(alpha))

    def probability_of(self, state: int) -> float:
        """The numerical value computed for *state* (if available)."""
        if self.probabilities is None:
            raise ValueError(
                "no probabilities available: the outermost operator of "
                f"{self.formula} is boolean")
        return float(self.probabilities[state])

    def state_names(self) -> "list[str]":
        """Names of the satisfying states, sorted by index."""
        return [self.model.name_of(s) for s in sorted(self.states)]

    def __str__(self) -> str:
        names = ", ".join(self.state_names())
        return f"Sat({self.formula}) = {{{names}}}"
