"""Results of model-checking runs."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Optional

import numpy as np

from repro.ctmc.ctmc import CTMC
from repro.logic.ast import StateFormula, compare


class Verdict(enum.Enum):
    """Three-valued outcome of a certified threshold comparison.

    ``TRUE``/``FALSE`` are *sound*: every probability inside the
    certified interval is on the same side of the threshold.
    ``UNKNOWN`` means the interval straddles the threshold (or the
    budget ran out before it could be tightened past it) -- the honest
    answer, never a silent guess.
    """

    TRUE = "TRUE"
    FALSE = "FALSE"
    UNKNOWN = "UNKNOWN"

    def __bool__(self) -> bool:
        """Truthiness is *conservative*: only ``TRUE`` is truthy."""
        return self is Verdict.TRUE

    def __str__(self) -> str:
        return self.value


def interval_verdict(lower: float, upper: float, comparison: str,
                     bound: float) -> Verdict:
    """Sound three-valued comparison of ``[lower, upper]`` against a
    ``P <|<=|>|>= bound`` threshold.

    Returns ``TRUE`` when every value in the interval satisfies the
    comparison, ``FALSE`` when none does, ``UNKNOWN`` otherwise.

    >>> interval_verdict(0.4, 0.45, "<", 0.5)
    <Verdict.TRUE: 'TRUE'>
    >>> interval_verdict(0.4, 0.6, "<", 0.5)
    <Verdict.UNKNOWN: 'UNKNOWN'>
    >>> interval_verdict(0.6, 0.7, ">=", 0.5)
    <Verdict.TRUE: 'TRUE'>
    """
    lower, upper = float(lower), float(upper)
    if comparison in ("<", "<="):
        if compare(upper, comparison, bound):
            return Verdict.TRUE
        if not compare(lower, comparison, bound):
            return Verdict.FALSE
    elif comparison in (">", ">="):
        if compare(lower, comparison, bound):
            return Verdict.TRUE
        if not compare(upper, comparison, bound):
            return Verdict.FALSE
    else:
        raise ValueError(f"unknown comparison {comparison!r}")
    return Verdict.UNKNOWN


@dataclass(frozen=True)
class CheckResult:
    """Outcome of checking a state formula on a model.

    Attributes
    ----------
    formula:
        The checked state formula.
    states:
        The satisfaction set ``Sat(formula)`` as a frozen set of state
        indices.
    probabilities:
        When the outermost operator is ``P<|p`` or ``S<|p``, the
        per-state numerical values that were compared against the
        bound; ``None`` for purely boolean formulas.
    model:
        The model the formula was checked on (used for pretty
        printing with state names).
    """

    formula: StateFormula
    states: FrozenSet[int]
    model: CTMC
    probabilities: Optional[np.ndarray] = None

    def holds_in(self, state: int) -> bool:
        """Whether the formula holds in *state*."""
        return state in self.states

    def __contains__(self, state: int) -> bool:
        return state in self.states

    @property
    def holds_initially(self) -> bool:
        """Whether the formula holds under the model's initial distribution.

        For a point-mass initial distribution this is satisfaction in
        the initial state; for a general distribution we require that
        every state carrying initial mass satisfies the formula.
        """
        alpha = self.model.initial_distribution
        return all(int(s) in self.states for s in np.flatnonzero(alpha))

    def probability_of(self, state: int) -> float:
        """The numerical value computed for *state* (if available)."""
        if self.probabilities is None:
            raise ValueError(
                "no probabilities available: the outermost operator of "
                f"{self.formula} is boolean")
        return float(self.probabilities[state])

    def state_names(self) -> "list[str]":
        """Names of the satisfying states, sorted by index."""
        return [self.model.name_of(s) for s in sorted(self.states)]

    def __str__(self) -> str:
        names = ", ".join(self.state_names())
        return f"Sat({self.formula}) = {{{names}}}"
