"""Model transformations used by the until procedures.

Two transformations from the paper and its companion [Baier et al.,
"On the logical specification of performability properties", 2000]:

* :func:`until_reduction` -- Theorem 1 of the paper: for checking
  ``Phi U_I^J Psi`` it suffices to make all ``Psi``-states and all
  ``!(Phi | Psi)``-states absorbing, set their reward to zero, and
  compute reward-bounded instant-of-time reachability of the
  ``Psi``-states on the result.
* :func:`amalgamated_until_reduction` -- the same, but additionally
  collapsing the two absorbing families into a single "goal" and a
  single "fail" state ("we can amalgamate all states satisfying Psi
  and all states satisfying !(Phi | Psi), thereby making the MRM
  considerably smaller").
* :func:`dual_model` -- the time/reward duality: in the dual MRM,
  spending ``r`` reward units corresponds to spending ``r`` time units
  in the original, so a reward-bounded until becomes a time-bounded
  one.  Requires strictly positive rewards on non-absorbing states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import numpy as np
import scipy.sparse as sp

from repro.ctmc.mrm import MarkovRewardModel
from repro.errors import RewardError


def until_reduction(model: MarkovRewardModel,
                    phi: Set[int],
                    psi: Set[int]) -> MarkovRewardModel:
    """Theorem 1: absorb decided states and zero their rewards.

    States in *psi* (the until already holds: trap the path without
    earning further reward) and states outside ``phi | psi`` (the
    until can never hold anymore) lose their outgoing transitions and
    get reward zero.  State indices are preserved, so probabilities
    computed on the result map back one-to-one.
    """
    n = model.num_states
    absorbing = set(psi) | (set(range(n)) - set(phi) - set(psi))
    rates = model.rate_matrix.tolil(copy=True)
    rewards = model.rewards.copy()
    impulses = (model.impulse_matrix.tolil(copy=True)
                if model.has_impulse_rewards else None)
    for s in absorbing:
        rates.rows[s] = []
        rates.data[s] = []
        rewards[s] = 0.0
        if impulses is not None:
            impulses.rows[s] = []
            impulses.data[s] = []
    return MarkovRewardModel(rates.tocsr(),
                             rewards=rewards,
                             labels=model.labels_as_dict(),
                             initial_distribution=model.initial_distribution,
                             state_names=model.state_names,
                             impulse_rewards=(impulses.tocsr()
                                              if impulses is not None
                                              else None))


@dataclass(frozen=True)
class AmalgamatedReduction:
    """Result of :func:`amalgamated_until_reduction`.

    Attributes
    ----------
    model:
        The reduced MRM; its last two states are the amalgamated goal
        and fail states (in that order) -- unless the respective family
        was empty, in which case it is omitted.
    state_map:
        Original state index -> reduced state index.
    goal_state:
        Index of the amalgamated goal state in the reduced model, or
        ``None`` when ``psi`` was empty.
    """
    model: MarkovRewardModel
    state_map: Dict[int, int]
    goal_state: Optional[int]

    def lift(self, reduced_vector: np.ndarray,
             num_original_states: int) -> np.ndarray:
        """Map a per-state vector on the reduced model back to original
        state indices."""
        lifted = np.zeros(num_original_states)
        for original, reduced in self.state_map.items():
            lifted[original] = reduced_vector[reduced]
        return lifted


def amalgamated_until_reduction(model: MarkovRewardModel,
                                phi: Set[int],
                                psi: Set[int]) -> AmalgamatedReduction:
    """Theorem 1 with state amalgamation.

    All goal states collapse into one absorbing goal state, all fail
    states into one absorbing fail state; transient states keep their
    identity (re-indexed).  This is the variant the paper uses on the
    case study (9 states become 3 transient + 2 absorbing).
    """
    n = model.num_states
    psi = set(psi)
    fail = set(range(n)) - set(phi) - psi
    transient = [s for s in range(n) if s not in psi and s not in fail]

    state_map: Dict[int, int] = {}
    for i, s in enumerate(transient):
        state_map[s] = i
    goal_index: Optional[int] = None
    next_index = len(transient)
    if psi:
        goal_index = next_index
        next_index += 1
        for s in psi:
            state_map[s] = goal_index
    fail_index: Optional[int] = None
    if fail:
        fail_index = next_index
        next_index += 1
        for s in fail:
            state_map[s] = fail_index

    size = next_index
    rates = model.rate_matrix.tocoo()
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    transient_set = set(transient)
    for src, dst, rate in zip(rates.row, rates.col, rates.data):
        if int(src) not in transient_set:
            continue  # absorbing in the reduction
        rows.append(state_map[int(src)])
        cols.append(state_map[int(dst)])
        vals.append(float(rate))
    reduced_rates = sp.coo_matrix((vals, (rows, cols)),
                                  shape=(size, size)).tocsr()
    reduced_rates.sum_duplicates()

    rewards = np.zeros(size)
    for s in transient:
        rewards[state_map[s]] = model.reward(s)

    alpha = np.zeros(size)
    for s, mass in enumerate(model.initial_distribution):
        alpha[state_map[s]] += mass

    names = None
    if model.state_names is not None:
        names = [model.state_names[s] for s in transient]
        if goal_index is not None:
            names.append("__goal__")
        if fail_index is not None:
            names.append("__fail__")

    labels: Dict[str, Set[int]] = {}
    if goal_index is not None:
        labels["__goal__"] = {goal_index}

    reduced = MarkovRewardModel(reduced_rates,
                                rewards=rewards,
                                labels=labels,
                                initial_distribution=alpha,
                                state_names=names)
    return AmalgamatedReduction(model=reduced,
                                state_map=state_map,
                                goal_state=goal_index)


@dataclass(frozen=True)
class ZeroRewardElimination:
    """Result of :func:`eliminate_zero_reward_states`.

    Attributes
    ----------
    model:
        The MRM on the kept states (positive reward or absorbing).
    kept:
        Original indices of the kept states, in quotient order.
    eliminated:
        Original indices of the removed zero-reward states.
    exit_distribution:
        Matrix ``B`` with ``B[i, j]`` the probability that the
        ``i``-th eliminated state eventually leaves the zero-reward
        region into the ``j``-th kept state (rows may be substochastic
        when the region can trap the path forever).
    """
    model: MarkovRewardModel
    kept: "list[int]"
    eliminated: "list[int]"
    exit_distribution: np.ndarray

    def lift(self, kept_values: np.ndarray,
             num_original_states: int) -> np.ndarray:
        """Expand per-kept-state values to all original states.

        An eliminated state inherits the exit-weighted average of the
        kept values (paths leave it without accumulating reward, so
        for reward-bounded measures its value is exactly that mixture).
        """
        lifted = np.zeros(num_original_states)
        for position, original in enumerate(self.kept):
            lifted[original] = kept_values[position]
        mixed = self.exit_distribution @ kept_values
        for position, original in enumerate(self.eliminated):
            lifted[original] = mixed[position]
        return lifted


def eliminate_zero_reward_states(model: MarkovRewardModel
                                 ) -> ZeroRewardElimination:
    """Remove non-absorbing zero-reward states (time-abstractly).

    For *reward-bounded* measures, sojourns in zero-reward states cost
    nothing: the accumulated reward does not advance.  Such states can
    therefore be short-circuited through their embedded jump
    probabilities, yielding an all-positive-reward model on which the
    duality transformation (:func:`dual_model`) is applicable.  This
    removes the positive-reward precondition of the paper's P2
    procedure (a genuine extension -- with zero-reward states the
    eliminated model's *timing* differs, but reward-bounded
    reachability is timing-insensitive).

    Not applicable to impulse-reward models (the eliminated jumps
    could carry reward).
    """
    if model.has_impulse_rewards:
        raise RewardError(
            "zero-reward-state elimination would drop impulse rewards")
    n = model.num_states
    exit_rates = model.exit_rates
    removable = [s for s in range(n)
                 if model.reward(s) == 0.0 and exit_rates[s] > 0.0]
    kept = [s for s in range(n) if s not in set(removable)]
    if not removable:
        return ZeroRewardElimination(model=model, kept=kept,
                                     eliminated=[],
                                     exit_distribution=np.zeros((0, n)))

    inverse_exit = np.where(exit_rates > 0.0,
                            1.0 / np.where(exit_rates > 0.0,
                                           exit_rates, 1.0),
                            0.0)
    jump = (sp.diags(inverse_exit, format="csr")
            @ model.rate_matrix).tocsr()
    # States trapped in a closed zero-reward region never exit; their
    # exit distribution is the zero row (and including them would make
    # the linear system singular).
    from repro.ctmc import graph
    escaping = sorted(graph.backward_reachable(
        model, kept, through=set(removable)) & set(removable))
    exit_distribution = np.zeros((len(removable), len(kept)))
    if escaping:
        positions = {s: i for i, s in enumerate(removable)}
        inner = jump[escaping, :][:, escaping]
        outward = jump[escaping, :][:, kept]
        system = sp.identity(len(escaping), format="csc") \
            - inner.tocsc()
        import scipy.sparse.linalg as spla
        solved = np.asarray(spla.spsolve(system, outward.toarray()))
        solved = solved.reshape(len(escaping), len(kept))
        for row, state in enumerate(escaping):
            exit_distribution[positions[state]] = solved[row]
    exit_distribution = np.clip(exit_distribution, 0.0, 1.0)

    rates = model.rate_matrix
    direct = rates[kept, :][:, kept].toarray()
    via = rates[kept, :][:, removable].toarray() @ exit_distribution
    new_rates = direct + via

    alpha = model.initial_distribution
    new_alpha = alpha[kept] + alpha[removable] @ exit_distribution
    total = new_alpha.sum()
    if total >= 1.0 - 1e-9:
        # Tiny numerical drift only: renormalise.
        new_alpha = new_alpha / total
    else:
        # Initial mass can be trapped forever in the zero-reward
        # region; the quotient then has no faithful initial
        # distribution (per-state results remain exact via lift()).
        new_alpha = None

    labels = {ap: {kept.index(s) for s in model.states_with(ap)
                   if s in set(kept)}
              for ap in model.atomic_propositions}
    names = None
    if model.state_names is not None:
        names = [model.state_names[s] for s in kept]

    reduced = MarkovRewardModel(
        sp.csr_matrix(new_rates),
        rewards=[model.reward(s) for s in kept],
        labels=labels,
        initial_distribution=new_alpha,
        state_names=names)
    return ZeroRewardElimination(model=reduced, kept=kept,
                                 eliminated=removable,
                                 exit_distribution=exit_distribution)


def dual_model(model: MarkovRewardModel) -> MarkovRewardModel:
    """The time/reward-dual MRM of [Baier et al. 2000, Theorem 1].

    Rates are divided by the local reward rate and rewards are
    inverted (``rho'(s) = 1 / rho(s)``): a sojourn earning ``r`` reward
    units in the original corresponds to a sojourn of ``r`` *time*
    units in the dual and vice versa.  Consequently
    ``Phi U^{<=t}_{<=r} Psi`` on the original coincides with
    ``Phi U^{<=r}_{<=t} Psi`` on the dual, and a pure reward bound
    ("P2") becomes a pure time bound ("P1").

    Absorbing states may carry any reward (they are never left, so the
    transformation gives them reward 0); every non-absorbing state
    must have a strictly positive reward, otherwise the dual is
    undefined and :class:`~repro.errors.RewardError` is raised.
    """
    if model.has_impulse_rewards:
        raise RewardError(
            "the duality transformation is undefined for impulse "
            "rewards (a jump cannot be swapped with a sojourn)")
    exit_rates = model.exit_rates
    rewards = model.rewards
    blocked = (rewards == 0.0) & (exit_rates > 0.0)
    if np.any(blocked):
        offenders = ", ".join(model.name_of(int(s))
                              for s in np.flatnonzero(blocked)[:5])
        raise RewardError(
            "the duality transformation requires positive rewards on "
            f"non-absorbing states; zero-reward states: {offenders}")
    scale = np.where(rewards > 0.0, 1.0 / np.where(rewards > 0.0,
                                                   rewards, 1.0), 0.0)
    dual_rates = sp.diags(scale, format="csr") @ model.rate_matrix
    dual_rewards = np.where(rewards > 0.0, scale, 0.0)
    return MarkovRewardModel(dual_rates,
                             rewards=dual_rewards,
                             labels=model.labels_as_dict(),
                             initial_distribution=model.initial_distribution,
                             state_names=model.state_names)
