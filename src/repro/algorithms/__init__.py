"""Computational engines for the joint reward/state distribution.

Model checking time- and reward-bounded until formulas reduces
(Theorems 1 and 2 of the paper) to computing

    Pr{ Y_t <= r, X_t in S' | X_0 = s }

on a transformed MRM, where ``Y_t`` is the reward accumulated up to
time ``t``.  This package provides the paper's three engines behind a
common interface (:class:`~repro.algorithms.base.JointEngine`):

* :class:`~repro.algorithms.erlang.ErlangEngine` -- Section 4.2,
  pseudo-Erlang approximation of the reward bound;
* :class:`~repro.algorithms.discretization.DiscretizationEngine` --
  Section 4.3, the Tijms--Veldman discretisation;
* :class:`~repro.algorithms.sericola.SericolaEngine` -- Section 4.4,
  Sericola's occupation-time algorithm (the only one with an a-priori
  error bound).

Beyond the scalar :meth:`~repro.algorithms.base.JointEngine.\
joint_probability_vector`, every engine evaluates whole ``(t, r)``
bound grids with a shared propagation prefix
(:meth:`~repro.algorithms.base.JointEngine.joint_probability_sweep`),
and :mod:`~repro.algorithms.parallel` fans genuinely independent
queries -- distinct reduced models -- over GIL-releasing threads.
"""

from repro.algorithms.base import (JointEngine, PartialSweep,
                                   available_engines, get_engine,
                                   richardson_bracket)
from repro.algorithms.cache import (EngineStats, cache_info, clear_caches,
                                    joint_cache, matrix_cache,
                                    value_nbytes)
from repro.algorithms.erlang import ErlangEngine, erlang_expanded_model
from repro.algorithms.discretization import DiscretizationEngine
from repro.algorithms.sericola import SericolaEngine
from repro.algorithms.parallel import (deadline_map,
                                       parallel_joint_sweeps,
                                       parallel_joint_vectors,
                                       threaded_map)

__all__ = [
    "JointEngine", "get_engine", "available_engines",
    "PartialSweep", "richardson_bracket",
    "EngineStats", "cache_info", "clear_caches",
    "joint_cache", "matrix_cache", "value_nbytes",
    "ErlangEngine", "erlang_expanded_model",
    "DiscretizationEngine", "SericolaEngine",
    "deadline_map", "parallel_joint_sweeps", "parallel_joint_vectors",
    "threaded_map",
]
