"""Sericola's occupation-time algorithm (Section 4.4 of the paper).

Computes the complementary joint distribution

    H_{ij}(t, r) = Pr{ Y_t > r, X_t = j | X_0 = i }

through the uniformisation series

    H(t, r) = sum_{n>=0} psi_n(lambda t)
              sum_{k=0}^{n} binom(n, k) x_h^k (1 - x_h)^{n-k} C(h, n, k)

where ``rho_0 < rho_1 < ... < rho_m`` are the distinct reward rates,
``h`` is the reward level with ``rho_{h-1} t <= r < rho_h t`` and
``x_h = (r - rho_{h-1} t) / ((rho_h - rho_{h-1}) t)`` normalises ``r``
inside that level [Sericola 2000, Theorem 5.6].

The matrices ``C(h, n, k)`` satisfy, with ``P`` the uniformised DTMC
matrix and ``rho(i)`` the reward of the *row* state:

* rows with ``rho(i) >= rho_h`` (ascending in ``k``)::

      C(h,n,0) = C(h-1,n,n),                      C(0,n,n) := P^n
      C(h,n,k) = [ (rho(i) - rho_h)   C(h,n,k-1)
                 + (rho_h - rho_{h-1}) (P C(h,n-1,k-1)) ]
                 / (rho(i) - rho_{h-1})

* rows with ``rho(i) <= rho_{h-1}`` (descending in ``k``)::

      C(h,n,n) = C(h+1,n,0),                      C(m+1,n,0) := 0
      C(h,n,k) = [ (rho_{h-1} - rho(i)) C(h,n,k+1)
                 + (rho_h - rho_{h-1})  (P C(h,n-1,k)) ]
                 / (rho_h - rho(i))

Both recursions are convex combinations, which gives the paper's
stability statement ``0 <= C(h,n,k) <= P^n`` entrywise, and a clean
a-priori stopping criterion: truncating the outer sum after ``N``
steps with ``sum_{n<=N} psi_n >= 1 - epsilon`` bounds the error by
``epsilon`` because every inner sum lies in ``[0, 1]``.

We propagate, instead of the full matrices, the *column aggregate*
``b(h,n,k) = C(h,n,k) 1_{S'}`` -- the recursion is linear in columns --
which reduces memory from ``O(N^2 |S|^2)`` (paper) to ``O(N m |S|)``
and yields the joint probability **for every initial state at once**.
The special cases reproduce known algorithms: two reward levels {0, 1}
give the Rubino--Sericola interval-availability scheme.

Unlike the paper (which requires ``rho_0 = 0``), the implementation
supports any minimal reward: the level-0 boundary ``C(0,n,n) = P^n``
expresses that a path starting in a state with ``rho(i) > rho_0``
accumulates more than ``rho_0 t`` with probability one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.algorithms.base import (EngineCapabilities, JointEngine,
                                   register_engine)
from repro.algorithms.cache import matrix_cache
from repro.ctmc.mrm import MarkovRewardModel
from repro.errors import NumericalError
from repro.kernels import KernelBackend, note_selected, resolve_static
from repro.kernels.base import (SericolaPlan, SericolaSeries,
                                build_sericola_plan)
from repro.numerics.poisson import poisson_weights, right_truncation_point
from repro.numerics.uniformization import Kernel, uniformized_operator
from repro.obs import OBS
from repro.obs import span as obs_span


@dataclass(frozen=True)
class SericolaDiagnostics:
    """Run statistics of the last computation (exposed for benchmarks)."""
    truncation_steps: int
    uniformization_rate: float
    reward_levels: int
    level_index: int
    normalized_bound: float


@register_engine
class SericolaEngine(JointEngine):
    """Occupation-time engine with an a-priori error bound *epsilon*.

    Parameters
    ----------
    epsilon:
        A-priori bound on the truncation error of the outer
        uniformisation series (Table 2 of the paper sweeps this knob).
    uniformization_rate:
        Optional override of the uniformisation rate ``lambda``
        (must be at least the maximal exit rate).
    steady_state_detection:
        Stop the outer series early once the per-step inner terms have
        converged (the remaining Poisson mass then multiplies a fixed
        vector).  This implements the paper's Section 5.4 outlook --
        "whether some kind of steady-state detection can be employed
        to shorten the series" -- and pays off when the time bound is
        large relative to the mixing time.  The detection threshold is
        tied to ``epsilon``, so the overall accuracy is preserved.
    kernel:
        Kernel backend running the triangular ``b(h,n,k)`` update (see
        ``docs/KERNELS.md``); backends agree to ``<= 1e-12``.
    """

    name = "sericola"

    @classmethod
    def capabilities(cls) -> EngineCapabilities:
        return EngineCapabilities(
            impulse_rewards=False,
            notes=("series cost scales with the number of distinct "
                   "reward levels and the Fox-Glynn truncation depth"))

    def __init__(self,
                 epsilon: float = 1e-9,
                 uniformization_rate: Optional[float] = None,
                 steady_state_detection: bool = False,
                 kernel: Kernel = None):
        if not 0.0 < epsilon < 1.0:
            raise NumericalError(
                f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = float(epsilon)
        self.uniformization_rate = uniformization_rate
        self.steady_state_detection = bool(steady_state_detection)
        self.last_diagnostics: Optional[SericolaDiagnostics] = None
        self._kernel_request = kernel
        self._backend: Optional[KernelBackend] = resolve_static(kernel)
        self.kernel = ("auto" if self._backend is None
                       else self._backend.name)

    def _cache_token(self):
        return (self.name, self.epsilon, self.uniformization_rate,
                self.steady_state_detection, self.kernel)

    def spec(self):
        return {"engine": self.name,
                "options": {
                    "epsilon": self.epsilon,
                    "uniformization_rate": self.uniformization_rate,
                    "steady_state_detection":
                        self.steady_state_detection,
                    "kernel": self._kernel_option()}}

    # ------------------------------------------------------------------

    def _compute_joint_vector(self,
                              model: MarkovRewardModel,
                              t: float,
                              r: float,
                              indicator: np.ndarray) -> np.ndarray:
        """One run of the series -- per-initial-state values are native
        to the occupation-time algorithm (the column-aggregate
        recursion carries all initial states, see module docstring)."""
        joint, _ = self._series(model, t, r, indicator)
        return joint

    def _compute_joint_interval(self, model, t, r, indicator):
        """Certified enclosure from the a-priori truncation bound.

        Every term of the truncated series is non-negative (``0 <=
        C(h,n,k) <= P^n`` entrywise), so the computed value converges
        to the exact one *from below*, and the truncation rule ``sum_
        {n<=N} psi_n >= 1 - epsilon`` caps the discarded mass: the
        exact value lies in ``[value, value + epsilon]`` -- a sound
        interval from a single series run, no second resolution needed.
        The one wrinkle: the Fox--Glynn Poisson weights are normalised
        over their truncation window (they sum to one), which can
        inflate the computed value above the exact series by the
        window's missing mass -- at most ``epsilon * 1e-3``, the
        accuracy the weights are computed with -- so the lower end is
        widened by exactly that slack.
        """
        value = self._compute_joint_vector(model, t, r, indicator)
        slack = self.epsilon * 1e-3
        return (np.maximum(value - slack, 0.0),
                np.minimum(value + self.epsilon, 1.0))

    def _compute_joint_interval_sweep(self, model, times, rewards,
                                      indicator):
        """One shared-prefix sweep plus the a-priori bound per cell."""
        grid = np.asarray(
            self._compute_joint_sweep(model, times, rewards, indicator),
            dtype=float)
        slack = self.epsilon * 1e-3
        return (np.maximum(grid - slack, 0.0),
                np.minimum(grid + self.epsilon, 1.0))

    #: Tightest epsilon the refinement loop will request; below this
    #: the truncated-series arithmetic itself is the accuracy limit.
    MIN_EPSILON = 1e-13

    def refined(self):
        """Tighten ``epsilon`` a hundredfold (the Table 2 knob)."""
        if self.epsilon <= self.MIN_EPSILON:
            return None
        return SericolaEngine(
            epsilon=max(self.epsilon * 1e-2, self.MIN_EPSILON),
            uniformization_rate=self.uniformization_rate,
            steady_state_detection=self.steady_state_detection,
            kernel=self._kernel_request)

    def complementary_vector(self,
                             model: MarkovRewardModel,
                             t: float,
                             r: float,
                             indicator: np.ndarray) -> np.ndarray:
        """``Pr{Y_t > r, X_t in S' | X_0 = i}`` for every i.

        *indicator* is the 0/1 vector of the target set ``S'``.
        """
        _, complementary = self._series(model, t, r, indicator)
        return complementary

    def joint_distribution_matrix(self,
                                  model: MarkovRewardModel,
                                  t: float,
                                  r: float) -> np.ndarray:
        """The full matrix ``H(t, r)`` of the paper's Theorem 5.6.

        ``H[i, j] = Pr{Y_t > r, X_t = j | X_0 = i}``, reconstructed
        column by column from the aggregated-vector recursion (each
        column is one run with a singleton target).  The total cost
        matches the paper's matrix formulation, O(N^2 m |S|^2); use
        the vector API whenever only a target *set* matters -- that is
        the ablation measured in ``bench_ablation_sericola_matrix``.
        """
        n = model.num_states
        columns = []
        for j in range(n):
            indicator = np.zeros(n)
            indicator[j] = 1.0
            columns.append(self.complementary_vector(model, t, r,
                                                     indicator))
        return np.column_stack(columns)

    def _series(self, model: MarkovRewardModel, t: float, r: float,
                indicator: np.ndarray):
        """Run the uniformisation series once, accumulating both

        * the joint probability ``Pr{Y_t <= r, X_t in S'}`` as
          ``sum_n psi_n (u_n - sum_k w_k b(h,n,k))`` -- all terms are
          non-negative because ``0 <= C(h,n,k) <= P^n``, so truncation
          converges from *below*, exactly as in Table 2 of the paper
          ("these can be computed simultaneously with H"), and

        * the complementary probability ``H = Pr{Y_t > r, X_t in S'}``.

        Returns ``(joint, complementary)`` vectors over initial states.
        """
        n_states = model.num_states
        rho = model.rewards
        self._check_capabilities(model)
        if t == 0.0:
            # Y_0 = 0 <= r: nothing exceeds the bound.
            return indicator.astype(float).copy(), np.zeros(n_states)

        backend = self._backend_for(model)
        plan = self._sericola_plan(model)
        levels = plan.levels
        m = len(levels) - 1
        if r >= levels[-1] * t:
            # Y_t <= rho_max * t surely: the bound never binds.
            transient = self._backward_transient(model, t, indicator,
                                                 backend)
            return transient, np.zeros(n_states)
        if m == 0 or r < levels[0] * t:
            # Deterministic accumulation above r (single level), or
            # Y_t >= rho_min * t > r: exceeding is sure.
            transient = self._backward_transient(model, t, indicator,
                                                 backend)
            return np.zeros(n_states), transient

        # Level h with rho_{h-1} t <= r < rho_h t, and normalised bound.
        h = int(np.searchsorted(levels * t, r, side="right"))
        x = (r - levels[h - 1] * t) / ((levels[h] - levels[h - 1]) * t)

        rate = (model.max_exit_rate if self.uniformization_rate is None
                else float(self.uniformization_rate))
        if rate == 0.0:
            # No transitions at all: Y_t = rho(i) * t deterministically.
            exceeding = indicator * (rho * t > r).astype(float)
            return indicator - exceeding, exceeding
        operator = uniformized_operator(model, rate,
                                        policy=backend.operator_policy)
        note_selected(self.name, backend.name)
        q = rate * t
        depth = right_truncation_point(q, self.epsilon)
        psi = poisson_weights(q, epsilon=min(self.epsilon * 1e-3, 1e-14))

        # The preallocated series state: one (|S|, depth+1, m) buffer
        # pair whose n*m-column prefix feeds a single block product per
        # step (see repro.kernels.base.SericolaSeries).
        series = SericolaSeries(backend, operator,
                                indicator.astype(float), plan, depth)
        u = series.u  # u = P^n 1_{S'}

        # Binomial mixture weights w[k] = binom(n,k) x^k (1-x)^{n-k}.
        mix = np.array([1.0])

        complementary = np.zeros(n_states)
        joint = np.zeros(n_states)
        inner = series.inner(h, mix)
        weight = psi.probability(0)
        complementary += weight * inner
        joint += weight * (u - inner)

        detection_tolerance = self.epsilon * 1e-2
        stable_steps = 0
        previous_inner = inner
        previous_u = u
        steps_used = depth

        matvec_hist = (OBS.metrics.histogram("repro_matvec_block_seconds",
                                             engine=self.name,
                                             kernel=backend.name)
                       if OBS.enabled else None)
        record = None
        tail = None
        if OBS.enabled:
            record = OBS.convergence.start_series(
                "sericola_series", depth, engine=self.name,
                rate=rate, t=float(t), r=float(r), levels=m + 1)
            tail = psi.tail_from()
        with obs_span("series", depth=depth) as series_span:
            for n in range(1, depth + 1):
                if matvec_hist is not None:
                    block_start = time.perf_counter()
                series.advance()
                if matvec_hist is not None:
                    matvec_hist.observe(time.perf_counter() - block_start)
                # Two operator applications per step: the u matvec and
                # the one stacked-levels block product.
                self.stats.matvec_count += 2
                self.stats.propagation_steps += 1
                u = series.u
                # Binomial weights:
                # w(n,k) = (1-x) w(n-1,k) + x w(n-1,k-1).
                new_mix = np.zeros(n + 1)
                new_mix[:n] = (1.0 - x) * mix
                new_mix[1:] += x * mix
                mix = new_mix
                inner = series.inner(h, mix)
                weight = psi.probability(n)
                if weight > 0.0:
                    complementary += weight * inner
                    joint += weight * (u - inner)
                if record is not None:
                    record.record(n, psi.remaining_after(n, tail))
                if self.steady_state_detection:
                    drift = max(float(np.max(np.abs(inner
                                                    - previous_inner))),
                                float(np.max(np.abs(u - previous_u))))
                    stable_steps = stable_steps + 1 \
                        if drift < detection_tolerance else 0
                    if stable_steps >= 3:
                        # The inner terms have stabilised: the
                        # remaining Poisson mass multiplies
                        # (essentially) the same vectors.
                        remaining_complementary = inner
                        remaining_joint = u - inner
                        if n >= psi.left:
                            mass = float(
                                psi.weights[n + 1 - psi.left:].sum())
                        else:
                            mass = 1.0 - float(
                                psi.weights[:max(0, n + 1
                                                 - psi.left)].sum())
                        complementary += mass * remaining_complementary
                        joint += mass * remaining_joint
                        steps_used = n
                        break
                    previous_inner = inner
                    previous_u = u
            series_span.set(steps=steps_used)

        if OBS.enabled:
            OBS.metrics.gauge(
                "repro_sericola_truncation_depth").update_max(
                    steps_used)
        self.last_diagnostics = SericolaDiagnostics(
            truncation_steps=steps_used,
            uniformization_rate=rate,
            reward_levels=m + 1,
            level_index=h,
            normalized_bound=x)
        return (np.clip(joint, 0.0, 1.0),
                np.clip(complementary, 0.0, 1.0))

    @staticmethod
    def _sericola_plan(model: MarkovRewardModel) -> SericolaPlan:
        """The reward-level structure (levels, per-level state classes),
        cached per model fingerprint -- the former per-call
        ``np.unique(rho)`` + ``np.flatnonzero`` scans."""
        key = ("sericola-plan", model.fingerprint)
        plan = matrix_cache.get(key)
        if plan is None:
            plan = build_sericola_plan(model.rewards)
            matrix_cache.put(key, plan)
        return plan

    # ------------------------------------------------------------------
    # shared-prefix (t, r) grid path
    # ------------------------------------------------------------------

    def _compute_joint_sweep(self,
                             model: MarkovRewardModel,
                             times,
                             rewards,
                             indicator: np.ndarray) -> np.ndarray:
        """The whole grid from **one** run of the series.

        The expensive part of the algorithm -- the ``b(g, n, k)``
        recursion (:meth:`_advance_series`) -- does not depend on the
        bounds at all: ``(t, r)`` only enter through the Poisson
        weights ``psi_n(lambda t)``, the level index ``h``, the
        normalised bound ``x`` and the truncation depth.  So one series
        advanced to the *deepest* truncation serves every grid point:
        each point keeps its own binomial mixture (points sharing ``x``
        share it), reads ``mix @ b[h-1]`` at each step, weighs with its
        own Poisson term and stops accumulating at its own depth --
        arithmetically identical to the scalar runs.  Points whose
        bound never binds ride the same ``u_n = P^n 1_{S'}`` iterates
        as a plain transient accumulation.

        ``steady_state_detection`` is ignored on this path (detection
        would have to trigger per grid point); the truncation bound
        alone already guarantees the ``epsilon`` accuracy.
        """
        n_states = model.num_states
        rho = model.rewards
        self._check_capabilities(model)
        backend = self._backend_for(model)
        plan = self._sericola_plan(model)
        levels = plan.levels
        m = len(levels) - 1
        rate = (model.max_exit_rate if self.uniformization_rate is None
                else float(self.uniformization_rate))
        grid = np.empty((len(times), len(rewards), n_states))
        transient_points = []   # (i, j): the bound never binds
        normal_points = []      # dicts: genuine series points
        for i, t in enumerate(times):
            for j, r in enumerate(rewards):
                if t == 0.0:
                    grid[i, j] = indicator.astype(float)
                elif r >= levels[-1] * t:
                    if rate == 0.0:
                        grid[i, j] = indicator.astype(float)
                    else:
                        grid[i, j] = 0.0
                        transient_points.append((i, j, t))
                elif m == 0 or r < levels[0] * t:
                    grid[i, j] = 0.0
                elif rate == 0.0:
                    exceeding = indicator * (rho * t > r).astype(float)
                    grid[i, j] = indicator - exceeding
                else:
                    h = int(np.searchsorted(levels * t, r,
                                            side="right"))
                    x = ((r - levels[h - 1] * t)
                         / ((levels[h] - levels[h - 1]) * t))
                    q = rate * t
                    normal_points.append({
                        "i": i, "j": j, "h": h, "x": x,
                        "depth": right_truncation_point(q, self.epsilon),
                        "psi": poisson_weights(
                            q, epsilon=min(self.epsilon * 1e-3, 1e-14)),
                    })
        if not transient_points and not normal_points:
            return grid
        operator = uniformized_operator(model, rate,
                                        policy=backend.operator_policy)
        note_selected(self.name, backend.name)
        trans = [(i, j, poisson_weights(
                     rate * t, epsilon=min(self.epsilon * 1e-3, 1e-14)))
                 for i, j, t in transient_points]

        depth_b = max((p["depth"] for p in normal_points), default=0)
        depth_u = max([depth_b] + [psi.right for _, _, psi in trans])

        series: Optional[SericolaSeries] = None
        if normal_points:
            series = SericolaSeries(backend, operator,
                                    indicator.astype(float), plan,
                                    depth_b)
            u = series.u
            mixes = {p["x"]: np.array([1.0]) for p in normal_points}
            for p in normal_points:
                inner = series.inner(p["h"], mixes[p["x"]])
                p["joint"] = p["psi"].probability(0) * (u - inner)
        else:
            u = indicator.astype(float).copy()
        matvec_hist = (OBS.metrics.histogram("repro_matvec_block_seconds",
                                             engine=self.name,
                                             kernel=backend.name)
                       if OBS.enabled else None)
        for i, j, psi in trans:
            if psi.left == 0:
                grid[i, j] += psi.weights[0] * u

        record = None
        if OBS.enabled and normal_points:
            deepest = max(normal_points, key=lambda p: p["depth"])
            record = OBS.convergence.start_series(
                "sericola_series", depth_u, engine=self.name,
                rate=rate, points=len(normal_points), sweep=True)
            record_psi = deepest["psi"]
            record_tail = record_psi.tail_from()
        with obs_span("series_sweep", depth=depth_u,
                      points=len(normal_points) + len(trans)):
            for n in range(1, depth_u + 1):
                if n <= depth_b and series is not None:
                    if matvec_hist is not None:
                        block_start = time.perf_counter()
                    series.advance()
                    if matvec_hist is not None:
                        matvec_hist.observe(
                            time.perf_counter() - block_start)
                    self.stats.matvec_count += 2
                    self.stats.propagation_steps += 1
                    u = series.u
                    for x, mix in mixes.items():
                        new_mix = np.zeros(n + 1)
                        new_mix[:n] = (1.0 - x) * mix
                        new_mix[1:] += x * mix
                        mixes[x] = new_mix
                    for p in normal_points:
                        if n > p["depth"]:
                            continue
                        inner = series.inner(p["h"], mixes[p["x"]])
                        weight = p["psi"].probability(n)
                        if weight > 0.0:
                            p["joint"] += weight * (u - inner)
                else:
                    # Past every series depth only the transient
                    # accumulations remain: advance u alone.
                    u = operator.matvec(u)
                    self.stats.matvec_count += 1
                    self.stats.propagation_steps += 1
                if record is not None:
                    record.record(n, record_psi.remaining_after(
                        n, record_tail))
                for i, j, psi in trans:
                    if psi.left <= n <= psi.right:
                        grid[i, j] += psi.weights[n - psi.left] * u

        for p in normal_points:
            grid[p["i"], p["j"]] = np.clip(p["joint"], 0.0, 1.0)
        if normal_points:
            deepest = max(normal_points, key=lambda p: p["depth"])
            self.last_diagnostics = SericolaDiagnostics(
                truncation_steps=deepest["depth"],
                uniformization_rate=rate,
                reward_levels=m + 1,
                level_index=deepest["h"],
                normalized_bound=deepest["x"])
            if OBS.enabled:
                OBS.metrics.gauge(
                    "repro_sericola_truncation_depth").update_max(
                        deepest["depth"])
        return grid

    # ------------------------------------------------------------------

    def _backward_transient(self,
                            model: MarkovRewardModel,
                            t: float,
                            indicator: np.ndarray,
                            backend: Optional[KernelBackend] = None
                            ) -> np.ndarray:
        """``Pr{X_t in S' | X_0 = i}`` for every i (backward series)."""
        rate = (model.max_exit_rate if self.uniformization_rate is None
                else float(self.uniformization_rate))
        if rate == 0.0 or t == 0.0:
            return indicator.astype(float).copy()
        if backend is None:
            backend = self._backend_for(model)
        operator = uniformized_operator(model, rate,
                                        policy=backend.operator_policy)
        psi = poisson_weights(rate * t,
                              epsilon=min(self.epsilon * 1e-3, 1e-14))
        vector = indicator.astype(float).copy()
        result = np.zeros_like(vector)
        with obs_span("transient_series", depth=psi.right):
            for k in range(psi.right + 1):
                if k >= psi.left:
                    result += psi.weights[k - psi.left] * vector
                if k == psi.right:
                    break
                vector = operator.matvec(vector)
                self.stats.matvec_count += 1
                self.stats.propagation_steps += 1
        return result
