"""The pseudo-Erlang approximation (Section 4.2 of the paper).

The deterministic reward bound ``r`` is replaced by a random bound that
is Erlang-``k`` distributed with mean ``r``: the accumulated reward
``Y_t`` crosses such a bound exactly when a Poisson process, driven at
rate ``(k / r) * rho(X_u)`` by the momentary reward rate, has fired
``k`` times.  This yields a plain CTMC on the product space

    S x {0, ..., k-1}   +   one absorbing "bound exceeded" state

with, for every original transition, a copy per phase, plus phase
advancement ``(s, i) -> (s, i+1)`` at rate ``rho(s) k / r`` (the last
phase feeding the absorbing barrier).  Standard transient analysis
(uniformisation) of the expanded chain approximates

    Pr{Y_t <= r, X_t in S'}  ~~  Pr{X^exp_t in S' x {0..k-1}}.

As ``k`` grows the Erlang distribution concentrates on ``r`` and the
approximation converges; the paper's Table 3 sweeps ``k`` from 1 to
1024 and observes convergence from below on its case study.  The price
is a ``k``-fold larger chain whose uniformisation rate grows by
``k * max(rho) / r``.

**Impulse rewards** (this library's extension of the paper's
future-work item) displace the reward instantaneously by a *fixed*
amount ``iota`` when their transition fires, so the phase counter must
advance by the *deterministic* equivalent ``iota * k / r`` of that
displacement.  When that quantity is not an integer, the advance is
split mean-preservingly over the two neighbouring integers
(``floor``/``ceil``).  Randomising the advance instead -- e.g. by the
Poisson number of reward-clock ticks inside the impulse, which an
earlier revision did -- biases the result near discontinuities of the
joint distribution: an impulse atom sitting exactly at the bound is
then counted with probability about one half however large ``k`` is
(an ``O(k^{-1/2})`` error), which is what the seed's failing
discretisation-vs-Erlang comparison detected.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.algorithms.base import (EngineCapabilities, JointEngine,
                                   register_engine,
                                   richardson_bracket)
from repro.algorithms.cache import EngineStats, matrix_cache
from repro.algorithms.parallel import threaded_map
from repro.ctmc.ctmc import CTMC
from repro.ctmc.mrm import MarkovRewardModel
from repro.errors import NumericalError
from repro.kernels import KernelBackend, note_selected, resolve_static
from repro.obs import span as obs_span
from repro.numerics.uniformization import (
    Kernel, transient_distribution, transient_target_probabilities,
    transient_target_probabilities_sweep)


def erlang_expanded_model(model: MarkovRewardModel,
                          r: float,
                          phases: int) -> Tuple[CTMC, int]:
    """The phase-expanded CTMC of the pseudo-Erlang construction.

    Returns ``(chain, barrier)`` where expanded state ``s * phases + i``
    represents original state ``s`` in Erlang phase ``i`` and *barrier*
    is the index of the absorbing "reward bound exceeded" state.

    The expanded rate matrix has the tensor structure
    ``R (x) I_k + diag(rho) (x) (k/r) * shift`` that the paper mentions
    can be exploited for storage; we materialise it sparsely, which for
    CSR storage is equally compact.  The construction is cached per
    ``(model, r, phases)`` -- sweeps over the time bound rebuild
    nothing.
    """
    if phases < 1:
        raise NumericalError(f"need at least one phase, got {phases}")
    if r <= 0.0:
        raise NumericalError(
            f"the Erlang construction needs a positive reward bound, "
            f"got {r}")
    key = ("erlang-expanded", model.fingerprint, float(r), int(phases))
    cached = matrix_cache.get(key)
    if cached is not None:
        return cached
    with obs_span("expand_chain", phases=int(phases), r=float(r),
                  states=model.num_states):
        result = _build_expanded_model(model, r, phases)
    matrix_cache.put(key, result)
    return result


def _build_expanded_model(model: MarkovRewardModel,
                          r: float,
                          phases: int) -> Tuple[CTMC, int]:
    """The uncached construction behind :func:`erlang_expanded_model`."""
    n = model.num_states
    k = phases
    barrier = n * k
    phase_rate = k / r

    rates = model.rate_matrix.tocoo()
    impulses = (model.impulse_matrix if model.has_impulse_rewards
                else None)
    rows = []
    cols = []
    vals = []
    # Original transitions, copied into every phase.  A transition with
    # an impulse reward iota displaces the reward clock by the fixed
    # amount iota, i.e. advances the phase counter by the deterministic
    # equivalent iota * k / r, split mean-preservingly over the two
    # neighbouring integers when fractional (see module docstring).
    for src, dst, rate in zip(rates.row, rates.col, rates.data):
        base_src = src * k
        base_dst = dst * k
        iota = (float(impulses[src, dst]) if impulses is not None
                else 0.0)
        if iota == 0.0:
            for i in range(k):
                rows.append(base_src + i)
                cols.append(base_dst + i)
                vals.append(rate)
            continue
        advance = iota * phase_rate
        low = int(math.floor(advance + 1e-12))
        fraction = advance - low
        outcomes = [(low, 1.0 - fraction)]
        if fraction > 1e-12:
            outcomes.append((low + 1, fraction))
        for i in range(k):
            for jump, probability in outcomes:
                if probability <= 0.0:
                    continue
                if i + jump < k:
                    rows.append(base_src + i)
                    cols.append(base_dst + i + jump)
                else:
                    rows.append(base_src + i)
                    cols.append(barrier)
                vals.append(rate * probability)
    # Phase advancement at rate rho(s) * k / r.
    for s in range(n):
        advance = model.reward(s) * phase_rate
        if advance == 0.0:
            continue
        for i in range(k - 1):
            rows.append(s * k + i)
            cols.append(s * k + i + 1)
            vals.append(advance)
        rows.append(s * k + (k - 1))
        cols.append(barrier)
        vals.append(advance)
    expanded = sp.coo_matrix((vals, (rows, cols)),
                             shape=(barrier + 1, barrier + 1)).tocsr()
    return (CTMC(expanded), barrier)


@register_engine
class ErlangEngine(JointEngine):
    """Pseudo-Erlang engine with *phases* Erlang stages.

    Parameters
    ----------
    phases:
        Number ``k`` of Erlang phases approximating the reward bound
        (the accuracy knob, Table 3 of the paper).
    epsilon:
        Truncation error bound of the transient analysis on the
        expanded chain (this part of the computation is "exact" up to
        epsilon; the model-level Erlang error dominates).
    kernel:
        Kernel backend labelling and running the propagation loops
        (see ``docs/KERNELS.md``); backends agree to ``<= 1e-12``.
    """

    name = "erlang"

    @classmethod
    def capabilities(cls) -> EngineCapabilities:
        return EngineCapabilities(
            certified_intervals=True,
            notes=("the expanded chain has n*phases+1 states, so work "
                   "and memory grow linearly with the phase count "
                   "while the approximation error shrinks as "
                   "1/phases"))

    def __init__(self, phases: int = 64, epsilon: float = 1e-12,
                 max_workers: Optional[int] = None,
                 kernel: Kernel = None):
        if phases < 1:
            raise NumericalError(f"need at least one phase, got {phases}")
        self.phases = int(phases)
        self.epsilon = float(epsilon)
        #: Thread count of the per-reward-bound sweep fan-out
        #: (``None`` = automatic, see :mod:`repro.algorithms.parallel`).
        #: Not part of the cache token: it never changes values.
        self.max_workers = max_workers
        self.last_expanded_size: Optional[int] = None
        self._kernel_request = kernel
        self._backend: Optional[KernelBackend] = resolve_static(kernel)
        self.kernel = ("auto" if self._backend is None
                       else self._backend.name)

    def _cache_token(self) -> Tuple:
        return (self.name, self.phases, self.epsilon, self.kernel)

    def spec(self):
        return {"engine": self.name,
                "options": {"phases": self.phases,
                            "epsilon": self.epsilon,
                            "kernel": self._kernel_option()}}

    def _compute_joint_vector(self,
                              model: MarkovRewardModel,
                              t: float,
                              r: float,
                              indicator: np.ndarray) -> np.ndarray:
        """Batched backward uniformisation over the expanded chain.

        One backward series on the ``|S| * k + 1``-state expanded CTMC
        yields every initial state at once (the phase-0 entries).
        """
        if t == 0.0:
            # Y_0 = 0 <= r for any r >= 0: only the target matters.
            return indicator.astype(float).copy()
        if r == 0.0:
            return zero_reward_bound_vector(
                model, t, indicator, epsilon=self.epsilon,
                kernel=self._backend_for(model))
        expanded, barrier = erlang_expanded_model(model, r, self.phases)
        self.last_expanded_size = expanded.num_states
        # Auto-selection keys on the *expanded* chain -- that is the
        # chain being propagated, and its dimensions are a function of
        # (model, r, phases), all of which sit in the cache key.
        backend = self._backend_for(expanded)
        note_selected(self.name, backend.name)
        vector = transient_target_probabilities(
            expanded, t, self._expanded_indicator(expanded, indicator),
            epsilon=self.epsilon, stats=self.stats,
            kernel=backend, metrics_engine=self.name)
        # Initial phase is 0: read off the (s, 0) entries.
        result = vector[0:barrier:self.phases].copy()
        return np.clip(result, 0.0, 1.0)

    def _expanded_indicator(self, expanded: CTMC,
                            indicator: np.ndarray) -> np.ndarray:
        """Target mask on the expanded chain: any phase of a target
        state (phase < k means the Erlang bound is not yet exceeded)."""
        k = self.phases
        expanded_indicator = np.zeros(expanded.num_states)
        for s in np.flatnonzero(indicator):
            expanded_indicator[s * k:(s + 1) * k] = indicator[s]
        return expanded_indicator

    def _compute_joint_sweep(self,
                             model: MarkovRewardModel,
                             times: Sequence[float],
                             rewards: Sequence[float],
                             indicator: np.ndarray) -> np.ndarray:
        """Shared-iterate sweep with a threaded per-``r`` fan-out.

        The expanded chain depends on ``r`` only, and on it the
        backward iterates ``P^k w`` are shared by every time bound --
        so each reward bound costs **one** series to the largest
        truncation point (re-weighted per ``t``) instead of
        ``len(times)`` runs.  The remaining independent work -- one
        expanded chain per distinct ``r`` -- fans out over threads
        (scipy's sparse products release the GIL); results keep grid
        order and the per-worker counters are merged deterministically.
        """
        times = [float(t) for t in times]

        def column(reward: float):
            stats = EngineStats()
            if reward == 0.0:
                rows = zero_reward_bound_sweep(
                    model, times, indicator, epsilon=self.epsilon,
                    stats=stats, kernel=self._backend_for(model))
                return rows, stats, None
            expanded, barrier = erlang_expanded_model(model, reward,
                                                      self.phases)
            rows = transient_target_probabilities_sweep(
                expanded, times,
                self._expanded_indicator(expanded, indicator),
                epsilon=self.epsilon, stats=stats,
                kernel=self._backend_for(expanded),
                metrics_engine=self.name)
            column_values = np.clip(
                rows[:, 0:barrier:self.phases], 0.0, 1.0)
            return column_values, stats, expanded.num_states

        columns = threaded_map(column, [float(r) for r in rewards],
                               max_workers=self.max_workers)
        grid = np.empty((len(times), len(rewards), model.num_states))
        for j, (values, stats, expanded_size) in enumerate(columns):
            grid[:, j, :] = values
            self.stats.merge(stats)
            if expanded_size is not None:
                self.last_expanded_size = expanded_size
        # t = 0 rows: Y_0 = 0 <= r whatever r, matching the scalar path.
        for i, t in enumerate(times):
            if t == 0.0:
                grid[i, :, :] = indicator.astype(float)
        return grid

    # ------------------------------------------------------------------
    # certified intervals: the k vs 2k bracket
    # ------------------------------------------------------------------

    #: Largest phase count the refinement loop will request (the
    #: expanded chain grows linearly in ``k`` and its uniformisation
    #: rate grows with ``k max(rho) / r``).
    MAX_PHASES = 65536

    def _double_phase_engine(self) -> "ErlangEngine":
        """The ``2k`` companion used by the interval bracket."""
        return ErlangEngine(phases=self.phases * 2,
                            epsilon=self.epsilon,
                            max_workers=self.max_workers,
                            kernel=self._kernel_request)

    def _compute_joint_interval(self, model, t, r, indicator):
        """Certified enclosure from the ``k`` vs ``2k`` bracket.

        Doubling the phase count halves the variance ``r^2 / k`` of
        the Erlang bound, and on the stochastic-ordering argument of
        Section 4.2 the approximation error contracts at least as fast
        (Table 3 observes clean halving per doubling at smooth points);
        :func:`~repro.algorithms.base.richardson_bracket` turns the
        ``k`` and ``2k`` runs into an interval containing the exact
        value and the engine's own ``k``-phase point value.  The
        ``2k`` run is served through the shared result cache, so a
        later refinement to ``2k`` phases starts warm.
        """
        coarse = self._compute_joint_vector(model, t, r, indicator)
        fine_engine = self._double_phase_engine()
        target = np.flatnonzero(indicator)
        fine = fine_engine.joint_probability_vector(model, t, r, target)
        self.stats.merge(fine_engine.stats)
        self.last_expanded_size = fine_engine.last_expanded_size
        return richardson_bracket(coarse, fine)

    def _compute_joint_interval_sweep(self, model, times, rewards,
                                      indicator):
        """Two bracketing shared-iterate sweeps (``k`` and ``2k``
        phases), combined cell-wise."""
        coarse = np.asarray(
            self._compute_joint_sweep(model, times, rewards, indicator),
            dtype=float)
        fine_engine = self._double_phase_engine()
        target = np.flatnonzero(indicator)
        fine = np.asarray(
            fine_engine.joint_probability_sweep(model, times, rewards,
                                                target), dtype=float)
        self.stats.merge(fine_engine.stats)
        return richardson_bracket(coarse, fine)

    def refined(self):
        """Double the phase count ``k`` (the Table 3 knob)."""
        if self.phases * 2 > self.MAX_PHASES:
            return None
        return self._double_phase_engine()

    def joint_probability_from(self,
                               model: MarkovRewardModel,
                               t: float,
                               r: float,
                               indicator: np.ndarray,
                               initial_state: int) -> float:
        """Joint probability from one initial state via an independent
        *forward* transient analysis of the expanded chain (the dual of
        the batched backward series; used by the equivalence tests)."""
        indicator = np.asarray(indicator, dtype=float)
        if r == 0.0:
            exact = zero_reward_bound_vector(
                model, t, indicator, epsilon=self.epsilon,
                kernel=self._backend_for(model))
            return float(exact[int(initial_state)])
        expanded, barrier = erlang_expanded_model(model, r, self.phases)
        k = self.phases
        alpha = np.zeros(expanded.num_states)
        alpha[int(initial_state) * k] = 1.0
        distribution = transient_distribution(
            expanded, t, initial=alpha, epsilon=self.epsilon,
            steady_state_detection=False,
            kernel=self._backend_for(expanded),
            metrics_engine=self.name)
        mass = 0.0
        for s in np.flatnonzero(indicator):
            mass += indicator[s] * float(
                distribution[s * k:(s + 1) * k].sum())
        return float(np.clip(mass, 0.0, 1.0))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(phases={self.phases})"


def _zero_reward_restriction(model: MarkovRewardModel,
                             indicator: np.ndarray
                             ) -> Tuple[CTMC, np.ndarray]:
    """The restricted chain behind the ``r = 0`` special case.

    ``Y_t = 0`` holds exactly when the path spends no time in a state
    with positive reward and takes no transition with a positive
    impulse, i.e. (almost surely) never does either before time ``t``.
    We therefore make every positive-reward state absorbing, redirect
    every positive-impulse transition into a fresh dead state, and
    drop such states from the target; returns the restricted chain and
    the masked target indicator on it (the original states come
    first).
    """
    n = model.num_states
    positive = model.rewards > 0.0
    rates = model.rate_matrix.tolil(copy=True)
    for s in np.flatnonzero(positive):
        rates.rows[s] = []
        rates.data[s] = []
    if model.has_impulse_rewards:
        # Append a dead state and reroute impulse transitions into it.
        rates = sp.bmat([[rates.tocsr(), None],
                         [None, sp.csr_matrix((1, 1))]]).tolil()
        impulses = model.impulse_matrix.tocoo()
        for source, target, value in zip(impulses.row, impulses.col,
                                         impulses.data):
            if value <= 0.0 or positive[source]:
                continue
            moved = rates[source, target]
            if moved:
                rates[source, target] = 0.0
                rates[source, n] += moved
        masked = np.zeros(n + 1)
        masked[:n] = np.where(positive, 0.0, indicator)
        return CTMC(rates.tocsr()), masked
    masked = np.where(positive, 0.0, indicator)
    return CTMC(rates.tocsr()), masked


def zero_reward_bound_vector(model: MarkovRewardModel,
                             t: float,
                             indicator: np.ndarray,
                             epsilon: float = 1e-12,
                             kernel: Kernel = None) -> np.ndarray:
    """Exact ``Pr{Y_t <= 0, X_t in S'}`` for every initial state.

    Transient analysis of the restricted chain of
    :func:`_zero_reward_restriction`; at ``t = 0`` the answer is the
    plain target indicator (no time has passed, so no reward has
    accrued whatever the rates are).
    """
    if t == 0.0:
        return np.asarray(indicator, dtype=float).copy()
    restricted, masked = _zero_reward_restriction(model, indicator)
    return transient_target_probabilities(
        restricted, t, masked, epsilon=epsilon,
        kernel=kernel)[:model.num_states]


def zero_reward_bound_sweep(model: MarkovRewardModel,
                            times: Sequence[float],
                            indicator: np.ndarray,
                            epsilon: float = 1e-12,
                            stats=None,
                            kernel: Kernel = None) -> np.ndarray:
    """:func:`zero_reward_bound_vector` for many time bounds at once.

    One restricted chain and one shared backward series cover every
    time bound (see
    :func:`~repro.numerics.uniformization.\
transient_target_probabilities_sweep`); returns the ``(len(times),
    |S|)`` array of per-initial-state values.
    """
    times = [float(t) for t in times]
    restricted, masked = _zero_reward_restriction(model, indicator)
    rows = transient_target_probabilities_sweep(
        restricted, times, masked, epsilon=epsilon,
        stats=stats, kernel=kernel)[:, :model.num_states]
    for i, t in enumerate(times):
        if t == 0.0:
            rows[i] = np.asarray(indicator, dtype=float)
    return rows
