"""The Tijms--Veldman discretisation (Section 4.3 of the paper).

Time and accumulated reward are discretised with a common step size
``d``; the step must be small enough that more than one transition per
interval is negligible (we require at least ``max_s E(s) * d <= 1``).
Rewards must be natural numbers -- rational rewards can always be
scaled, see :func:`integer_reward_scale`.

The scheme propagates the discretised joint density ``F^j(s, k)`` of
being in state ``s`` at time ``j * d`` with accumulated reward
``k * d``:

    F^1(s0, rho(s0)) = 1 / d
    F^{j+1}(s, k) = F^j(s, k - rho(s)) (1 - E(s) d)
                  + sum_{s'} F^j(s', k - rho(s')) R(s', s) d

(the displacement uses the reward rate of the state occupied during
the interval, as in Tijms & Veldman's original formulation).  After
``T = t / d`` steps,

    Pr{Y_t <= r, X_t in S'} ~~ sum_{s in S'} sum_{k<=R} F^T(s, k) d

with ``R = r / d``.  For out-of-range displacements (``rho(s) > k``)
the paper sets the index to zero; physically the density at negative
accumulated reward is zero, so dropping the term is the cleaner
reading.  Both variants are implemented (``underflow="drop"`` is the
default, ``"clamp"`` reproduces the paper's literal rule); they agree
whenever no probability mass sits at accumulated reward zero, in
particular on the paper's case study.

The whole per-step update is two sparse-matrix/dense-matrix products,
so the cost is ``O(T * nnz(R) * R / d)`` -- quadratic in ``1/d``,
matching the paper's observation that halving ``d`` quadruples the
runtime (Table 4).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.algorithms.base import JointEngine, register_engine
from repro.algorithms.erlang import zero_reward_bound_vector
from repro.ctmc.mrm import MarkovRewardModel
from repro.errors import NumericalError, RewardError


def integer_reward_scale(rewards: Iterable[float],
                         max_denominator: int = 10 ** 6) -> int:
    """Smallest integer ``c`` making every reward in *rewards* integral.

    Raises :class:`~repro.errors.RewardError` when a reward is not
    (recognisably) rational with denominator up to *max_denominator*.
    """
    scale = 1
    for reward in rewards:
        fraction = Fraction(float(reward)).limit_denominator(max_denominator)
        if abs(float(fraction) - float(reward)) > 1e-9 * max(1.0, reward):
            raise RewardError(
                f"reward {reward} is not a small rational; "
                f"scale rewards manually")
        denominator = fraction.denominator
        # lcm(scale, denominator)
        from math import gcd
        scale = scale * denominator // gcd(scale, denominator)
    return scale


@register_engine
class DiscretizationEngine(JointEngine):
    """Tijms--Veldman engine with step size *step*.

    Parameters
    ----------
    step:
        The discretisation step ``d`` for both time and reward (the
        accuracy knob, Table 4 of the paper).  ``t/d`` must be an
        integer and ``max_s E(s) * d <= 1`` must hold.
    underflow:
        ``"drop"`` (density at negative accumulated reward is zero) or
        ``"clamp"`` (the paper's literal "set the index to 0" rule).
    include_zero:
        Include the ``k = 0`` cell in the final sum.  The paper's
        formula starts at ``k = 1``; the zero cell only carries mass
        when the initial state has reward zero.
    """

    name = "discretization"

    def __init__(self,
                 step: float = 1.0 / 64,
                 underflow: str = "drop",
                 include_zero: bool = True):
        if step <= 0.0:
            raise NumericalError(f"step must be positive, got {step}")
        if underflow not in ("drop", "clamp"):
            raise NumericalError(
                f"underflow must be 'drop' or 'clamp', got {underflow!r}")
        self.step = float(step)
        self.underflow = underflow
        self.include_zero = bool(include_zero)

    # ------------------------------------------------------------------

    def joint_probability_vector(self,
                                 model: MarkovRewardModel,
                                 t: float,
                                 r: float,
                                 target: Iterable[int]) -> np.ndarray:
        indicator = self._validate(model, t, r, target)
        result = np.empty(model.num_states)
        for s in range(model.num_states):
            result[s] = self.joint_probability_from(model, t, r,
                                                    indicator, s)
        return result

    def joint_probability(self,
                          model: MarkovRewardModel,
                          t: float,
                          r: float,
                          target: Iterable[int],
                          initial=None) -> float:
        indicator = self._validate(model, t, r, target)
        alpha = (model.initial_distribution if initial is None
                 else np.asarray(initial, dtype=float))
        total = 0.0
        for s in np.flatnonzero(alpha):
            total += alpha[s] * self.joint_probability_from(
                model, t, r, indicator, int(s))
        return total

    def joint_probability_from(self,
                               model: MarkovRewardModel,
                               t: float,
                               r: float,
                               indicator: np.ndarray,
                               initial_state: int) -> float:
        """Joint probability from a single initial state (one run)."""
        if t == 0.0:
            return float(indicator[initial_state])
        if r == 0.0:
            exact = zero_reward_bound_vector(model, t, indicator)
            return float(exact[initial_state])
        density = self.final_density(model, t, r, initial_state)
        start = 0 if self.include_zero else 1
        mass = density[:, start:] * self.step
        return float(min(1.0, (mass.sum(axis=1) * indicator).sum()))

    # ------------------------------------------------------------------

    def final_density(self,
                      model: MarkovRewardModel,
                      t: float,
                      r: float,
                      initial_state: int) -> np.ndarray:
        """The discretised density ``F^T`` as an ``(|S|, R+1)`` array.

        ``F[s, k]`` approximates the joint density of ``(X_t, Y_t)`` at
        ``Y_t = k * d``, restricted to ``Y_t <= r`` (mass beyond the
        bound is discarded on the fly; it never flows back because
        displacements are non-negative).
        """
        d = self.step
        steps = t / d
        if abs(steps - round(steps)) > 1e-9:
            raise NumericalError(
                f"time bound {t} is not a multiple of the step {d}")
        num_steps = int(round(steps))
        if not model.has_integer_rewards():
            raise RewardError(
                "the discretisation scheme needs natural-number rewards; "
                "use model.scaled_rewards(integer_reward_scale(...)) and "
                "scale the reward bound accordingly")
        rho = np.round(model.rewards).astype(np.int64)
        exit_rates = model.exit_rates
        if exit_rates.max() * d > 1.0 + 1e-12:
            raise NumericalError(
                f"step {d} too coarse: max exit rate {exit_rates.max()} "
                f"gives a negative stay probability; need d <= "
                f"{1.0 / exit_rates.max()}")
        num_cells = int(np.floor(r / d + 1e-9)) + 1

        # Impulse rewards add a transition-specific displacement of
        # iota / d cells; split the rate matrix by impulse value so
        # each group is one sparse product on a uniformly re-shifted
        # density (the paper's future-work extension).
        impulse_groups = self._impulse_groups(model, d)
        transposed = (impulse_groups.pop(0)
                      if 0 in impulse_groups
                      else sp.csr_matrix((model.num_states,) * 2))
        stay = 1.0 - exit_rates * d

        density = np.zeros((model.num_states, num_cells))
        start_cell = min(int(rho[initial_state]), num_cells - 1)
        # F^1 places all mass (density 1/d) at the initial state with
        # one interval's reward already earned.
        if rho[initial_state] < num_cells:
            density[initial_state, start_cell] = 1.0 / d
        else:
            # The very first interval already exceeds the bound.
            return density
        reward_groups = [(value, np.flatnonzero(rho == value))
                         for value in np.unique(rho)]

        for _ in range(num_steps - 1):
            shifted = np.zeros_like(density)
            for value, states in reward_groups:
                if value == 0:
                    shifted[states] = density[states]
                elif value < num_cells:
                    shifted[states, value:] = density[states, :-value]
                    if self.underflow == "clamp":
                        shifted[states, :value] = (
                            density[states, 0][:, None])
                # value >= num_cells: every displacement exceeds the
                # bound; the row contributes nothing (mass discarded).
                elif self.underflow == "clamp":
                    shifted[states, :] = density[states, 0][:, None]
            density = stay[:, None] * shifted + transposed @ shifted
            for cells, group in impulse_groups.items():
                if cells >= num_cells:
                    continue  # the impulse alone exceeds the bound
                extra = np.zeros_like(shifted)
                extra[:, cells:] = shifted[:, :num_cells - cells]
                density += group @ extra
        return density

    @staticmethod
    def _impulse_groups(model: MarkovRewardModel, d: float):
        """Transposed, d-scaled rate matrices grouped by the number of
        reward cells their impulse displaces (0 for no impulse)."""
        base = (model.rate_matrix.transpose() * d).tocsr()
        if not model.has_impulse_rewards:
            return {0: base}
        inverse_step = 1.0 / d
        if abs(inverse_step - round(inverse_step)) > 1e-9:
            raise NumericalError(
                "impulse rewards need a step of the form 1/n so the "
                "impulse displacement is an integer number of cells")
        impulses = model.impulse_matrix
        values = np.unique(impulses.data)
        if np.any(np.abs(values - np.round(values)) > 1e-12):
            raise RewardError(
                "the discretisation scheme needs natural-number "
                "impulse rewards; scale the model")
        transposed_impulses = impulses.transpose().tocsr()
        groups = {}
        coo = base.tocoo()
        shift_cells = np.zeros(coo.nnz, dtype=np.int64)
        for k, (row, col) in enumerate(zip(coo.row, coo.col)):
            iota = transposed_impulses[row, col]
            shift_cells[k] = int(round(float(iota) * inverse_step))
        for cells in np.unique(shift_cells):
            mask = shift_cells == cells
            groups[int(cells)] = sp.coo_matrix(
                (coo.data[mask], (coo.row[mask], coo.col[mask])),
                shape=base.shape).tocsr()
        return groups

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(step={self.step}, "
                f"underflow={self.underflow!r})")
