"""The Tijms--Veldman discretisation (Section 4.3 of the paper).

Time and accumulated reward are discretised with a common step size
``d``; the step must be small enough that more than one transition per
interval is negligible (we require at least ``max_s E(s) * d <= 1``).
Rewards must be natural numbers -- rational rewards can always be
scaled, see :func:`integer_reward_scale`.

The scheme propagates the discretised joint density ``F^j(s, k)`` of
being in state ``s`` at time ``j * d`` with accumulated reward
``k * d``:

    F^1(s0, rho(s0)) = 1 / d
    F^{j+1}(s, k) = F^j(s, k - rho(s)) (1 - E(s) d)
                  + sum_{s'} F^j(s', k - rho(s')) R(s', s) d

(the displacement uses the reward rate of the state occupied during
the interval, as in Tijms & Veldman's original formulation).  After
``T = t / d`` steps,

    Pr{Y_t <= r, X_t in S'} ~~ sum_{s in S'} sum_{k<=R} F^T(s, k) d

with ``R = r / d``.  For out-of-range displacements (``rho(s) > k``)
the paper sets the index to zero; physically the density at negative
accumulated reward is zero, so dropping the term is the cleaner
reading.  Both variants are implemented (``underflow="drop"`` is the
default, ``"clamp"`` reproduces the paper's literal rule); they agree
whenever no probability mass sits at accumulated reward zero, in
particular on the paper's case study.

The whole per-step update is two sparse-matrix/dense-matrix products,
so the cost is ``O(T * nnz(R) * R / d)`` -- quadratic in ``1/d``,
matching the paper's observation that halving ``d`` quadruples the
runtime (Table 4).

**Batched all-initial-states evaluation.**  The recurrence above is a
linear map ``L`` on the ``(state, reward cell)`` density array, and the
model checker needs ``v[s0] = <w, L^{T-1} F^1_{s0}>`` for *every*
initial state ``s0``, where ``w`` is the indicator of the accepting
cells (target states, reward within bound).  Two batched formulations
replace the seed's ``|S|`` independent runs:

* the *adjoint* sweep (used by :meth:`DiscretizationEngine.\
joint_probability_vector`): propagate ``G^T = w`` backwards through the
  adjoint recurrence ``G^{j} = shift_rho^T( (1 - E d) G^{j+1}
  + R d G^{j+1} )`` and read off ``v[s0] = G^1(s0, rho(s0))`` -- one
  ``(|S|, R+1)`` array and two sparse x dense products per step cover
  all initial states at once, an ``|S|``-fold saving over the per-state
  loop;
* the *forward tensor* sweep (:meth:`DiscretizationEngine.\
final_density_batch`): propagate the ``(initial, state, reward cell)``
  density tensor in one pass when the full per-initial densities are
  wanted, again two sparse x dense products per step over the flattened
  trailing axes.

Both agree with the scalar :meth:`DiscretizationEngine.\
joint_probability_from` path to floating-point accuracy (it is the same
linear operator, applied forwards or backwards).

**Grid sweeps.**  For a whole ``(t, r)`` grid of bounds
(:meth:`~repro.algorithms.base.JointEngine.joint_probability_sweep`)
the adjoint recurrence's time-homogeneity pays once more: one backward
run per reward bound serves *every* time bound of that column
bit-identically, because the weight array after ``k`` applications is
the per-point answer for horizon ``(k + 1) d``.  Columns are
independent (the operator truncates at ``r / d`` cells) and fan out
over GIL-releasing threads (the ``max_workers`` knob).
"""

from __future__ import annotations

import time
from fractions import Fraction
from math import gcd
from typing import (Dict, Iterable, List, Optional, Sequence, Tuple,
                    Union)

import numpy as np
import scipy.sparse as sp

from repro.algorithms.base import (EngineCapabilities, JointEngine,
                                   register_engine,
                                   richardson_bracket)
from repro.algorithms.cache import EngineStats, matrix_cache
from repro.algorithms.erlang import (zero_reward_bound_sweep,
                                     zero_reward_bound_vector)
from repro.algorithms.parallel import threaded_map
from repro.ctmc.mrm import MarkovRewardModel
from repro.errors import NumericalError, RewardError
from repro.kernels import KernelBackend, note_selected, resolve_static
from repro.kernels.base import (DiscretizationPropagator, ShiftPlan,
                                StepOperator, build_shift_plan,
                                make_operator)
from repro.obs import OBS
from repro.obs import span as obs_span


def integer_reward_scale(rewards: Iterable[float],
                         max_denominator: int = 10 ** 6) -> int:
    """Smallest integer ``c`` making every reward in *rewards* integral.

    Raises :class:`~repro.errors.RewardError` when a reward is not
    (recognisably) rational with denominator up to *max_denominator*.
    """
    scale = 1
    for reward in rewards:
        fraction = Fraction(float(reward)).limit_denominator(max_denominator)
        if abs(float(fraction) - float(reward)) > 1e-9 * max(1.0, reward):
            raise RewardError(
                f"reward {reward} is not a small rational; "
                f"scale rewards manually")
        denominator = fraction.denominator
        scale = scale * denominator // gcd(scale, denominator)
    return scale


@register_engine
class DiscretizationEngine(JointEngine):
    """Tijms--Veldman engine with step size *step*.

    Parameters
    ----------
    step:
        The discretisation step ``d`` for both time and reward (the
        accuracy knob, Table 4 of the paper).  ``t/d`` must be an
        integer and ``max_s E(s) * d <= 1`` must hold.
    underflow:
        ``"drop"`` (density at negative accumulated reward is zero) or
        ``"clamp"`` (the paper's literal "set the index to 0" rule).
    include_zero:
        Include the ``k = 0`` cell in the final sum.  The paper's
        formula starts at ``k = 1``; the zero cell only carries mass
        when the initial state has reward zero.
    kernel:
        Kernel backend running the propagation loops (a name, a
        :class:`~repro.kernels.KernelBackend` instance, or ``None``
        for the default selection order -- see ``docs/KERNELS.md``).
        Backends agree to ``<= 1e-12``.
    """

    name = "discretization"

    @classmethod
    def capabilities(cls) -> EngineCapabilities:
        return EngineCapabilities(
            natural_rewards_only=True,
            grid_aligned_time=True,
            notes=("needs natural-number reward rates and impulses "
                   "and evaluates the joint distribution on the "
                   "d-grid only; memory grows with r/d"))

    def __init__(self,
                 step: float = 1.0 / 64,
                 underflow: str = "drop",
                 include_zero: bool = True,
                 max_workers: Optional[int] = None,
                 kernel: Union[str, KernelBackend, None] = None):
        if step <= 0.0:
            raise NumericalError(f"step must be positive, got {step}")
        if underflow not in ("drop", "clamp"):
            raise NumericalError(
                f"underflow must be 'drop' or 'clamp', got {underflow!r}")
        self.step = float(step)
        self.underflow = underflow
        self.include_zero = bool(include_zero)
        # Thread fan-out knob for the sweep path only; it never changes
        # results, so it stays out of the cache token.
        self.max_workers = max_workers
        self._kernel_request = kernel
        self._backend = resolve_static(kernel)
        self.kernel = ("auto" if self._backend is None
                       else self._backend.name)

    def _cache_token(self) -> Tuple:
        # Backends agree only to <= 1e-12, so the backend name keys the
        # result cache alongside the numeric knobs.  The "auto"
        # sentinel is sound: the per-model resolution is deterministic
        # given the model content already in the key.
        return (self.name, self.step, self.underflow, self.include_zero,
                self.kernel)

    def spec(self):
        return {"engine": self.name,
                "options": {"step": self.step,
                            "underflow": self.underflow,
                            "include_zero": self.include_zero,
                            "kernel": self._kernel_option()}}

    # ------------------------------------------------------------------
    # batched (all initial states) path
    # ------------------------------------------------------------------

    def _compute_joint_vector(self,
                              model: MarkovRewardModel,
                              t: float,
                              r: float,
                              indicator: np.ndarray) -> np.ndarray:
        """One adjoint sweep covering every initial state.

        Propagates the accepting-cell weight array backwards through
        the adjoint of the density recurrence (see the module
        docstring); the per-step cost equals *one* forward step, so the
        full vector costs as much as a single per-state run of the
        seed implementation.
        """
        if t == 0.0:
            return indicator.astype(float).copy()
        backend = self._backend_for(model)
        if r == 0.0:
            return zero_reward_bound_vector(model, t, indicator,
                                            kernel=backend)
        num_steps, num_cells, rho, _ = self._setup(model, t, r)
        n = model.num_states

        start = 0 if self.include_zero else 1
        weight = np.zeros((n, num_cells))
        weight[:, start:] = indicator[:, None]

        stepper = self._propagator(model, num_cells, weight,
                                   forward=False, backend=backend)
        note_selected(self.name, backend.name)
        matvec_hist = (OBS.metrics.histogram("repro_matvec_block_seconds",
                                             engine=self.name,
                                             kernel=backend.name)
                       if OBS.enabled else None)
        with obs_span("adjoint_propagation", steps=num_steps - 1,
                      cells=num_cells):
            for _ in range(num_steps - 1):
                # Adjoint step: the fused (diag(stay) + R d) product plus
                # the impulse shift-down products, then the per-state
                # reward shift down (see repro.kernels.base).
                if matvec_hist is not None:
                    block_start = time.perf_counter()
                weight = stepper.step()
                if matvec_hist is not None:
                    matvec_hist.observe(time.perf_counter() - block_start)
                self.stats.matvec_count += stepper.products_per_step
                self.stats.propagation_steps += 1

        result = np.zeros(n)
        in_range = rho < num_cells
        result[in_range] = weight[in_range, rho[in_range]]
        return np.clip(result, 0.0, 1.0)

    # ------------------------------------------------------------------
    # certified intervals: the d vs d/2 Richardson-style bracket
    # ------------------------------------------------------------------

    #: Finest step the refinement loop will request (the cost is
    #: quadratic in ``1/d``; below this a different engine is cheaper).
    MIN_STEP = 1.0 / 4096

    def _half_step_engine(self) -> "DiscretizationEngine":
        """The ``d/2`` companion used by the interval bracket."""
        return DiscretizationEngine(step=self.step / 2.0,
                                    underflow=self.underflow,
                                    include_zero=self.include_zero,
                                    max_workers=self.max_workers,
                                    kernel=self._kernel_request)

    def _compute_joint_interval(self, model, t, r, indicator):
        """Certified enclosure from the ``d`` vs ``d/2`` bracket.

        The scheme converges at rate O(d) (Table 4 of the paper), so
        the run at half the step carries at most half the error and
        :func:`~repro.algorithms.base.richardson_bracket` turns the two
        resolutions into a sound interval that contains both the exact
        value and this engine's own point value (the ``d`` run).  The
        half-step run goes through the shared result cache, so a later
        refinement to ``d/2`` starts from a warm cache.
        """
        coarse = self._compute_joint_vector(model, t, r, indicator)
        fine_engine = self._half_step_engine()
        target = np.flatnonzero(indicator)
        fine = fine_engine.joint_probability_vector(model, t, r, target)
        self.stats.merge(fine_engine.stats)
        return richardson_bracket(coarse, fine)

    def _compute_joint_interval_sweep(self, model, times, rewards,
                                      indicator):
        """Two bracketing shared-prefix sweeps (steps ``d`` and
        ``d/2``), combined cell-wise."""
        coarse = np.asarray(
            self._compute_joint_sweep(model, times, rewards, indicator),
            dtype=float)
        fine_engine = self._half_step_engine()
        target = np.flatnonzero(indicator)
        fine = np.asarray(
            fine_engine.joint_probability_sweep(model, times, rewards,
                                                target), dtype=float)
        self.stats.merge(fine_engine.stats)
        return richardson_bracket(coarse, fine)

    def refined(self):
        """Halve the step ``d`` (the Table 4 knob)."""
        if self.step / 2.0 < self.MIN_STEP:
            return None
        return self._half_step_engine()

    # ------------------------------------------------------------------
    # shared-prefix (t, r) grid path
    # ------------------------------------------------------------------

    def _compute_joint_sweep(self,
                             model: MarkovRewardModel,
                             times: Sequence[float],
                             rewards: Sequence[float],
                             indicator: np.ndarray) -> np.ndarray:
        """One adjoint propagation per reward bound covers every time.

        The adjoint recurrence is time-homogeneous: after ``k``
        applications the weight array holds the per-initial-state
        values for the horizon ``(k + 1) d``, so a single backward run
        to ``max(times)`` serves **all** requested time bounds of one
        reward column, bit-identically to the per-point runs (same
        operator, same application sequence, snapshots read mid-run).
        Cost per column: ``O(T_max * nnz * r/d)`` instead of
        ``O((sum_i T_i) * nnz * r/d)``.

        Columns are genuinely independent -- the operator's reward
        truncation depends on ``r`` -- and fan out over GIL-releasing
        threads (``max_workers`` knob); results keep grid order and
        the per-worker counters are merged deterministically.
        """
        times = [float(t) for t in times]
        live_times = [(i, t) for i, t in enumerate(times) if t > 0.0]
        positive_times = [t for _, t in live_times]
        backend = self._backend_for(model)

        def column(reward: float):
            stats = EngineStats()
            if not positive_times:
                return None, stats
            if reward == 0.0:
                rows = zero_reward_bound_sweep(model, positive_times,
                                               indicator, stats=stats,
                                               kernel=backend)
                return rows, stats
            return self._adjoint_column(model, positive_times, reward,
                                        indicator, stats, backend), stats

        columns = threaded_map(column, [float(r) for r in rewards],
                               max_workers=self.max_workers)
        grid = np.empty((len(times), len(rewards), model.num_states))
        for j, (values, stats) in enumerate(columns):
            self.stats.merge(stats)
            if values is not None:
                for row, (i, _) in enumerate(live_times):
                    grid[i, j] = values[row]
        # t = 0 rows: Y_0 = 0 <= r whatever r, matching the scalar path.
        for i, t in enumerate(times):
            if t == 0.0:
                grid[i, :, :] = indicator.astype(float)
        return grid

    def _adjoint_column(self,
                        model: MarkovRewardModel,
                        times: Sequence[float],
                        r: float,
                        indicator: np.ndarray,
                        stats: EngineStats,
                        backend: Optional[KernelBackend] = None
                        ) -> np.ndarray:
        """Backward values for a fixed bound *r* at several times.

        Returns the ``(len(times), |S|)`` array of joint-probability
        vectors; *times* must be positive multiples of the step.  The
        loop body is exactly :meth:`_compute_joint_vector`'s, with the
        weight array read off at every requested horizon instead of
        only the last one.
        """
        t_max = max(times)
        if backend is None:
            backend = self._backend_for(model)
        num_steps, num_cells, rho, _ = self._setup(model, t_max, r)
        n = model.num_states
        d = self.step
        snapshots: Dict[int, List[int]] = {}
        for index, t in enumerate(times):
            steps = t / d
            if abs(steps - round(steps)) > 1e-9:
                raise NumericalError(
                    f"time bound {t} is not a multiple of the step {d}")
            snapshots.setdefault(int(round(steps)), []).append(index)

        in_range = rho < num_cells

        start = 0 if self.include_zero else 1
        weight = np.zeros((n, num_cells))
        weight[:, start:] = indicator[:, None]

        stepper = self._propagator(model, num_cells, weight,
                                   forward=False, backend=backend)
        note_selected(self.name, backend.name)
        out = np.empty((len(times), n))
        matvec_hist = (OBS.metrics.histogram("repro_matvec_block_seconds",
                                             engine=self.name,
                                             kernel=backend.name)
                       if OBS.enabled else None)
        with obs_span("adjoint_column", r=float(r), steps=num_steps,
                      points=len(times)):
            for advances in range(num_steps):
                # `advances` applications done: the weight array holds
                # the values for the horizon (advances + 1) * d.
                for index in snapshots.get(advances + 1, ()):
                    result = np.zeros(n)
                    result[in_range] = weight[in_range, rho[in_range]]
                    out[index] = np.clip(result, 0.0, 1.0)
                if advances == num_steps - 1:
                    break
                if matvec_hist is not None:
                    block_start = time.perf_counter()
                weight = stepper.step()
                if matvec_hist is not None:
                    matvec_hist.observe(time.perf_counter() - block_start)
                stats.matvec_count += stepper.products_per_step
                stats.propagation_steps += 1
        return out

    def final_density_batch(self,
                            model: MarkovRewardModel,
                            t: float,
                            r: float,
                            initial_states: Optional[Sequence[int]] = None
                            ) -> np.ndarray:
        """Forward densities for a batch of initial states in one pass.

        Returns the ``(len(initial_states), |S|, R+1)`` array whose
        slice ``[b]`` equals :meth:`final_density` started in
        ``initial_states[b]`` (default: every state).  The whole batch
        advances through each step with two sparse x dense products on
        the ``(|S|, batch * (R+1))`` flattened tensor instead of
        ``len(initial_states)`` independent runs.
        """
        num_steps, num_cells, rho, _ = self._setup(model, t, r)
        n = model.num_states
        if initial_states is None:
            inits = np.arange(n)
        else:
            inits = np.asarray([int(s) for s in initial_states])
        batch = len(inits)

        density = np.zeros((n, batch, num_cells))
        for index, s0 in enumerate(inits):
            if rho[s0] < num_cells:
                density[s0, index, rho[s0]] = 1.0 / self.step

        backend = self._backend_for(model)
        stepper = self._propagator(model, num_cells, density,
                                   forward=True, batch=batch,
                                   backend=backend)
        note_selected(self.name, backend.name)
        matvec_hist = (OBS.metrics.histogram("repro_matvec_block_seconds",
                                             engine=self.name,
                                             kernel=backend.name)
                       if OBS.enabled else None)
        with obs_span("final_density_batch", steps=num_steps - 1,
                      batch=batch, cells=num_cells):
            for _ in range(num_steps - 1):
                if matvec_hist is not None:
                    block_start = time.perf_counter()
                density = stepper.step()
                if matvec_hist is not None:
                    matvec_hist.observe(time.perf_counter() - block_start)
                self.stats.matvec_count += stepper.products_per_step
                self.stats.propagation_steps += 1
        return np.ascontiguousarray(density.transpose(1, 0, 2))

    # ------------------------------------------------------------------
    # scalar (single initial state) path -- the seed formulation
    # ------------------------------------------------------------------

    def joint_probability_from(self,
                               model: MarkovRewardModel,
                               t: float,
                               r: float,
                               indicator: np.ndarray,
                               initial_state: int) -> float:
        """Joint probability from a single initial state (one run)."""
        if t == 0.0:
            return float(indicator[initial_state])
        if r == 0.0:
            exact = zero_reward_bound_vector(model, t, indicator,
                                             kernel=self._backend_for(model))
            return float(exact[initial_state])
        density = self.final_density(model, t, r, initial_state)
        start = 0 if self.include_zero else 1
        mass = density[:, start:] * self.step
        return float(min(1.0, (mass.sum(axis=1) * indicator).sum()))

    def final_density(self,
                      model: MarkovRewardModel,
                      t: float,
                      r: float,
                      initial_state: int) -> np.ndarray:
        """The discretised density ``F^T`` as an ``(|S|, R+1)`` array.

        ``F[s, k]`` approximates the joint density of ``(X_t, Y_t)`` at
        ``Y_t = k * d``, restricted to ``Y_t <= r`` (mass beyond the
        bound is discarded on the fly; it never flows back because
        displacements are non-negative).
        """
        num_steps, num_cells, rho, _ = self._setup(model, t, r)
        d = self.step

        density = np.zeros((model.num_states, num_cells))
        start_cell = min(int(rho[initial_state]), num_cells - 1)
        # F^1 places all mass (density 1/d) at the initial state with
        # one interval's reward already earned.
        if rho[initial_state] < num_cells:
            density[initial_state, start_cell] = 1.0 / d
        else:
            # The very first interval already exceeds the bound.
            return density

        stepper = self._propagator(model, num_cells, density,
                                   forward=True)
        for _ in range(num_steps - 1):
            density = stepper.step()
        return density

    # ------------------------------------------------------------------
    # shared setup and cached step matrices
    # ------------------------------------------------------------------

    def _propagator(self, model: MarkovRewardModel, num_cells: int,
                    state: np.ndarray, forward: bool,
                    batch: Optional[int] = None,
                    backend: Optional[KernelBackend] = None
                    ) -> DiscretizationPropagator:
        """A kernel stepper over the caller-seeded *state* array."""
        if backend is None:
            backend = self._backend_for(model)
        operator, impulses = self._step_operators(
            model, forward, backend.operator_policy)
        live = [(cells, op) for cells, op in impulses
                if cells < num_cells]
        plan = self._shift_plan(model)
        if batch is not None:
            plan = plan.expand(batch)
        return DiscretizationPropagator(
            backend, operator, live, plan,
            self.underflow == "clamp", state, forward)

    def _shift_plan(self, model: MarkovRewardModel) -> ShiftPlan:
        """The per-state reward displacement plan, cached per
        ``(model, step)`` -- the former per-call ``np.unique(rho)`` +
        ``np.flatnonzero`` group scan."""
        key = ("disc-shift-plan", model.fingerprint, self.step)
        plan = matrix_cache.get(key)
        if plan is None:
            plan = build_shift_plan(
                np.round(model.rewards).astype(np.int64))
            matrix_cache.put(key, plan)
        return plan

    def _step_operators(self, model: MarkovRewardModel, forward: bool,
                        policy: str = "auto"
                        ) -> Tuple[StepOperator,
                                   Tuple[Tuple[int, StepOperator], ...]]:
        """The fused per-step operator plus the impulse operators.

        ``diag(1 - E d)`` folds into the ``d``-scaled rate matrix, so
        the former ``stay[:, None] * W + base @ W`` pair becomes one
        product per step.  Cached per ``(model, step, orientation)``;
        under the default ``"auto"`` policy the representation (dense
        vs CSR) never depends on the kernel backend, so that cache
        entry is backend-neutral.  The sparse/dense backends pin the
        representation instead and get their own key element.
        """
        key = (("disc-step-op", model.fingerprint, self.step,
                bool(forward)) if policy == "auto"
               else ("disc-step-op", model.fingerprint, self.step,
                     bool(forward), policy))
        cached = matrix_cache.get(key)
        if cached is None:
            groups = dict(self._transposed_step_groups(model, self.step)
                          if forward
                          else self._step_groups(model, self.step))
            n = model.num_states
            base = groups.pop(0, sp.csr_matrix((n, n)))
            stay = 1.0 - model.exit_rates * self.step
            fused = (base + sp.diags(stay, 0, format="csr")).tocsr()
            operator = make_operator(fused, policy=policy)
            impulses = tuple(
                (int(cells), make_operator(matrix, policy=policy))
                for cells, matrix in sorted(groups.items()))
            cached = (operator, impulses)
            matrix_cache.put(key, cached)
        return cached

    def _setup(self, model: MarkovRewardModel, t: float, r: float
               ) -> Tuple[int, int, np.ndarray, np.ndarray]:
        """Validated ``(num_steps, num_cells, rho, stay)`` of a run."""
        d = self.step
        steps = t / d
        if abs(steps - round(steps)) > 1e-9:
            raise NumericalError(
                f"time bound {t} is not a multiple of the step {d}")
        num_steps = int(round(steps))
        if not model.has_integer_rewards():
            raise RewardError(
                "the discretisation scheme needs natural-number rewards; "
                "use model.scaled_rewards(integer_reward_scale(...)) and "
                "scale the reward bound accordingly")
        rho = np.round(model.rewards).astype(np.int64)
        exit_rates = model.exit_rates
        if exit_rates.max() * d > 1.0 + 1e-12:
            raise NumericalError(
                f"step {d} too coarse: max exit rate {exit_rates.max()} "
                f"gives a negative stay probability; need d <= "
                f"{1.0 / exit_rates.max()}")
        num_cells = int(np.floor(r / d + 1e-9)) + 1
        stay = 1.0 - exit_rates * d
        return num_steps, num_cells, rho, stay

    @classmethod
    def _step_groups(cls, model: MarkovRewardModel, d: float
                     ) -> Dict[int, sp.csr_matrix]:
        """``d``-scaled rate matrices grouped by the number of reward
        cells their impulse displaces (0 for no impulse), in forward
        (row = source) orientation; cached per ``(model, d)``."""
        key = ("disc-groups", model.fingerprint, float(d))
        groups = matrix_cache.get(key)
        if groups is None:
            groups = cls._build_step_groups(model, d)
            matrix_cache.put(key, groups)
        return groups

    @classmethod
    def _transposed_step_groups(cls, model: MarkovRewardModel, d: float
                                ) -> Dict[int, sp.csr_matrix]:
        """The transposed (column = source) variant of
        :meth:`_step_groups`, used by the forward propagations."""
        key = ("disc-groups-T", model.fingerprint, float(d))
        groups = matrix_cache.get(key)
        if groups is None:
            groups = {cells: matrix.transpose().tocsr()
                      for cells, matrix in
                      cls._step_groups(model, d).items()}
            matrix_cache.put(key, groups)
        return groups

    @staticmethod
    def _build_step_groups(model: MarkovRewardModel, d: float
                           ) -> Dict[int, sp.csr_matrix]:
        base = (model.rate_matrix * d).tocsr()
        if not model.has_impulse_rewards:
            return {0: base}
        inverse_step = 1.0 / d
        if abs(inverse_step - round(inverse_step)) > 1e-9:
            raise NumericalError(
                "impulse rewards need a step of the form 1/n so the "
                "impulse displacement is an integer number of cells")
        impulses = model.impulse_matrix
        values = np.unique(impulses.data)
        if np.any(np.abs(values - np.round(values)) > 1e-12):
            raise RewardError(
                "the discretisation scheme needs natural-number "
                "impulse rewards; scale the model")
        coo = base.tocoo()
        iota = np.asarray(impulses[coo.row, coo.col]).ravel()
        shift_cells = np.rint(iota * inverse_step).astype(np.int64)
        groups = {}
        for cells in np.unique(shift_cells):
            mask = shift_cells == cells
            groups[int(cells)] = sp.coo_matrix(
                (coo.data[mask], (coo.row[mask], coo.col[mask])),
                shape=base.shape).tocsr()
        return groups

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(step={self.step}, "
                f"underflow={self.underflow!r})")
