"""GIL-releasing threaded fan-out for independent engine queries.

The sweep API (:meth:`~repro.algorithms.base.JointEngine.\
joint_probability_sweep`) removes the redundancy *within* one
``(t, r)`` grid, but a workload still contains genuinely independent
computations: the distinct reduced models produced by
``until_reduction`` for different formulas, or the distinct
``r``-driven chain expansions of the pseudo-Erlang engine.  Those are
embarrassingly parallel, and the heavy inner loops -- scipy's sparse
matrix x dense block products and :func:`scipy.signal.lfilter` --
release the GIL, so plain threads give real wall-clock parallelism
without pickling models across processes.

Design rules, enforced here so callers do not have to think about
them:

* **Deterministic ordering** -- results come back in task order
  whatever the completion order, and worker statistics are merged in
  task order too, so repeated runs are bit-identical.
* **Per-worker statistics** -- every task runs on a shallow *clone* of
  the engine with a private :class:`~repro.algorithms.cache.\
EngineStats`; the clones share the accuracy parameters (hence the
  result cache entries, the caches are lock-protected) but never race
  on counters.  After the join, the clones' counters are merged into
  ``engine.stats``.
* **`max_workers` knob** -- ``None`` picks ``min(cpu_count, 8,
  len(tasks))``; ``1`` (or a single task) degrades to a plain
  sequential loop with zero threading overhead.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Upper bound on the default worker count; fan-outs are memory-bound
#: sparse kernels, so more threads than this rarely help.
DEFAULT_WORKER_CAP = 8


def resolve_workers(max_workers: Optional[int], num_tasks: int) -> int:
    """The effective worker count for *num_tasks* tasks.

    ``None`` means ``min(cpu_count, DEFAULT_WORKER_CAP, num_tasks)``;
    explicit values are clipped to the task count (threads without
    work are never spawned).
    """
    if num_tasks <= 0:
        return 0
    if max_workers is None:
        available = os.cpu_count() or 1
        return max(1, min(available, DEFAULT_WORKER_CAP, num_tasks))
    return max(1, min(int(max_workers), num_tasks))


def threaded_map(function: Callable[[_T], _R],
                 items: Sequence[_T],
                 max_workers: Optional[int] = None) -> List[_R]:
    """``[function(x) for x in items]`` on a thread pool, order kept.

    Falls back to a sequential loop when only one worker (or one item)
    is effective.  Exceptions propagate to the caller exactly as in
    the sequential case.
    """
    items = list(items)
    workers = resolve_workers(max_workers, len(items))
    if workers <= 1:
        return [function(item) for item in items]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(function, items))


def parallel_joint_vectors(engine,
                           queries: Iterable[Tuple],
                           max_workers: Optional[int] = None
                           ) -> List[np.ndarray]:
    """Fan independent ``joint_probability_vector`` queries over threads.

    *queries* is a sequence of ``(model, t, r, target)`` tuples --
    typically distinct reduced models, or grid points no sweep can
    share.  Results return in query order; every worker clone's
    counters are merged into ``engine.stats`` afterwards.
    """
    queries = list(queries)
    clones = [engine._worker_clone() for _ in queries]

    def run(task):
        clone, (model, t, r, target) = task
        return clone.joint_probability_vector(model, t, r, target)

    results = threaded_map(run, list(zip(clones, queries)), max_workers)
    for clone in clones:
        engine.stats.merge(clone.stats)
    return results


def parallel_joint_sweeps(engine,
                          queries: Iterable[Tuple],
                          max_workers: Optional[int] = None
                          ) -> List[np.ndarray]:
    """Fan independent ``joint_probability_sweep`` grids over threads.

    *queries* is a sequence of ``(model, times, reward_bounds,
    target)`` tuples; each yields a ``(len(times), len(reward_bounds),
    |S|)`` grid.  This is the "distinct models" axis of parallelism --
    each model's grid is itself evaluated with the shared-prefix sweep,
    so the two reuse layers compose.
    """
    queries = list(queries)
    clones = [engine._worker_clone() for _ in queries]

    def run(task):
        clone, (model, times, rewards, target) = task
        return clone.joint_probability_sweep(model, times, rewards,
                                             target)

    results = threaded_map(run, list(zip(clones, queries)), max_workers)
    for clone in clones:
        engine.stats.merge(clone.stats)
    return results
