"""GIL-releasing threaded fan-out for independent engine queries.

The sweep API (:meth:`~repro.algorithms.base.JointEngine.\
joint_probability_sweep`) removes the redundancy *within* one
``(t, r)`` grid, but a workload still contains genuinely independent
computations: the distinct reduced models produced by
``until_reduction`` for different formulas, or the distinct
``r``-driven chain expansions of the pseudo-Erlang engine.  Those are
embarrassingly parallel, and the heavy inner loops -- scipy's sparse
matrix x dense block products and :func:`scipy.signal.lfilter` --
release the GIL, so plain threads give real wall-clock parallelism
without pickling models across processes.

Design rules, enforced here so callers do not have to think about
them:

* **Deterministic ordering** -- results come back in task order
  whatever the completion order, and worker statistics are merged in
  task order too, so repeated runs are bit-identical.
* **Per-worker statistics** -- every task runs on a shallow *clone* of
  the engine with a private :class:`~repro.algorithms.cache.\
EngineStats`; the clones share the accuracy parameters (hence the
  result cache entries, the caches are lock-protected) but never race
  on counters.  After the join, the clones' counters are merged into
  ``engine.stats``.
* **Failure isolation** -- a raising worker does not poison the pool:
  its exception is wrapped in a :class:`~repro.errors.WorkerError`
  carrying the task index and label, not-yet-started tasks are
  cancelled, and one :class:`~repro.errors.ParallelExecutionError`
  with *every* failure attached is raised after the pool has drained
  (no thread is left running).
* **Deadlines** -- :func:`deadline_map` runs a fan-out against a
  wall-clock deadline and returns whatever completed, plus an explicit
  record of the tasks that did not, instead of raising.
* **`max_workers` knob** -- ``None`` picks ``min(cpu_count, 8,
  len(tasks))``; ``1`` (or a single task) degrades to a plain
  sequential loop with zero threading overhead.

For sweep workloads that need *crash* isolation rather than thread
isolation -- worker segfaults, OOM kills, hangs -- the process-based
executor in :mod:`repro.exec` builds on the same contracts
(``resolve_workers``, deadline bookkeeping, ``WorkerError`` /
``ParallelExecutionError``) and adds retries, circuit breaking and
checkpointed resume; see ``docs/EXECUTION.md``.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import (FIRST_EXCEPTION, ThreadPoolExecutor,
                                wait)
from typing import (Callable, Iterable, List, Optional, Sequence,
                    Tuple, TypeVar)

import numpy as np

from repro.errors import ParallelExecutionError, WorkerError
from repro.obs import OBS, REGISTRY

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Upper bound on the default worker count; fan-outs are memory-bound
#: sparse kernels, so more threads than this rarely help.
DEFAULT_WORKER_CAP = 8


def remaining(deadline: Optional[float]) -> float:
    """Seconds left until *deadline* (an absolute ``time.monotonic()``
    timestamp); ``math.inf`` when there is no deadline.

    The single time-arithmetic point of the module: every deadline
    comparison is ``remaining(deadline) <= 0.0`` and every pool wait
    timeout is derived from the same value, so the slack cannot drift
    between call sites.
    """
    if deadline is None:
        return math.inf
    return deadline - time.monotonic()


def _record_deadline_missed(count: int) -> None:
    """Count tasks abandoned because their deadline passed.

    Recorded unconditionally (the registry is always on): a silent
    timeout is precisely the situation observability must not lose.
    """
    if count > 0:
        REGISTRY.counter("repro_deadline_missed_total").inc(count)


def _traced(function: Callable[[_T], _R],
            labels: Optional[Sequence[str]]
            ) -> Callable[[int, _T], _R]:
    """Wrap *function* for the fan-out: with observability enabled,
    each task runs inside a worker-labelled child span attached to the
    *calling* thread's current span (captured here, before any worker
    starts), so a sweep's tasks appear under the sweep span instead of
    as detached roots."""
    if not OBS.enabled:
        return lambda index, item: function(item)
    parent = OBS.tracer.current()

    def run(index: int, item: _T) -> _R:
        label = _label_of(labels, index) or f"task {index}"
        with OBS.tracer.span("worker", parent=parent, worker=label):
            return function(item)

    return run


def resolve_workers(max_workers: Optional[int], num_tasks: int) -> int:
    """The effective worker count for *num_tasks* tasks.

    ``None`` means ``min(cpu_count, DEFAULT_WORKER_CAP, num_tasks)``;
    explicit values are clipped to the task count (threads without
    work are never spawned).
    """
    if num_tasks <= 0:
        return 0
    if max_workers is None:
        available = os.cpu_count() or 1
        return max(1, min(available, DEFAULT_WORKER_CAP, num_tasks))
    return max(1, min(int(max_workers), num_tasks))


def _label_of(labels: Optional[Sequence[str]], index: int
              ) -> Optional[str]:
    if labels is None:
        return None
    try:
        return labels[index]
    except IndexError:
        return None


def threaded_map(function: Callable[[_T], _R],
                 items: Sequence[_T],
                 max_workers: Optional[int] = None,
                 labels: Optional[Sequence[str]] = None) -> List[_R]:
    """``[function(x) for x in items]`` on a thread pool, order kept.

    Falls back to a sequential loop when only one worker (or one item)
    is effective.  A raising task aborts the fan-out *cleanly*: tasks
    that have not started yet are cancelled, already-running tasks
    drain, and a single :class:`~repro.errors.ParallelExecutionError`
    is raised whose ``failures`` list holds one
    :class:`~repro.errors.WorkerError` (task index, optional *labels*
    entry, original exception) per failing task.  The sequential path
    raises the same wrapper so callers handle one exception shape.
    """
    items = list(items)
    workers = resolve_workers(max_workers, len(items))
    task = _traced(function, labels)
    if workers <= 1:
        results: List[_R] = []
        for index, item in enumerate(items):
            try:
                results.append(task(index, item))
            except Exception as exc:
                failure = WorkerError(index, exc,
                                      _label_of(labels, index))
                error = ParallelExecutionError([failure], len(items))
                raise error from exc
        return results
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(task, index, item)
                   for index, item in enumerate(items)]
        done, pending = wait(futures, return_when=FIRST_EXCEPTION)
        if any(f.exception() is not None for f in done):
            # Cancel everything that has not started; running tasks
            # drain when the pool context exits.
            for future in pending:
                future.cancel()
    failures = [WorkerError(index, future.exception(),
                            _label_of(labels, index))
                for index, future in enumerate(futures)
                if not future.cancelled()
                and future.exception() is not None]
    if failures:
        error = ParallelExecutionError(failures, len(items))
        raise error from failures[0].cause
    return [future.result() for future in futures]


def deadline_map(function: Callable[[_T], _R],
                 items: Sequence[_T],
                 deadline: Optional[float] = None,
                 max_workers: Optional[int] = None,
                 labels: Optional[Sequence[str]] = None
                 ) -> Tuple[List[Optional[_R]], List[bool],
                            List[WorkerError]]:
    """Fan out *items* against a wall-clock *deadline*, keeping
    whatever completes.

    *deadline* is an absolute ``time.monotonic()`` timestamp (``None``
    = no deadline).  Returns ``(results, completed, failures)``:
    ``results[i]`` is the task's value (``None`` when it did not
    complete), ``completed[i]`` says whether it did, and *failures*
    collects a :class:`~repro.errors.WorkerError` per raising task in
    task order -- nothing is raised, so partial progress survives.

    When the deadline passes, tasks that have not started are
    cancelled and the pool drains its running tasks before this
    function returns (no thread is left running); tasks that finish
    while draining still count as completed.
    """
    items = list(items)
    n = len(items)
    results: List[Optional[_R]] = [None] * n
    completed = [False] * n
    failures: List[WorkerError] = []

    def record(index: int, future) -> None:
        if future.cancelled():
            return
        exc = future.exception()
        if exc is not None:
            failures.append(
                WorkerError(index, exc, _label_of(labels, index)))
        else:
            results[index] = future.result()
            completed[index] = True

    workers = resolve_workers(max_workers, n)
    task = _traced(function, labels)
    if workers <= 1:
        started = 0
        for index, item in enumerate(items):
            if remaining(deadline) <= 0.0:
                break
            started = index + 1
            try:
                results[index] = task(index, item)
                completed[index] = True
            except Exception as exc:
                failures.append(
                    WorkerError(index, exc, _label_of(labels, index)))
        _record_deadline_missed(n - started)
        return results, completed, failures

    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(task, index, item)
                   for index, item in enumerate(items)]
        pending = set(futures)
        while pending:
            left = remaining(deadline)
            timeout = None if left == math.inf else max(0.0, left)
            done, pending = wait(pending, timeout=timeout)
            if pending and remaining(deadline) <= 0.0:
                cancelled = sum(
                    1 for future in pending if future.cancel())
                _record_deadline_missed(cancelled)
                break
        # The context exit joins the running stragglers.
    for index, future in enumerate(futures):
        record(index, future)
    failures.sort(key=lambda failure: failure.index)
    return results, completed, failures


def publish_clone_stats(engine_name: str, clones) -> None:
    """Publish each worker clone's counter delta, worker-labelled.

    Every fan-out gives its clones fresh
    :class:`~repro.algorithms.cache.EngineStats`, so a clone's
    counters *are* its delta.  Publication happens here, at the
    fan-out site, rather than inside the clone's own engine span --
    whether a pool ran a task inline or on a fresh thread must not
    decide whether its counters surface.  The labels
    (``worker="thread-i"``) mirror the process executor's
    ``worker="process-N"`` scheme, so summing a counter over its
    ``worker`` label gives the same totals whichever executor ran the
    sweep.
    """
    if not OBS.enabled:
        return
    from repro.obs import record_engine_stats
    for clone in clones:
        delta = clone.stats.as_dict()
        if any(delta.values()):
            record_engine_stats(
                OBS.metrics, engine_name, delta,
                worker=getattr(clone, "_obs_worker_label", None)
                or "thread-?")


def parallel_joint_vectors(engine,
                           queries: Iterable[Tuple],
                           max_workers: Optional[int] = None
                           ) -> List[np.ndarray]:
    """Fan independent ``joint_probability_vector`` queries over threads.

    *queries* is a sequence of ``(model, t, r, target)`` tuples --
    typically distinct reduced models, or grid points no sweep can
    share.  Results return in query order; every worker clone's
    counters are merged into ``engine.stats`` afterwards (also when a
    task fails -- completed workers' counters are never lost).
    """
    queries = list(queries)
    clones = [engine._worker_clone(label=f"thread-{i}")
              for i in range(len(queries))]

    def run(task):
        clone, (model, t, r, target) = task
        return clone.joint_probability_vector(model, t, r, target)

    labels = [f"query {i}: t={q[1]}, r={q[2]}"
              for i, q in enumerate(queries)]
    try:
        return threaded_map(run, list(zip(clones, queries)),
                            max_workers, labels=labels)
    finally:
        publish_clone_stats(engine.name, clones)
        for clone in clones:
            engine.stats.merge(clone.stats)


def parallel_joint_sweeps(engine,
                          queries: Iterable[Tuple],
                          max_workers: Optional[int] = None
                          ) -> List[np.ndarray]:
    """Fan independent ``joint_probability_sweep`` grids over threads.

    *queries* is a sequence of ``(model, times, reward_bounds,
    target)`` tuples; each yields a ``(len(times), len(reward_bounds),
    |S|)`` grid.  This is the "distinct models" axis of parallelism --
    each model's grid is itself evaluated with the shared-prefix sweep,
    so the two reuse layers compose.
    """
    queries = list(queries)
    clones = [engine._worker_clone(label=f"thread-{i}")
              for i in range(len(queries))]

    def run(task):
        clone, (model, times, rewards, target) = task
        return clone.joint_probability_sweep(model, times, rewards,
                                             target)

    labels = [f"sweep {i}" for i in range(len(queries))]
    try:
        return threaded_map(run, list(zip(clones, queries)),
                            max_workers, labels=labels)
    finally:
        publish_clone_stats(engine.name, clones)
        for clone in clones:
            engine.stats.merge(clone.stats)
