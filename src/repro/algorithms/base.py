"""Common interface of the joint-distribution engines.

Every engine computes, for an MRM with accumulated reward ``Y_t``, the
*joint* probability

    Pr{ Y_t <= r, X_t in target | X_0 = s }        for every state s,

the quantity that Theorem 2 of the paper reduces time- and
reward-bounded until checking to.  Engines are stateless value objects
holding their accuracy parameters, so one engine instance can be reused
across models and queries.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, Optional, Sequence, Type

import numpy as np

from repro.ctmc.mrm import MarkovRewardModel
from repro.errors import NumericalError


class JointEngine(ABC):
    """Computes ``Pr{Y_t <= r, X_t in target}`` on an MRM."""

    #: Short identifier used by :func:`get_engine` and the CLI.
    name: str = "abstract"

    @abstractmethod
    def joint_probability_vector(self,
                                 model: MarkovRewardModel,
                                 t: float,
                                 r: float,
                                 target: Iterable[int]) -> np.ndarray:
        """Per-initial-state joint probabilities.

        Returns the vector ``v`` with
        ``v[s] = Pr{Y_t <= r, X_t in target | X_0 = s}``.
        """

    def joint_probability(self,
                          model: MarkovRewardModel,
                          t: float,
                          r: float,
                          target: Iterable[int],
                          initial: Optional[Sequence[float]] = None
                          ) -> float:
        """The joint probability from *initial* (default: the model's
        initial distribution)."""
        vector = self.joint_probability_vector(model, t, r, target)
        alpha = (model.initial_distribution if initial is None
                 else np.asarray(initial, dtype=float))
        return float(alpha @ vector)

    # ------------------------------------------------------------------

    @staticmethod
    def _validate(model: MarkovRewardModel, t: float, r: float,
                  target: Iterable[int]) -> np.ndarray:
        """Shared argument validation; returns the target indicator."""
        if t < 0.0:
            raise NumericalError(f"time bound must be >= 0, got {t}")
        if r < 0.0:
            raise NumericalError(f"reward bound must be >= 0, got {r}")
        indicator = np.zeros(model.num_states)
        for s in target:
            s = int(s)
            if not 0 <= s < model.num_states:
                raise NumericalError(
                    f"target state {s} outside the state space")
            indicator[s] = 1.0
        return indicator

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_REGISTRY: Dict[str, Type[JointEngine]] = {}


def register_engine(cls: Type[JointEngine]) -> Type[JointEngine]:
    """Class decorator adding an engine to the name registry."""
    _REGISTRY[cls.name] = cls
    return cls


def available_engines() -> "list[str]":
    """Names of all registered engines."""
    return sorted(_REGISTRY)


def get_engine(name: str, **options) -> JointEngine:
    """Instantiate a registered engine by name.

    >>> get_engine("sericola").name
    'sericola'
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise NumericalError(
            f"unknown engine {name!r}; available: "
            f"{', '.join(available_engines())}") from None
    return cls(**options)
