"""Common interface of the joint-distribution engines.

Every engine computes, for an MRM with accumulated reward ``Y_t``, the
*joint* probability

    Pr{ Y_t <= r, X_t in target | X_0 = s }        for every state s,

the quantity that Theorem 2 of the paper reduces time- and
reward-bounded until checking to.  Engines are stateless value objects
holding their accuracy parameters, so one engine instance can be reused
across models and queries.

The entry point :meth:`JointEngine.joint_probability_vector` is a
template method: it validates the query, consults the shared
least-recently-used result cache (:mod:`repro.algorithms.cache`) keyed
on ``(model fingerprint, engine parameters, t, r, target mask)``, and
only on a miss invokes the engine's batched computation
:meth:`JointEngine._compute_joint_vector`, which produces the values
for **all initial states in one propagation**.  Per-engine run counters
(cache hits/misses, propagation steps, sparse products) are exposed as
:attr:`JointEngine.stats`.

:meth:`JointEngine.joint_probability_sweep` extends the template to a
whole ``(t, r)`` grid: the cache is consulted *per grid point* (the
keys are exactly the scalar keys, so sweep and scalar calls feed each
other), and the missing sub-grid goes to the engine's
:meth:`JointEngine._compute_joint_sweep`, whose engine-native
overrides share the propagation prefix across the grid instead of
re-running per point (one discretisation tensor run, one Sericola
series, one Erlang iterate sequence per reward bound).
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.algorithms.cache import EngineStats, joint_cache
from repro.ctmc.mrm import MarkovRewardModel
from repro.errors import NumericalError


class JointEngine(ABC):
    """Computes ``Pr{Y_t <= r, X_t in target}`` on an MRM."""

    #: Short identifier used by :func:`get_engine` and the CLI.
    name: str = "abstract"

    @property
    def stats(self) -> EngineStats:
        """Run counters of this engine instance (see
        :class:`~repro.algorithms.cache.EngineStats`)."""
        existing = getattr(self, "_stats", None)
        if existing is None:
            existing = self._stats = EngineStats()
        return existing

    def joint_probability_vector(self,
                                 model: MarkovRewardModel,
                                 t: float,
                                 r: float,
                                 target: Iterable[int]) -> np.ndarray:
        """Per-initial-state joint probabilities, batched and cached.

        Returns the vector ``v`` with
        ``v[s] = Pr{Y_t <= r, X_t in target | X_0 = s}``, computed for
        every initial state in a single propagation.  Identical queries
        (same model content, engine parameters, bounds and target set)
        are served from the shared LRU cache; the
        :attr:`stats` counters record hits and misses.
        """
        indicator = self._validate(model, t, r, target)
        key = (model.fingerprint, self._cache_token(),
               float(t), float(r), indicator.tobytes())
        cached = joint_cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached.copy()
        self.stats.cache_misses += 1
        vector = np.asarray(
            self._compute_joint_vector(model, t, r, indicator),
            dtype=float)
        frozen = vector.copy()
        frozen.flags.writeable = False
        joint_cache.put(key, frozen)
        return vector

    @abstractmethod
    def _compute_joint_vector(self,
                              model: MarkovRewardModel,
                              t: float,
                              r: float,
                              indicator: np.ndarray) -> np.ndarray:
        """The engine's batched computation for all initial states.

        *indicator* is the validated 0/1 vector of the target set.
        Implementations must not read or write the result cache.
        """

    def joint_probability_sweep(self,
                                model: MarkovRewardModel,
                                times: Sequence[float],
                                reward_bounds: Sequence[float],
                                target: Iterable[int]) -> np.ndarray:
        """Joint probabilities over a whole ``(t, r)`` grid, shared.

        Returns the array ``grid`` of shape ``(len(times),
        len(reward_bounds), |S|)`` with ``grid[i, j, s] =
        Pr{Y_{t_i} <= r_j, X_{t_i} in target | X_0 = s}`` -- every cell
        equals an independent :meth:`joint_probability_vector` call,
        but the engine shares the propagation prefix across the grid
        (see :meth:`_compute_joint_sweep`) instead of re-running per
        point.

        Caching is per grid point with the *scalar* cache keys:
        already-cached cells are filled from the LRU (a per-point
        ``cache_hits`` increment), the remaining cells are computed in
        one engine-native sweep over the distinct missing rows and
        columns and then cached individually, so later scalar queries
        hit.  ``stats.sweep_points`` counts the grid cells served.
        """
        times = [float(t) for t in times]
        rewards = [float(r) for r in reward_bounds]
        for t in times:
            if t < 0.0:
                raise NumericalError(
                    f"time bound must be >= 0, got {t}")
        for r in rewards:
            if r < 0.0:
                raise NumericalError(
                    f"reward bound must be >= 0, got {r}")
        indicator = self._validate(model, 0.0, 0.0, target)
        token = self._cache_token()
        mask = indicator.tobytes()
        grid = np.empty((len(times), len(rewards), model.num_states))
        self.stats.sweep_points += grid.shape[0] * grid.shape[1]
        missing: List[Tuple[int, int]] = []
        for i, t in enumerate(times):
            for j, r in enumerate(rewards):
                key = (model.fingerprint, token, t, r, mask)
                cached = joint_cache.get(key)
                if cached is not None:
                    self.stats.cache_hits += 1
                    grid[i, j] = cached
                else:
                    self.stats.cache_misses += 1
                    missing.append((i, j))
        if not missing:
            return grid
        # One engine-native sweep over the distinct times/rewards that
        # still need work; duplicates in the request collapse here.
        need_times = sorted({times[i] for i, _ in missing})
        need_rewards = sorted({rewards[j] for _, j in missing})
        t_index = {t: i for i, t in enumerate(need_times)}
        r_index = {r: j for j, r in enumerate(need_rewards)}
        computed = np.asarray(
            self._compute_joint_sweep(model, need_times, need_rewards,
                                      indicator), dtype=float)
        stored = set()
        for i, j in missing:
            vector = computed[t_index[times[i]], r_index[rewards[j]]]
            grid[i, j] = vector
            point = (times[i], rewards[j])
            if point in stored:
                continue
            stored.add(point)
            frozen = vector.copy()
            frozen.flags.writeable = False
            joint_cache.put(
                (model.fingerprint, token, times[i], rewards[j], mask),
                frozen)
        return grid

    def _compute_joint_sweep(self,
                             model: MarkovRewardModel,
                             times: Sequence[float],
                             rewards: Sequence[float],
                             indicator: np.ndarray) -> np.ndarray:
        """Engine-native grid computation (uncached).

        The base implementation falls back to one
        :meth:`_compute_joint_vector` run per grid point; the concrete
        engines override it with shared-prefix evaluations.
        Implementations must not read or write the result cache, and
        must return an array of shape ``(len(times), len(rewards),
        |S|)`` whose cells match the scalar path to floating-point
        accuracy.
        """
        grid = np.empty((len(times), len(rewards), model.num_states))
        for i, t in enumerate(times):
            for j, r in enumerate(rewards):
                grid[i, j] = self._compute_joint_vector(model, t, r,
                                                        indicator)
        return grid

    def _worker_clone(self) -> "JointEngine":
        """A shallow copy with a private :class:`EngineStats`.

        The threaded fan-out (:mod:`repro.algorithms.parallel`) gives
        every worker its own clone so counter updates never race;
        accuracy parameters (and hence cache tokens) are shared, so
        clones interoperate with the result cache exactly like the
        original.
        """
        clone = copy.copy(self)
        clone._stats = EngineStats()
        return clone

    def joint_probability(self,
                          model: MarkovRewardModel,
                          t: float,
                          r: float,
                          target: Iterable[int],
                          initial: Optional[Sequence[float]] = None
                          ) -> float:
        """The joint probability from *initial* (default: the model's
        initial distribution)."""
        vector = self.joint_probability_vector(model, t, r, target)
        alpha = (model.initial_distribution if initial is None
                 else np.asarray(initial, dtype=float))
        return float(alpha @ vector)

    def joint_probability_from(self,
                               model: MarkovRewardModel,
                               t: float,
                               r: float,
                               indicator: np.ndarray,
                               initial_state: int) -> float:
        """Joint probability from a single initial state.

        The base implementation runs the engine's (uncached) batched
        computation and reads off one entry -- engines with a genuinely
        scalar algorithm (the discretisation's single-initial-state
        propagation, the pseudo-Erlang forward analysis) override this
        with an independent per-state path, which the equivalence tests
        compare against the batched vector.
        """
        indicator = np.asarray(indicator, dtype=float)
        vector = self._compute_joint_vector(model, float(t), float(r),
                                            indicator)
        return float(vector[int(initial_state)])

    # ------------------------------------------------------------------

    def _cache_token(self) -> Tuple:
        """Hashable identity of the engine's accuracy parameters.

        Two engine instances with equal tokens must compute identical
        results, so they may share cache entries.  The default covers
        every public non-callable attribute; engines with
        diagnostics-only state override this with an explicit tuple.
        """
        return (self.name,)

    @staticmethod
    def _validate(model: MarkovRewardModel, t: float, r: float,
                  target: Iterable[int]) -> np.ndarray:
        """Shared argument validation; returns the target indicator."""
        if t < 0.0:
            raise NumericalError(f"time bound must be >= 0, got {t}")
        if r < 0.0:
            raise NumericalError(f"reward bound must be >= 0, got {r}")
        indicator = np.zeros(model.num_states)
        for s in target:
            s = int(s)
            if not 0 <= s < model.num_states:
                raise NumericalError(
                    f"target state {s} outside the state space")
            indicator[s] = 1.0
        return indicator

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_REGISTRY: Dict[str, Type[JointEngine]] = {}


def register_engine(cls: Type[JointEngine]) -> Type[JointEngine]:
    """Class decorator adding an engine to the name registry."""
    _REGISTRY[cls.name] = cls
    return cls


def available_engines() -> "list[str]":
    """Names of all registered engines."""
    return sorted(_REGISTRY)


def get_engine(name: str, **options) -> JointEngine:
    """Instantiate a registered engine by name.

    >>> get_engine("sericola").name
    'sericola'
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise NumericalError(
            f"unknown engine {name!r}; available: "
            f"{', '.join(available_engines())}") from None
    return cls(**options)
