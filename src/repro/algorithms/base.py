"""Common interface of the joint-distribution engines.

Every engine computes, for an MRM with accumulated reward ``Y_t``, the
*joint* probability

    Pr{ Y_t <= r, X_t in target | X_0 = s }        for every state s,

the quantity that Theorem 2 of the paper reduces time- and
reward-bounded until checking to.  Engines are stateless value objects
holding their accuracy parameters, so one engine instance can be reused
across models and queries.

The entry point :meth:`JointEngine.joint_probability_vector` is a
template method: it validates the query, consults the shared
least-recently-used result cache (:mod:`repro.algorithms.cache`) keyed
on ``(model fingerprint, engine parameters, t, r, target mask)``, and
only on a miss invokes the engine's batched computation
:meth:`JointEngine._compute_joint_vector`, which produces the values
for **all initial states in one propagation**.  Per-engine run counters
(cache hits/misses, propagation steps, sparse products) are exposed as
:attr:`JointEngine.stats`.

:meth:`JointEngine.joint_probability_sweep` extends the template to a
whole ``(t, r)`` grid: the cache is consulted *per grid point* (the
keys are exactly the scalar keys, so sweep and scalar calls feed each
other), and the missing sub-grid goes to the engine's
:meth:`JointEngine._compute_joint_sweep`, whose engine-native
overrides share the propagation prefix across the grid instead of
re-running per point (one discretisation tensor run, one Sericola
series, one Erlang iterate sequence per reward bound).
"""

from __future__ import annotations

import copy
import threading
import time
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (Dict, Iterable, Iterator, List, Optional, Sequence,
                    Tuple, Type)

import numpy as np

from repro.algorithms.cache import EngineStats, joint_cache
from repro.ctmc.mrm import MarkovRewardModel
from repro.errors import NumericalError, WorkerError
from repro.obs import OBS, peak_rss_bytes, record_engine_stats
from repro.obs import span as obs_span

#: Per-thread nesting depth of :meth:`JointEngine._observed` blocks;
#: stats deltas are published at depth 0 only (see its docstring).
_OBS_DEPTH = threading.local()


def richardson_bracket(coarse: np.ndarray, fine: np.ndarray,
                       padding: float = 1e-12,
                       safety: float = 2.0
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """A certified interval from two resolutions of a convergent scheme.

    For a scheme whose error shrinks by a factor ``rho`` per refinement
    (O(d) discretisation with halved step, the pseudo-Erlang bracket
    with doubled phases -- both have ``rho ~ 2``), the distance
    ``|fine - coarse| = |err(coarse) - err(fine)| = (rho - 1) *
    |err(fine)|`` measures the remaining error of *fine*: the interval
    ``fine -+ safety * |fine - coarse|`` contains the exact value
    whenever ``rho >= 1 + 1/safety``.  The default ``safety = 2``
    tolerates convergence ratios down to 1.5, covering the fluctuation
    around the asymptotic factor 2 observed in the paper's Tables 3
    and 4.  The interval always contains both computed points
    (*coarse* is at most ``|fine - coarse|`` from the centre), clipped
    to ``[0, 1]``.
    """
    coarse = np.asarray(coarse, dtype=float)
    fine = np.asarray(fine, dtype=float)
    spread = safety * np.abs(fine - coarse) + padding
    lower = np.clip(fine - spread, 0.0, 1.0)
    upper = np.clip(fine + spread, 0.0, 1.0)
    return lower, upper


@dataclass(frozen=True)
class EngineCapabilities:
    """Statically declared requirements and limits of an engine.

    Engines publish what they can handle through
    :meth:`JointEngine.capabilities`, so the static-analysis layer
    (:mod:`repro.analysis.engine_passes`) and the certified checker's
    fallback chain can judge compatibility *before* any propagation
    starts, and the runtime guard (:meth:`JointEngine.
    _check_capabilities`) enforces the same declaration in one place.

    Attributes
    ----------
    impulse_rewards:
        Whether the engine supports transition-attached impulse
        rewards (the occupation-time algorithm is tailored to
        state-based rewards only; paper, Section 2.1).
    natural_rewards_only:
        Whether reward rates must be natural numbers (the Tijms--
        Veldman discretisation counts reward in grid cells).
    grid_aligned_time:
        Whether time bounds must be multiples of an engine step.
    certified_intervals:
        Whether :meth:`JointEngine.joint_probability_interval` is
        implemented.
    notes:
        Free-form cost caveats (phase explosion, grid memory, ...).
    """

    impulse_rewards: bool = True
    natural_rewards_only: bool = False
    grid_aligned_time: bool = False
    certified_intervals: bool = True
    notes: str = ""


@dataclass(frozen=True)
class PartialSweep:
    """Outcome of a deadline-bounded ``(t, r)`` grid evaluation.

    Attributes
    ----------
    grid:
        ``(len(times), len(rewards), |S|)`` array; cells that were not
        evaluated hold ``NaN``.
    completed:
        Boolean ``(len(times), len(rewards))`` mask of evaluated cells.
    unevaluated:
        The ``(i, j)`` index pairs of cells that were *not* evaluated
        (deadline hit before they ran, or their worker failed), in grid
        order -- the explicit work-list a caller can resume from.
    failures:
        One :class:`~repro.errors.WorkerError` per cell whose worker
        raised (task context attached); deadline-cancelled cells are
        not failures, they simply appear in :attr:`unevaluated`.
    """

    grid: np.ndarray
    completed: np.ndarray
    unevaluated: Tuple[Tuple[int, int], ...]
    failures: Tuple[WorkerError, ...] = ()

    @property
    def complete(self) -> bool:
        """Whether every grid cell was evaluated."""
        return not self.unevaluated


class JointEngine(ABC):
    """Computes ``Pr{Y_t <= r, X_t in target}`` on an MRM."""

    #: Short identifier used by :func:`get_engine` and the CLI.
    name: str = "abstract"

    #: Name of the kernel backend the most recent computation resolved
    #: to.  Engines whose ``kernel`` knob is the ``"auto"`` sentinel
    #: pick a backend per model (:func:`repro.kernels.select_for_model`)
    #: at their entry points; this records the outcome for diagnostics
    #: (``repro check -v``, benchmark rows).
    last_kernel: Optional[str] = None

    def _backend_for(self, model: MarkovRewardModel):
        """The kernel backend to run *model* with.

        A statically pinned backend (explicit ``kernel=`` knob or the
        ``REPRO_KERNEL`` environment variable, resolved at engine
        construction into ``self._backend``) wins; otherwise the
        model-aware auto-selection picks per model.  The choice is a
        deterministic function of the model's dimensions, so cache
        entries stored under the engine's ``"auto"`` token never mix
        backends for the same model fingerprint.
        """
        backend = getattr(self, "_backend", None)
        if backend is None:
            from repro.kernels import select_for_model
            backend = select_for_model(model.num_states,
                                       model.num_transitions)
        self.last_kernel = backend.name
        return backend

    @classmethod
    def capabilities(cls) -> EngineCapabilities:
        """The engine's static capability declaration.

        The default claims full support; engines override this to
        declare their restrictions (see :class:`EngineCapabilities`).
        Both the runtime validation and the static-analysis layer are
        driven by this single declaration.
        """
        return EngineCapabilities()

    def _check_capabilities(self, model: MarkovRewardModel) -> None:
        """Reject workloads the declared capabilities rule out.

        Called from :meth:`_validate` (and directly by entry points
        that bypass it); raising here is the runtime twin of the
        static ``E001``-family diagnostics of
        :mod:`repro.analysis.engine_passes`.
        """
        capabilities = type(self).capabilities()
        if (not capabilities.impulse_rewards
                and getattr(model, "has_impulse_rewards", False)):
            raise NumericalError(
                f"[E001] the {self.name} engine handles state-based "
                f"rewards only (paper, Section 2.1); use the "
                f"discretisation or pseudo-Erlang engine for impulse "
                f"rewards")

    @property
    def stats(self) -> EngineStats:
        """Run counters of this engine instance (see
        :class:`~repro.algorithms.cache.EngineStats`)."""
        existing = getattr(self, "_stats", None)
        if existing is None:
            existing = self._stats = EngineStats()
        return existing

    @contextmanager
    def _observed(self, name: str, histogram: Optional[str] = None,
                  publish_stats: bool = True,
                  **attributes) -> Iterator:
        """Observability wrapper shared by the engine entry points.

        With :mod:`repro.obs` disabled this degrades to yielding the
        inert no-op span (one flag check).  Enabled, it opens a tracer
        span named *name* carrying ``engine=`` plus *attributes*,
        snapshots :attr:`stats` around the body, publishes the delta
        to the metrics registry (``repro_engine_*_total``), and -- when
        *histogram* is given -- records the wall duration there.

        Stats are published by the *outermost* engine span of each
        thread only: the interval brackets call a companion engine's
        entry point and then ``merge`` its counters, so the outer delta
        already contains the nested call's work -- publishing both
        would double-count.  *publish_stats=False* opts out entirely;
        :meth:`joint_probability_sweep_partial` uses it because its
        worker threads publish their own top-level deltas before the
        merge.
        """
        if not OBS.enabled:
            with obs_span(name) as null_span:
                yield null_span
            return
        depth = getattr(_OBS_DEPTH, "value", 0)
        _OBS_DEPTH.value = depth + 1
        # Labelled worker clones defer counter publication to their
        # fan-out site (which publishes the whole clone delta under
        # ``worker=thread-i``) -- self-publication here would depend on
        # whether the pool ran the task inline or on a fresh thread.
        deferred = getattr(self, "_obs_worker_label", None) is not None
        before = (self.stats.as_dict()
                  if publish_stats and depth == 0 and not deferred
                  else None)
        start = time.perf_counter()
        with OBS.tracer.span(name, engine=self.name,
                             **attributes) as span:
            try:
                yield span
            finally:
                _OBS_DEPTH.value = depth
                elapsed = time.perf_counter() - start
                if before is not None:
                    after = self.stats.as_dict()
                    delta = {key: after[key] - before[key]
                             for key in after}
                    record_engine_stats(OBS.metrics, self.name, delta)
                rss = peak_rss_bytes()
                if rss:
                    # Worker-labelled sample plus the derived roll-up
                    # (the BENCH rows and thread/process parity both
                    # read the ``_max`` roll-up; see repro.obs.remote).
                    OBS.metrics.gauge(
                        "repro_peak_rss_bytes",
                        worker=getattr(self, "_obs_worker_label",
                                       None) or "main").update_max(rss)
                    OBS.metrics.gauge(
                        "repro_peak_rss_bytes_max").update_max(rss)
                if histogram is not None:
                    OBS.metrics.histogram(
                        histogram, engine=self.name).observe(elapsed)

    def joint_probability_vector(self,
                                 model: MarkovRewardModel,
                                 t: float,
                                 r: float,
                                 target: Iterable[int]) -> np.ndarray:
        """Per-initial-state joint probabilities, batched and cached.

        Returns the vector ``v`` with
        ``v[s] = Pr{Y_t <= r, X_t in target | X_0 = s}``, computed for
        every initial state in a single propagation.  Identical queries
        (same model content, engine parameters, bounds and target set)
        are served from the shared LRU cache; the
        :attr:`stats` counters record hits and misses.
        """
        with self._observed("joint_vector",
                            histogram="repro_engine_joint_vector_seconds",
                            t=float(t), r=float(r)) as span:
            indicator = self._validate(model, t, r, target)
            key = (model.fingerprint, self._cache_token(),
                   float(t), float(r), indicator.tobytes())
            cached = joint_cache.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                span.set(cache_hit=True)
                return cached.copy()
            self.stats.cache_misses += 1
            span.set(cache_hit=False)
            vector = np.asarray(
                self._compute_joint_vector(model, t, r, indicator),
                dtype=float)
            frozen = vector.copy()
            frozen.flags.writeable = False
            self.stats.cache_evictions += joint_cache.put(key, frozen)
            return vector

    def joint_probability_interval(self,
                                   model: MarkovRewardModel,
                                   t: float,
                                   r: float,
                                   target: Iterable[int]
                                   ) -> Tuple[np.ndarray, np.ndarray]:
        """Certified ``(lower, upper)`` interval vectors, cached.

        Returns two vectors with ``lower[s] <= Pr{Y_t <= r, X_t in
        target | X_0 = s} <= upper[s]`` -- a *sound* enclosure of the
        exact joint probability derived from the engine's own error
        accounting (the a-priori Sericola truncation bound, the
        ``d`` vs ``d/2`` discretisation bracket, the ``k`` vs ``2k``
        pseudo-Erlang bracket; see the engines' docstrings).  The
        engine's point value :meth:`joint_probability_vector` always
        lies inside the interval.  Entries are cached alongside the
        point vectors under interval-marked keys.
        """
        with self._observed("joint_interval", t=float(t),
                            r=float(r)) as span:
            indicator = self._validate(model, t, r, target)
            key = (model.fingerprint, self._cache_token(),
                   float(t), float(r), indicator.tobytes(), "interval")
            cached = joint_cache.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                span.set(cache_hit=True)
                return cached[0].copy(), cached[1].copy()
            self.stats.cache_misses += 1
            span.set(cache_hit=False)
            lower, upper = self._compute_joint_interval(
                model, float(t), float(r), indicator)
            lower = np.asarray(lower, dtype=float)
            upper = np.asarray(upper, dtype=float)
            frozen = (lower.copy(), upper.copy())
            for half in frozen:
                half.flags.writeable = False
            self.stats.cache_evictions += joint_cache.put(key, frozen)
            return lower, upper

    def _compute_joint_interval(self,
                                model: MarkovRewardModel,
                                t: float,
                                r: float,
                                indicator: np.ndarray
                                ) -> Tuple[np.ndarray, np.ndarray]:
        """Engine-specific certified enclosure (uncached).

        Concrete engines override this with their error accounting;
        the base class has no generally sound bound to offer.
        """
        raise NumericalError(
            f"engine {self.name!r} does not support certified "
            f"intervals")

    def joint_probability_interval_sweep(
            self,
            model: MarkovRewardModel,
            times: Sequence[float],
            reward_bounds: Sequence[float],
            target: Iterable[int]
            ) -> Tuple[np.ndarray, np.ndarray]:
        """Certified interval grids over a whole ``(t, r)`` grid.

        Returns ``(lower, upper)`` arrays of shape ``(len(times),
        len(reward_bounds), |S|)``; every cell equals an independent
        :meth:`joint_probability_interval` call, evaluated through the
        engine's shared-prefix sweep machinery (two bracketing sweeps
        for the discretisation and pseudo-Erlang engines, one plus the
        a-priori bound for Sericola).  Caching is per grid point with
        the interval-marked scalar keys, so sweep and scalar interval
        queries feed each other.
        """
        times = [float(t) for t in times]
        rewards = [float(r) for r in reward_bounds]
        with self._observed("joint_interval_sweep",
                            points=len(times) * len(rewards)) as span:
            indicator = self._validate(model, 0.0, 0.0, target)
            for t in times:
                if t < 0.0:
                    raise NumericalError(
                        f"time bound must be >= 0, got {t}")
            for r in rewards:
                if r < 0.0:
                    raise NumericalError(
                        f"reward bound must be >= 0, got {r}")
            token = self._cache_token()
            mask = indicator.tobytes()
            shape = (len(times), len(rewards), model.num_states)
            lower = np.empty(shape)
            upper = np.empty(shape)
            self.stats.sweep_points += shape[0] * shape[1]
            missing: List[Tuple[int, int]] = []
            for i, t in enumerate(times):
                for j, r in enumerate(rewards):
                    key = (model.fingerprint, token, t, r, mask,
                           "interval")
                    cached = joint_cache.get(key)
                    if cached is not None:
                        self.stats.cache_hits += 1
                        lower[i, j], upper[i, j] = cached
                    else:
                        self.stats.cache_misses += 1
                        missing.append((i, j))
            span.set(missing=len(missing))
            if not missing:
                return lower, upper
            need_times = sorted({times[i] for i, _ in missing})
            need_rewards = sorted({rewards[j] for _, j in missing})
            t_index = {t: i for i, t in enumerate(need_times)}
            r_index = {r: j for j, r in enumerate(need_rewards)}
            sub_lower, sub_upper = self._compute_joint_interval_sweep(
                model, need_times, need_rewards, indicator)
            stored = set()
            for i, j in missing:
                si, sj = t_index[times[i]], r_index[rewards[j]]
                lower[i, j] = sub_lower[si, sj]
                upper[i, j] = sub_upper[si, sj]
                point = (times[i], rewards[j])
                if point in stored:
                    continue
                stored.add(point)
                frozen = (sub_lower[si, sj].copy(),
                          sub_upper[si, sj].copy())
                for half in frozen:
                    half.flags.writeable = False
                self.stats.cache_evictions += joint_cache.put(
                    (model.fingerprint, token, times[i], rewards[j],
                     mask, "interval"), frozen)
            return lower, upper

    def _compute_joint_interval_sweep(self,
                                      model: MarkovRewardModel,
                                      times: Sequence[float],
                                      rewards: Sequence[float],
                                      indicator: np.ndarray
                                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Engine-native certified grid computation (uncached).

        The base implementation loops :meth:`_compute_joint_interval`
        per grid point; the concrete engines override it with
        bracketing shared-prefix sweeps.
        """
        shape = (len(times), len(rewards), model.num_states)
        lower = np.empty(shape)
        upper = np.empty(shape)
        for i, t in enumerate(times):
            for j, r in enumerate(rewards):
                lower[i, j], upper[i, j] = self._compute_joint_interval(
                    model, t, r, indicator)
        return lower, upper

    def spec(self) -> Dict:
        """Transportable identity: the constructor arguments that
        rebuild an equivalent engine in another process.

        Returns ``{"engine": <registry name>, "options": {...}}`` such
        that ``get_engine(spec["engine"], **spec["options"])`` yields
        an engine with an *equal cache token* -- the process executor
        (:mod:`repro.exec`) ships this instead of pickling engine
        instances (backends may hold unpicklable jitted state), and
        the equal token is what guarantees worker results are
        bit-identical to in-process ones.  Engines must override this
        alongside any accuracy knob they add; the base class refuses
        rather than silently rebuilding with default accuracy.
        """
        raise NumericalError(
            f"engine {self.name!r} does not declare a process-"
            f"transport spec; it cannot run under the process "
            f"executor")

    def _kernel_option(self) -> Optional[str]:
        """The ``kernel=`` constructor option for :meth:`spec`.

        ``None`` preserves per-model auto-selection (deterministic in
        the model's dimensions, so workers choose identically); a
        statically resolved backend travels by name, which also pins
        workers whose ``REPRO_KERNEL`` environment would differ.
        """
        kernel = getattr(self, "kernel", "auto")
        return None if kernel == "auto" else kernel

    def refined(self) -> "Optional[JointEngine]":
        """A copy of this engine with a tightened accuracy knob.

        One refinement step of the certified checker's adaptive loop:
        Sericola tightens ``epsilon``, the discretisation halves ``d``,
        the pseudo-Erlang engine doubles ``k``.  Returns ``None`` when
        the engine cannot (usefully) refine further -- the checker then
        degrades to the next engine in its fallback chain.
        """
        return None

    def joint_probability_sweep_partial(
            self,
            model: MarkovRewardModel,
            times: Sequence[float],
            reward_bounds: Sequence[float],
            target: Iterable[int],
            deadline: Optional[float] = None,
            max_workers: Optional[int] = None,
            executor=None,
            checkpoint=None) -> PartialSweep:
        """A ``(t, r)`` grid evaluation that survives a mid-grid
        deadline, a worker crash, or the death of this process.

        Unlike :meth:`joint_probability_sweep` -- whose engine-native
        shared-prefix runs are all-or-nothing -- this path evaluates
        the grid cell by cell through the cached scalar
        :meth:`joint_probability_vector`, fanned out over workers and
        bounded by *deadline* (an absolute ``time.monotonic()``
        timestamp).  When the deadline passes, cells that have not
        started are cancelled, running cells drain, and the completed
        cells are returned together with the explicit list of
        unevaluated ones (see :class:`PartialSweep`).  Every completed
        cell went through the shared result cache, so the cache stays
        consistent and a later retry of the unevaluated cells reuses
        all finished work.

        *executor* selects the fan-out substrate: ``None``/"thread"``
        is the in-process thread pool, ``"process"`` (or a
        :class:`~repro.exec.ProcessShardExecutor`) shards cells over
        crash-isolated worker processes with retry/backoff and hang
        detection -- results are bit-identical either way.

        *checkpoint* (a path or an open
        :class:`~repro.exec.SweepCheckpoint`) makes progress durable:
        each completed cell is flushed to the file as it finishes,
        cells already present are served without computing, and an
        interrupted run resumes from the file -- under any executor.
        """
        from repro.algorithms.parallel import deadline_map
        times = [float(t) for t in times]
        rewards = [float(r) for r in reward_bounds]
        if executor is not None:
            from repro.exec.executor import (ThreadShardExecutor,
                                             resolve_executor)
            resolved = resolve_executor(executor, max_workers)
            if isinstance(resolved, ThreadShardExecutor):
                max_workers = resolved.max_workers
            else:
                owned = resolved is not executor
                try:
                    return resolved.run(self, model, times, rewards,
                                        target, deadline=deadline,
                                        checkpoint=checkpoint)
                finally:
                    if owned:
                        resolved.close()
        with self._observed("joint_sweep_partial", publish_stats=False,
                            points=len(times) * len(rewards)) as span:
            indicator = self._validate(model, 0.0, 0.0, target)
            for t in times:
                if t < 0.0:
                    raise NumericalError(
                        f"time bound must be >= 0, got {t}")
            for r in rewards:
                if r < 0.0:
                    raise NumericalError(
                        f"reward bound must be >= 0, got {r}")
            target_list = [int(s) for s in np.flatnonzero(indicator)]
            all_cells = [(i, j) for i in range(len(times))
                         for j in range(len(rewards))]
            grid = np.full((len(times), len(rewards),
                            model.num_states), np.nan)
            completed_mask = np.zeros((len(times), len(rewards)),
                                      dtype=bool)
            self.stats.sweep_points += len(all_cells)
            if OBS.enabled:
                # The worker threads publish their own cell deltas;
                # only this method's direct contribution goes here.
                record_engine_stats(OBS.metrics, self.name,
                                    {"sweep_points": len(all_cells)})
            cp = None
            own_checkpoint = False
            if checkpoint is not None:
                from repro.exec.checkpoint import SweepCheckpoint
                if isinstance(checkpoint, SweepCheckpoint):
                    cp = checkpoint
                else:
                    cp = SweepCheckpoint.open(
                        str(checkpoint), model.fingerprint,
                        self._cache_token(), times, rewards, indicator)
                    own_checkpoint = True
                served = cp.load_into(grid, completed_mask)
                span.set(resumed=len(served))
                token = self._cache_token()
                mask = indicator.tobytes()
                from repro.algorithms.cache import joint_cache
                for i, j in served:
                    # Seed the shared cache so later scalar queries
                    # (and the certified checker) hit resumed cells.
                    key = (model.fingerprint, token, times[i],
                           rewards[j], mask)
                    if joint_cache.get(key) is None:
                        frozen = grid[i, j].copy()
                        frozen.flags.writeable = False
                        self.stats.cache_evictions += joint_cache.put(
                            key, frozen)
            cells = [(i, j) for i, j in all_cells
                     if not completed_mask[i, j]]
            clones = [self._worker_clone(label=f"thread-{pos}")
                      for pos in range(len(cells))]
            engine_name = self.name

            def run(task):
                clone, (i, j) = task
                start = time.perf_counter()
                try:
                    vector = clone.joint_probability_vector(
                        model, times[i], rewards[j], target_list)
                    if cp is not None:
                        cp.append((i, j), vector)
                    return vector
                finally:
                    if OBS.enabled:
                        OBS.metrics.histogram(
                            "repro_sweep_cell_seconds",
                            engine=engine_name).observe(
                                time.perf_counter() - start)

            labels = [f"cell (t={times[i]}, r={rewards[j]})"
                      for i, j in cells]
            try:
                results, completed, failures = deadline_map(
                    run, list(zip(clones, cells)), deadline=deadline,
                    max_workers=max_workers, labels=labels)
            finally:
                from repro.algorithms.parallel import \
                    publish_clone_stats
                publish_clone_stats(engine_name, clones)
                for clone in clones:
                    self.stats.merge(clone.stats)
                if own_checkpoint:
                    cp.close()
            for position, (i, j) in enumerate(cells):
                if completed[position]:
                    grid[i, j] = results[position]
                    completed_mask[i, j] = True
            unevaluated = [(i, j) for i, j in all_cells
                           if not completed_mask[i, j]]
            span.set(unevaluated=len(unevaluated))
            return PartialSweep(grid=grid, completed=completed_mask,
                                unevaluated=tuple(unevaluated),
                                failures=tuple(failures))

    @abstractmethod
    def _compute_joint_vector(self,
                              model: MarkovRewardModel,
                              t: float,
                              r: float,
                              indicator: np.ndarray) -> np.ndarray:
        """The engine's batched computation for all initial states.

        *indicator* is the validated 0/1 vector of the target set.
        Implementations must not read or write the result cache.
        """

    def joint_probability_sweep(self,
                                model: MarkovRewardModel,
                                times: Sequence[float],
                                reward_bounds: Sequence[float],
                                target: Iterable[int]) -> np.ndarray:
        """Joint probabilities over a whole ``(t, r)`` grid, shared.

        Returns the array ``grid`` of shape ``(len(times),
        len(reward_bounds), |S|)`` with ``grid[i, j, s] =
        Pr{Y_{t_i} <= r_j, X_{t_i} in target | X_0 = s}`` -- every cell
        equals an independent :meth:`joint_probability_vector` call,
        but the engine shares the propagation prefix across the grid
        (see :meth:`_compute_joint_sweep`) instead of re-running per
        point.

        Caching is per grid point with the *scalar* cache keys:
        already-cached cells are filled from the LRU (a per-point
        ``cache_hits`` increment), the remaining cells are computed in
        one engine-native sweep over the distinct missing rows and
        columns and then cached individually, so later scalar queries
        hit.  ``stats.sweep_points`` counts the grid cells served.
        """
        times = [float(t) for t in times]
        rewards = [float(r) for r in reward_bounds]
        with self._observed("joint_sweep",
                            points=len(times) * len(rewards)) as span:
            for t in times:
                if t < 0.0:
                    raise NumericalError(
                        f"time bound must be >= 0, got {t}")
            for r in rewards:
                if r < 0.0:
                    raise NumericalError(
                        f"reward bound must be >= 0, got {r}")
            indicator = self._validate(model, 0.0, 0.0, target)
            token = self._cache_token()
            mask = indicator.tobytes()
            grid = np.empty((len(times), len(rewards),
                             model.num_states))
            self.stats.sweep_points += grid.shape[0] * grid.shape[1]
            missing: List[Tuple[int, int]] = []
            for i, t in enumerate(times):
                for j, r in enumerate(rewards):
                    key = (model.fingerprint, token, t, r, mask)
                    cached = joint_cache.get(key)
                    if cached is not None:
                        self.stats.cache_hits += 1
                        grid[i, j] = cached
                    else:
                        self.stats.cache_misses += 1
                        missing.append((i, j))
            span.set(missing=len(missing))
            if not missing:
                return grid
            # One engine-native sweep over the distinct times/rewards
            # that still need work; duplicates in the request collapse
            # here.
            need_times = sorted({times[i] for i, _ in missing})
            need_rewards = sorted({rewards[j] for _, j in missing})
            t_index = {t: i for i, t in enumerate(need_times)}
            r_index = {r: j for j, r in enumerate(need_rewards)}
            computed = np.asarray(
                self._compute_joint_sweep(model, need_times,
                                          need_rewards, indicator),
                dtype=float)
            stored = set()
            for i, j in missing:
                vector = computed[t_index[times[i]],
                                  r_index[rewards[j]]]
                grid[i, j] = vector
                point = (times[i], rewards[j])
                if point in stored:
                    continue
                stored.add(point)
                frozen = vector.copy()
                frozen.flags.writeable = False
                self.stats.cache_evictions += joint_cache.put(
                    (model.fingerprint, token, times[i], rewards[j],
                     mask), frozen)
            return grid

    def _compute_joint_sweep(self,
                             model: MarkovRewardModel,
                             times: Sequence[float],
                             rewards: Sequence[float],
                             indicator: np.ndarray) -> np.ndarray:
        """Engine-native grid computation (uncached).

        The base implementation falls back to one
        :meth:`_compute_joint_vector` run per grid point; the concrete
        engines override it with shared-prefix evaluations.
        Implementations must not read or write the result cache, and
        must return an array of shape ``(len(times), len(rewards),
        |S|)`` whose cells match the scalar path to floating-point
        accuracy.
        """
        grid = np.empty((len(times), len(rewards), model.num_states))
        for i, t in enumerate(times):
            for j, r in enumerate(rewards):
                grid[i, j] = self._compute_joint_vector(model, t, r,
                                                        indicator)
        return grid

    def _worker_clone(self,
                      label: Optional[str] = None) -> "JointEngine":
        """A shallow copy with a private :class:`EngineStats`.

        The threaded fan-out (:mod:`repro.algorithms.parallel`) gives
        every worker its own clone so counter updates never race;
        accuracy parameters (and hence cache tokens) are shared, so
        clones interoperate with the result cache exactly like the
        original.  *label* (e.g. ``"thread-3"``) tags the clone's
        published engine-stats counters and RSS gauge with a
        ``worker=`` label, mirroring the process executor's
        ``process-N`` scheme.
        """
        clone = copy.copy(self)
        clone._stats = EngineStats()
        clone._obs_worker_label = label
        return clone

    def joint_probability(self,
                          model: MarkovRewardModel,
                          t: float,
                          r: float,
                          target: Iterable[int],
                          initial: Optional[Sequence[float]] = None
                          ) -> float:
        """The joint probability from *initial* (default: the model's
        initial distribution)."""
        vector = self.joint_probability_vector(model, t, r, target)
        alpha = (model.initial_distribution if initial is None
                 else np.asarray(initial, dtype=float))
        return float(alpha @ vector)

    def joint_probability_from(self,
                               model: MarkovRewardModel,
                               t: float,
                               r: float,
                               indicator: np.ndarray,
                               initial_state: int) -> float:
        """Joint probability from a single initial state.

        The base implementation runs the engine's (uncached) batched
        computation and reads off one entry -- engines with a genuinely
        scalar algorithm (the discretisation's single-initial-state
        propagation, the pseudo-Erlang forward analysis) override this
        with an independent per-state path, which the equivalence tests
        compare against the batched vector.
        """
        indicator = np.asarray(indicator, dtype=float)
        vector = self._compute_joint_vector(model, float(t), float(r),
                                            indicator)
        return float(vector[int(initial_state)])

    # ------------------------------------------------------------------

    def _cache_token(self) -> Tuple:
        """Hashable identity of the engine's accuracy parameters.

        Two engine instances with equal tokens must compute identical
        results, so they may share cache entries.  The default covers
        every public non-callable attribute; engines with
        diagnostics-only state override this with an explicit tuple.
        """
        return (self.name,)

    def _validate(self, model: MarkovRewardModel, t: float, r: float,
                  target: Iterable[int]) -> np.ndarray:
        """Shared argument validation; returns the target indicator.

        Also enforces the engine's :meth:`capabilities` declaration
        (e.g. impulse rewards vs. the occupation-time algorithm).
        """
        self._check_capabilities(model)
        if t < 0.0:
            raise NumericalError(f"time bound must be >= 0, got {t}")
        if r < 0.0:
            raise NumericalError(f"reward bound must be >= 0, got {r}")
        indicator = np.zeros(model.num_states)
        states = np.fromiter((int(s) for s in target), dtype=np.int64)
        if states.size:
            bad = (states < 0) | (states >= model.num_states)
            if bad.any():
                s = int(states[np.argmax(bad)])
                raise NumericalError(
                    f"target state {s} outside the state space")
            indicator[states] = 1.0
        return indicator

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_REGISTRY: Dict[str, Type[JointEngine]] = {}


def register_engine(cls: Type[JointEngine]) -> Type[JointEngine]:
    """Class decorator adding an engine to the name registry."""
    _REGISTRY[cls.name] = cls
    return cls


def available_engines() -> "list[str]":
    """Names of all registered engines."""
    return sorted(_REGISTRY)


def get_engine(name: str, **options) -> JointEngine:
    """Instantiate a registered engine by name.

    >>> get_engine("sericola").name
    'sericola'
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise NumericalError(
            f"unknown engine {name!r}; available: "
            f"{', '.join(available_engines())}") from None
    return cls(**options)
