"""Shared memoisation layer of the joint-distribution engines.

Checking a P3-type until formula needs ``Pr{Y_t <= r, X_t in S'}`` for
*every* state; sweeps (the paper's Tables 2--4) and nested formulas
re-ask the same question with identical parameters many times.  This
module provides the process-wide caches that make those repeats free:

* :data:`joint_cache` -- an LRU of joint-probability *vectors*, keyed
  on ``(model fingerprint, engine parameters, t, r, target mask)``.
  :class:`~repro.algorithms.base.JointEngine` consults it before every
  computation, so any engine instance with equal parameters shares
  results for content-identical models (the fingerprint, see
  :attr:`repro.ctmc.ctmc.CTMC.fingerprint`, is a content hash --
  models are immutable value objects, so content identity is cache
  validity).
* :data:`matrix_cache` -- an LRU of *transformed sparse matrices* that
  are expensive to rebuild per call: the discretisation's reward-step
  matrices grouped by impulse displacement, and the pseudo-Erlang
  phase-expanded chains.

Both caches store only derived, immutable data; entries are evicted in
least-recently-used order, never invalidated (a mutated model would be
a new object with a new fingerprint).  :func:`clear_caches` empties
everything, which the benchmarks use to measure cold-cache timings.
Every cache operation holds a per-cache lock, so the threaded fan-out
(:mod:`repro.algorithms.parallel`) can share the caches safely.

Per-engine run statistics (:class:`EngineStats`) live here as well so
the numerics layer can update them without importing the engines.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional

import numpy as np
import scipy.sparse as sp


@dataclass
class EngineStats:
    """Mutable per-engine counters, exposed for benchmarks and tests.

    Attributes
    ----------
    cache_hits, cache_misses:
        Joint-vector queries answered from / missing
        :data:`joint_cache`.
    propagation_steps:
        Discretisation steps or uniformisation series terms actually
        iterated (cache hits add nothing).
    matvec_count:
        Number of sparse-matrix x dense-block products performed (one
        product over a ``(n, b)`` block counts once, whatever ``b``).
    sweep_points:
        Grid points served through
        :meth:`~repro.algorithms.base.JointEngine.\
joint_probability_sweep` (each point is also accounted as a cache hit
        or miss, so ``sweep_points == sweep hits + sweep misses`` for a
        sweep-only workload).
    cache_evictions:
        Entries this engine's cache insertions pushed out of
        :data:`joint_cache` (count or byte-size cap reached).  A
        steadily growing value on a sweep workload means the grid no
        longer fits the cache and repeated cells will recompute.

    Thread safety: plain ``+=`` increments from the numerics hot loops
    stay lock-free -- each in-flight computation owns a private stats
    object (workers get clones), so increments are never contended.
    The *cross-object* operations -- :meth:`merge`, :meth:`reset`,
    :meth:`as_dict` -- are the points where one thread touches another
    thread's object, and those hold a per-instance lock so a merge can
    never interleave with a concurrent snapshot read.

    With :mod:`repro.obs` enabled these counters are also published,
    per engine call, into the process-wide metrics registry as
    ``repro_engine_*_total{engine=...}`` -- the registry is the
    primary ledger; this dataclass remains the per-engine
    compatibility view.
    """

    cache_hits: int = 0
    cache_misses: int = 0
    propagation_steps: int = 0
    matvec_count: int = 0
    sweep_points: int = 0
    cache_evictions: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def reset(self) -> None:
        """Zero every counter, atomically with respect to
        :meth:`merge` and :meth:`as_dict` on the same object."""
        with self._lock:
            self.cache_hits = 0
            self.cache_misses = 0
            self.propagation_steps = 0
            self.matvec_count = 0
            self.sweep_points = 0
            self.cache_evictions = 0

    def merge(self, other: "EngineStats") -> None:
        """Add another stats object's counters onto this one.

        The threaded fan-out gives every worker a private stats object
        and merges them (in deterministic task order) when all workers
        have finished, so concurrent ``+=`` on shared counters never
        happens.  The merge itself is atomic: *other* is snapshotted
        under its own lock first (:meth:`as_dict`), then the sums are
        applied under this object's lock, so a reader polling ``stats``
        from another thread (a progress display, the obs publisher)
        sees either none or all of a worker's contribution -- never a
        half-merged state.  Taking the two locks sequentially rather
        than nested keeps the operation deadlock-free whatever the
        merge direction.
        """
        delta = other.as_dict()
        with self._lock:
            self.cache_hits += delta["cache_hits"]
            self.cache_misses += delta["cache_misses"]
            self.propagation_steps += delta["propagation_steps"]
            self.matvec_count += delta["matvec_count"]
            self.sweep_points += delta["sweep_points"]
            self.cache_evictions += delta["cache_evictions"]

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (JSON-friendly), snapshotted
        atomically under the instance lock."""
        with self._lock:
            return {"cache_hits": self.cache_hits,
                    "cache_misses": self.cache_misses,
                    "propagation_steps": self.propagation_steps,
                    "matvec_count": self.matvec_count,
                    "sweep_points": self.sweep_points,
                    "cache_evictions": self.cache_evictions}


def value_nbytes(value: Any) -> int:
    """Approximate in-memory footprint of a cached value, in bytes.

    Understands the shapes the caches actually store: numpy arrays,
    scipy sparse matrices, and tuples/lists/dicts thereof.  Anything
    else falls back to ``sys.getsizeof``.
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if sp.issparse(value):
        total = int(value.data.nbytes)
        for attr in ("indices", "indptr", "row", "col", "offsets"):
            part = getattr(value, attr, None)
            if part is not None:
                total += int(part.nbytes)
        return total
    if isinstance(value, (tuple, list)):
        return sum(value_nbytes(item) for item in value)
    if isinstance(value, dict):
        return sum(value_nbytes(item) for item in value.values())
    return int(sys.getsizeof(value))


class LRUCache:
    """A small, generic, thread-safe least-recently-used mapping.

    Entries are bounded both by count (*maxsize*) and, optionally, by
    total byte footprint (*max_bytes*, measured with
    :func:`value_nbytes`): inserting beyond either cap evicts in
    least-recently-used order.  The most recent entry is never evicted
    by the byte cap -- a single oversized value is admitted (and
    counted) rather than thrashing.

    All operations hold an internal lock: the threaded fan-out of
    :mod:`repro.algorithms.parallel` lets several workers consult and
    fill the shared caches concurrently, and ``OrderedDict`` reordering
    is not atomic under free threading.

    >>> cache = LRUCache(maxsize=2)
    >>> cache.put("a", 1); cache.put("b", 2); cache.put("c", 3)
    (0, 1, 1)
    >>> cache.get("a") is None   # evicted
    True
    >>> cache.get("c")
    3
    """

    def __init__(self, maxsize: int = 256,
                 max_bytes: Optional[int] = None):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.maxsize = int(maxsize)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._sizes: Dict[Hashable, int] = {}
        self._bytes = 0
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, refreshed as most recent; None on a miss."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> int:
        """Insert (or refresh) an entry, evicting the oldest if either
        the count or the byte cap is exceeded; returns the number of
        entries evicted by this insertion."""
        size = value_nbytes(value)
        with self._lock:
            if key in self._data:
                self._bytes -= self._sizes.get(key, 0)
            self._data[key] = value
            self._sizes[key] = size
            self._bytes += size
            self._data.move_to_end(key)
            evicted = 0
            while len(self._data) > 1 and (
                    len(self._data) > self.maxsize
                    or (self.max_bytes is not None
                        and self._bytes > self.max_bytes)):
                old_key, _ = self._data.popitem(last=False)
                self._bytes -= self._sizes.pop(old_key, 0)
                evicted += 1
            self.evictions += evicted
            return evicted

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss/eviction counters."""
        with self._lock:
            self._data.clear()
            self._sizes.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    @property
    def nbytes(self) -> int:
        """Total byte footprint of the currently cached values."""
        with self._lock:
            return self._bytes

    def info(self) -> Dict[str, int]:
        """Current size, byte footprint and lifetime hit/miss counts."""
        with self._lock:
            return {"size": len(self._data), "maxsize": self.maxsize,
                    "hits": self.hits, "misses": self.misses,
                    "bytes": self._bytes,
                    "max_bytes": (-1 if self.max_bytes is None
                                  else self.max_bytes),
                    "evictions": self.evictions}


#: Joint-probability vectors (and certified interval pairs, whose keys
#: carry an extra ``"interval"`` marker), keyed on
#: ``(model fingerprint, engine token, t, r, target-mask bytes[, kind])``.
#: Bounded both in entry count and total bytes: sweeps over large grids
#: stay within a fixed memory budget, with LRU eviction reported via
#: ``EngineStats.cache_evictions``.
joint_cache = LRUCache(maxsize=4096, max_bytes=128 * 2 ** 20)

#: Transformed sparse matrices (reward-step groups, expanded chains),
#: keyed on ``(kind, model fingerprint, parameters...)``.
matrix_cache = LRUCache(maxsize=64)


def clear_caches() -> None:
    """Empty every module-level cache (joint vectors, matrices, and
    the Fox--Glynn Poisson-weight cache)."""
    joint_cache.clear()
    matrix_cache.clear()
    from repro.numerics.poisson import clear_poisson_cache
    clear_poisson_cache()


def cache_info() -> Dict[str, Dict[str, int]]:
    """Hit/miss/size summary of all module-level caches."""
    from repro.numerics.poisson import poisson_cache_info
    return {"joint": joint_cache.info(),
            "matrix": matrix_cache.info(),
            "poisson": poisson_cache_info()}
