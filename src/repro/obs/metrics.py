"""Counters, gauges and log-scale histograms behind stable names.

The registry is the library's single quantitative ledger: the engines
publish their per-call :class:`~repro.algorithms.cache.EngineStats`
deltas here (the dataclass stays as a thin per-engine compatibility
view), the numerics layer adds timing histograms (matvec blocks,
Fox--Glynn weight computation, per-grid-cell sweep latency), and the
benchmark harness derives its ``BENCH_*.json`` rows from a registry
snapshot instead of re-implementing timing.

Metric names are part of the public interface -- the catalogue lives
in ``docs/OBSERVABILITY.md`` -- and follow the Prometheus conventions:
``repro_<what>_total`` for counters, ``repro_<what>_seconds`` for
timing histograms, labels for the engine dimension.  Histograms use
*fixed* log-scale buckets (half-decade steps from one microsecond to
1000 s) so two runs' distributions are always comparable bucket by
bucket.

Everything is standard library only; all mutation is lock-protected so
the threaded fan-out can record concurrently.
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

LabelKey = Tuple[Tuple[str, str], ...]

#: Fixed log-scale histogram bounds: half-decade steps covering one
#: microsecond to 1000 seconds.  Observations beyond the last bound
#: land in the implicit +Inf bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    10.0 ** (-6 + 0.5 * k) for k in range(19))


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes.

    Reads ``ru_maxrss`` from :func:`resource.getrusage`; the kernel
    reports the high-water mark, so a single sample at any point
    captures the maximum over the whole process lifetime.  Linux
    reports KiB, macOS bytes; returns 0 where :mod:`resource` is
    unavailable (non-POSIX).
    """
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return int(rss)
    return int(rss) * 1024


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus text-format label escaping (backslash, quote, LF)."""
    return (value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(value)}"'
                     for name, value in key)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count (lock-protected)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name}{_render_labels(self.labels)}={self.value})"


class Gauge:
    """A point-in-time value (last write wins; ``update_max`` keeps
    the running maximum instead)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def update_max(self, value: float) -> None:
        """Keep the largest value seen (deepest truncation, ...)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name}{_render_labels(self.labels)}={self.value})"


class Histogram:
    """Fixed-bucket log-scale histogram of non-negative observations.

    ``counts[i]`` counts observations ``<= bounds[i]`` (cumulative-free
    per-bucket counts; the Prometheus rendering accumulates).  The last
    implicit bucket is ``+Inf``.  ``sum``/``count``/``min``/``max``
    ride along so means and extremes need no bucket arithmetic.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count",
                 "min", "max", "_lock")

    def __init__(self, name: str, labels: LabelKey = (),
                 bounds: Iterable[float] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must ascend: {bounds}")
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (clamped at 0 from below)."""
        value = max(0.0, float(value))
        index = 0
        for index, bound in enumerate(self.bounds):  # noqa: B007
            if value <= bound:
                break
        else:
            index = len(self.bounds)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        """count/sum/mean/min/max as a plain dict."""
        with self._lock:
            count = self.count
            total = self.sum
            return {"count": float(count), "sum": total,
                    "mean": total / count if count else 0.0,
                    "min": self.min if self.min is not None else 0.0,
                    "max": self.max if self.max is not None else 0.0}

    def __repr__(self) -> str:
        return (f"Histogram({self.name}"
                f"{_render_labels(self.labels)}, n={self.count})")


#: Wire names of the metric types (export/merge and Prometheus TYPE).
_TYPE_NAMES: Dict[type, str] = {Counter: "counter", Gauge: "gauge",
                                Histogram: "histogram"}


class MetricsRegistry:
    """Name- and label-addressed home of every metric.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the same object afterwards, so call sites never declare metrics up
    front.  A *name* must keep one metric type for the registry's
    lifetime (mixing types under one name raises).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelKey], Any] = {}
        self._types: Dict[str, type] = {}

    # ------------------------------------------------------------------

    def _get(self, cls: type, name: str, labels: Dict[str, Any],
             **extra: Any) -> Any:
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} is a "
                        f"{type(existing).__name__}, not a "
                        f"{cls.__name__}")
                return existing
            registered = self._types.setdefault(name, cls)
            if registered is not cls:
                raise ValueError(
                    f"metric {name!r} is a {registered.__name__}, "
                    f"not a {cls.__name__}")
            metric = cls(name, key[1], **extra)
            self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter *name* with *labels* (created on first use)."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge *name* with *labels* (created on first use)."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  bounds: Iterable[float] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        """The histogram *name* with *labels* (created on first use)."""
        return self._get(Histogram, name, labels, bounds=bounds)

    # ------------------------------------------------------------------

    def collect(self) -> List[Any]:
        """Every registered metric, sorted by (name, labels)."""
        with self._lock:
            items = sorted(self._metrics.items())
        return [metric for _, metric in items]

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-ready state: ``{name: {label-string: value-or-summary}}``.

        Counters and gauges map to their value; histograms to their
        :meth:`Histogram.summary` dict.  The label string is the
        Prometheus-style ``{k="v",...}`` rendering (empty for
        unlabelled metrics).
        """
        out: Dict[str, Dict[str, Any]] = {}
        for metric in self.collect():
            family = out.setdefault(metric.name, {})
            label = _render_labels(metric.labels)
            if isinstance(metric, Histogram):
                family[label] = metric.summary()
            else:
                family[label] = metric.value
        return out

    def export_state(self) -> List[Dict[str, Any]]:
        """The registry's full state as picklable plain data.

        This is the lossless companion of :meth:`snapshot` (which is
        render-oriented): one dict per metric carrying the type, the
        raw label pairs, and -- for histograms -- the complete bucket
        state, so :meth:`merge` can rebuild every metric exactly.  The
        worker side of the process executor ships this over the result
        pipe (:mod:`repro.obs.remote`).
        """
        out: List[Dict[str, Any]] = []
        for metric in self.collect():
            entry: Dict[str, Any] = {
                "name": metric.name,
                "type": _TYPE_NAMES[type(metric)],
                "labels": [[name, value] for name, value
                           in metric.labels],
            }
            if isinstance(metric, Histogram):
                with metric._lock:
                    entry.update(bounds=list(metric.bounds),
                                 counts=list(metric.counts),
                                 sum=metric.sum, count=metric.count,
                                 min=metric.min, max=metric.max)
            else:
                entry["value"] = metric.value
            out.append(entry)
        return out

    def merge(self, state: Iterable[Dict[str, Any]],
              extra_labels: Optional[Dict[str, Any]] = None) -> None:
        """Fold an :meth:`export_state` snapshot into this registry.

        *extra_labels* are added to every merged metric (overriding
        same-named labels from the snapshot) -- the process executor
        merges worker snapshots with ``{"worker": "process-i"}``.
        Merge semantics per type: counters add, gauges keep the
        maximum (every gauge merged across workers is a high-water
        mark), histograms add bucket by bucket.  A name registered
        here under a different metric type, or a histogram with
        different bucket bounds, raises ``ValueError`` -- merging
        never silently coerces.
        """
        extra = {str(k): str(v)
                 for k, v in (extra_labels or {}).items()}
        for entry in state:
            name = str(entry["name"])
            kind = str(entry["type"])
            labels = {str(k): str(v)
                      for k, v in entry.get("labels", ())}
            labels.update(extra)
            if kind == "counter":
                self.counter(name, **labels).inc(
                    float(entry.get("value", 0.0)))
            elif kind == "gauge":
                self.gauge(name, **labels).update_max(
                    float(entry.get("value", 0.0)))
            elif kind == "histogram":
                bounds = tuple(float(b) for b in entry["bounds"])
                histogram = self.histogram(name, bounds=bounds,
                                           **labels)
                if histogram.bounds != bounds:
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ "
                        f"from the snapshot's; cannot merge")
                counts = [int(c) for c in entry["counts"]]
                if len(counts) != len(histogram.counts):
                    raise ValueError(
                        f"histogram {name!r} bucket count mismatch")
                lo, hi = entry.get("min"), entry.get("max")
                with histogram._lock:
                    for index, count in enumerate(counts):
                        histogram.counts[index] += count
                    histogram.sum += float(entry.get("sum", 0.0))
                    histogram.count += int(entry.get("count", 0))
                    if lo is not None and (histogram.min is None
                                           or lo < histogram.min):
                        histogram.min = float(lo)
                    if hi is not None and (histogram.max is None
                                           or hi > histogram.max):
                        histogram.max = float(hi)
            else:
                raise ValueError(
                    f"unknown metric type {kind!r} for {name!r}")

    def reset(self) -> None:
        """Drop every metric (benchmarks isolate rows this way)."""
        with self._lock:
            self._metrics.clear()
            self._types.clear()

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the registry's state."""
        lines: List[str] = []
        last_name = None
        for metric in self.collect():
            if metric.name != last_name:
                kind = _TYPE_NAMES[type(metric)]
                lines.append(f"# TYPE {metric.name} {kind}")
                last_name = metric.name
            labels = _render_labels(metric.labels)
            if isinstance(metric, Histogram):
                cumulative = 0
                for bound, count in zip(metric.bounds, metric.counts):
                    cumulative += count
                    bucket = _render_labels(
                        metric.labels + (("le", f"{bound:g}"),))
                    lines.append(
                        f"{metric.name}_bucket{bucket} {cumulative}")
                cumulative += metric.counts[-1]
                bucket = _render_labels(metric.labels + (("le", "+Inf"),))
                lines.append(f"{metric.name}_bucket{bucket} {cumulative}")
                lines.append(f"{metric.name}_sum{labels} {metric.sum:g}")
                lines.append(f"{metric.name}_count{labels} {metric.count}")
            else:
                lines.append(f"{metric.name}{labels} {metric.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:
        with self._lock:
            return f"MetricsRegistry({len(self._metrics)} metrics)"


#: Mapping from :class:`~repro.algorithms.cache.EngineStats` fields to
#: the registry's stable counter names.
ENGINE_STAT_COUNTERS: Dict[str, str] = {
    "cache_hits": "repro_engine_cache_hits_total",
    "cache_misses": "repro_engine_cache_misses_total",
    "propagation_steps": "repro_engine_propagation_steps_total",
    "matvec_count": "repro_engine_matvec_total",
    "sweep_points": "repro_engine_sweep_points_total",
    "cache_evictions": "repro_engine_cache_evictions_total",
}


def record_engine_stats(registry: MetricsRegistry, engine: str,
                        delta: Dict[str, int],
                        **labels: Any) -> None:
    """Publish one call's :class:`EngineStats` delta into *registry*.

    This is the absorption point that lets the registry supersede the
    per-engine counters: every engine entry point snapshots its stats
    before and after the computation and hands the difference here, so
    ``repro_engine_*_total{engine=...}`` accumulate exactly what the
    compatibility view counts.  Extra *labels* ride along -- the
    threaded fan-out adds ``worker="thread-i"`` so its per-clone
    deltas carry the same label scheme as merged process-worker
    snapshots.
    """
    for field, name in ENGINE_STAT_COUNTERS.items():
        amount = delta.get(field, 0)
        if amount:
            registry.counter(name, engine=engine, **labels).inc(amount)
