"""Span-based tracing of the model-checking pipeline.

A *span* is one timed phase of a computation -- an engine entry point,
a uniformisation series, a refinement round -- with monotonic wall and
CPU timings, free-form attributes, and a parent/child relation that
turns one query into a tree: the span tree is the runtime twin of the
paper's evaluation tables, showing *where* the seconds of Tables 2--4
actually go.

Spans are created through :meth:`Tracer.span`, a context manager::

    with tracer.span("joint_vector", engine="sericola", t=24.0) as span:
        ...
        span.set(cache_hit=False)

Nesting is tracked per thread (a thread-local stack), so concurrent
queries trace independently.  Cross-thread attribution is explicit:
the threaded fan-out of :mod:`repro.algorithms.parallel` captures the
calling thread's current span before submitting work and opens
worker-labelled child spans under it (``tracer.span(..., parent=p)``),
so a sweep's grid columns appear as children of the sweep span, not as
detached roots.

The tracer is deliberately dumb about output: finished root spans
accumulate on :attr:`Tracer.roots` and the exporters
(:mod:`repro.obs.export`) turn them into JSON lines, or a human tree.
Everything here is standard library only and thread-safe.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Sentinel meaning "use the calling thread's current span as parent".
_CURRENT = object()


class Span:
    """One timed, attributed phase of a computation.

    Attributes
    ----------
    name:
        Stable phase identifier (``"joint_vector"``, ``"series"``,
        ...).  Names carry no parameters -- those go into
        :attr:`attributes` -- so span-tree *shapes* can be compared
        across runs (the CI golden test does exactly that).
    span_id, parent_id:
        Process-unique integers; ``parent_id`` is ``None`` for roots.
    start_wall:
        ``time.time()`` at entry (for log correlation only; durations
        use the monotonic clock).
    wall_seconds, cpu_seconds:
        Monotonic wall-clock and process-CPU duration, filled in when
        the span closes (``None`` while open).
    attributes:
        Free-form ``str -> scalar`` details (bounds, depths, hit
        flags).
    children:
        Finished child spans, in completion order.
    thread:
        Name of the thread the span ran on.
    """

    __slots__ = ("name", "span_id", "parent_id", "start_wall",
                 "wall_seconds", "cpu_seconds", "attributes",
                 "children", "thread", "_start_monotonic",
                 "_start_cpu")

    def __init__(self, name: str, span_id: int,
                 parent_id: Optional[int],
                 attributes: Optional[Dict[str, Any]] = None):
        self.name = str(name)
        self.span_id = int(span_id)
        self.parent_id = parent_id
        self.start_wall = time.time()
        self.wall_seconds: Optional[float] = None
        self.cpu_seconds: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.children: List["Span"] = []
        self.thread = threading.current_thread().name
        self._start_monotonic = time.perf_counter()
        self._start_cpu = time.process_time()

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes; returns self."""
        self.attributes.update(attributes)
        return self

    def close(self) -> None:
        """Record the durations (idempotent -- first close wins)."""
        if self.wall_seconds is None:
            self.wall_seconds = time.perf_counter() - self._start_monotonic
            self.cpu_seconds = time.process_time() - self._start_cpu

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready flat representation (children by parent_id)."""
        return {"span_id": self.span_id,
                "parent_id": self.parent_id,
                "name": self.name,
                "start_wall": self.start_wall,
                "wall_seconds": self.wall_seconds,
                "cpu_seconds": self.cpu_seconds,
                "thread": self.thread,
                "attributes": dict(self.attributes)}

    def __repr__(self) -> str:
        wall = ("open" if self.wall_seconds is None
                else f"{self.wall_seconds:.6f}s")
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, {wall}, "
                f"{len(self.children)} children)")


class Tracer:
    """Thread-safe collector of span trees.

    One tracer serves a whole process (or one profiled query -- the
    CLI creates a fresh tracer per run so trees never mix).  Opening a
    span pushes it on the *calling thread's* stack; closing pops it and
    attaches it to its parent (or to :attr:`roots`).  Attachment is
    serialised by an internal lock because a worker thread's span may
    close concurrently with its parent thread's.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._spans: Dict[int, Span] = {}
        #: Finished top-level spans, in completion order.
        self.roots: List[Span] = []

    # ------------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The calling thread's innermost open span (``None`` outside
        any span).  The threaded fan-out captures this *before*
        submitting tasks so workers can attach to it explicitly."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name: str, parent: Any = _CURRENT,
             **attributes: Any) -> "_SpanContext":
        """Open a child span of *parent* as a context manager.

        *parent* defaults to the calling thread's current span; pass an
        explicit :class:`Span` for cross-thread attribution (worker
        spans under a sweep span) or ``None`` to force a new root.
        """
        if parent is _CURRENT:
            parent_span = self.current()
        else:
            parent_span = parent
        parent_id = parent_span.span_id if parent_span is not None else None
        span = Span(name, next(self._ids), parent_id, attributes)
        return _SpanContext(self, span, parent_span)

    def _finish(self, span: Span, parent: Optional[Span]) -> None:
        span.close()
        with self._lock:
            self._spans[span.span_id] = span
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)

    # ------------------------------------------------------------------

    def spans(self) -> List[Span]:
        """Every finished span (all trees, depth first)."""
        with self._lock:
            roots = list(self.roots)
        collected: List[Span] = []
        for root in roots:
            collected.extend(root.walk())
        return collected

    def export_segments(self, limit: Optional[int] = 512,
                        clear: bool = False) -> List[Dict[str, Any]]:
        """Finished spans as flat, picklable dicts, bounded to *limit*.

        The worker side of the process executor ships these over the
        result pipe after each task (:mod:`repro.obs.remote`).  When
        more than *limit* spans have finished, only the most recent
        *limit* are exported -- a truncated record whose parent was
        dropped is re-parented at adoption time, so the bound never
        corrupts the tree, it only prunes it.  *clear* drops the
        exported spans afterwards, turning repeated exports into
        deltas.
        """
        spans = self.spans()
        if limit is not None and len(spans) > limit:
            spans = spans[-limit:]
        records = [span.to_dict() for span in spans]
        if clear:
            self.clear()
        return records

    def adopt_segments(self, records: List[Dict[str, Any]],
                       parent: Optional[Span] = None) -> List[Span]:
        """Rebuild exported segments as spans of *this* tracer.

        The inverse of :meth:`export_segments` on the parent side:
        every record becomes a closed :class:`Span` with a fresh id
        from this tracer's counter (foreign ids never leak in), the
        recorded parent/child structure is restored, and records whose
        parent is not in the batch attach under *parent* (or become
        roots) -- this is how a worker's ``joint_vector`` trees are
        re-parented under the parent process's ``process_sweep`` span.
        Returns the adopted top-level spans.
        """
        pairs: List[Tuple[Span, Optional[int]]] = []
        id_map: Dict[int, Span] = {}
        for record in records:
            span = Span(str(record.get("name", "span")),
                        next(self._ids), None,
                        record.get("attributes"))
            start_wall = record.get("start_wall")
            if start_wall is not None:
                span.start_wall = float(start_wall)
            span.wall_seconds = float(record.get("wall_seconds")
                                      or 0.0)
            span.cpu_seconds = float(record.get("cpu_seconds") or 0.0)
            thread = record.get("thread")
            if thread is not None:
                span.thread = str(thread)
            old_id = record.get("span_id")
            if old_id is not None:
                id_map[int(old_id)] = span
            pairs.append((span, record.get("parent_id")))
        tops: List[Span] = []
        with self._lock:
            for span, old_parent in pairs:
                target = (id_map.get(int(old_parent))
                          if old_parent is not None else None)
                if target is not None and target is not span:
                    span.parent_id = target.span_id
                    target.children.append(span)
                else:
                    span.parent_id = (parent.span_id
                                      if parent is not None else None)
                    if parent is not None:
                        parent.children.append(span)
                    else:
                        self.roots.append(span)
                    tops.append(span)
                self._spans[span.span_id] = span
        return tops

    def clear(self) -> None:
        """Drop all finished spans and every thread's span stack.

        Dropping the stacks matters for forked worker processes: the
        child's main thread inherits the parent's thread-local stack,
        so without this a worker's spans would silently attach to the
        parent's (stale, never-finishing) open span instead of
        becoming roots -- and never show up in an export.
        """
        with self._lock:
            self.roots.clear()
            self._spans.clear()
            self._local = threading.local()

    def __repr__(self) -> str:
        return f"Tracer(roots={len(self.roots)})"


class _SpanContext:
    """Context manager pairing a span with its tracer bookkeeping."""

    __slots__ = ("_tracer", "_span", "_parent")

    def __init__(self, tracer: Tracer, span: Span,
                 parent: Optional[Span]):
        self._tracer = tracer
        self._span = span
        self._parent = parent

    def __enter__(self) -> Span:
        self._tracer._stack().append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = self._tracer._stack()
        if stack and stack[-1] is self._span:
            stack.pop()
        else:  # pragma: no cover - defensive: unbalanced exits
            try:
                stack.remove(self._span)
            except ValueError:
                pass
        if exc_type is not None:
            self._span.set(error=f"{exc_type.__name__}: {exc}")
        self._tracer._finish(self._span, self._parent)
