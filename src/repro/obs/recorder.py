"""Crash flight recorder and resource timelines.

Two diagnosis tools for the process executor, both standard library
only:

* :class:`FlightRecorder` -- a per-worker activity log in the style of
  a cockpit flight recorder: every event (task start, injected fault,
  task completion with its engine-stats delta, engine error) is
  appended as one JSON line to a sidecar file and fsynced immediately,
  exactly like :class:`repro.exec.checkpoint.SweepCheckpoint` rows --
  so when the worker dies *without warning* (``os._exit``,
  ``SIGKILL``, a hang kill) the parent reads the victim's last
  recorded activity back with :meth:`FlightRecorder.read_tail` and
  attaches it to the :class:`~repro.errors.WorkerError`.  A bounded
  in-memory ring of the same events backs :meth:`tail` for the
  in-process case.
* :class:`ResourceSampler` -- a daemon thread sampling RSS and CPU
  time of a set of processes (``/proc/<pid>/stat`` where available)
  into bounded per-process time series: the gauge *history* behind the
  ``--progress`` live line, complementing the high-water
  ``repro_peak_rss_bytes`` gauge.  When given a registry, each sample
  also raises the per-worker ``repro_peak_rss_bytes{worker=...}``
  gauge.

Corrupt or truncated sidecar lines (a worker killed mid-write) are
skipped on read, never raised -- the tail is best-effort evidence.
"""

from __future__ import annotations

import collections
import json
import os
import threading
import time
from typing import Any, Deque, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry, peak_rss_bytes

#: Default number of events kept in the ring / read back as the tail.
DEFAULT_TAIL_EVENTS = 32


class FlightRecorder:
    """Fsynced JSONL activity sidecar with an in-memory ring buffer.

    Each :meth:`record` call writes one ``{"ts": ..., "kind": ...,
    ...}`` line and fsyncs it, so the file is complete up to the last
    event *whatever* kills the process next.  The write cost is paid
    per task-level event (a handful per sweep cell), not per engine
    iteration, keeping it negligible next to the cell computation.
    """

    def __init__(self, path: str,
                 limit: int = DEFAULT_TAIL_EVENTS):
        self.path = str(path)
        self.limit = int(limit)
        self._ring: Deque[Dict[str, Any]] = collections.deque(
            maxlen=self.limit)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")

    def record(self, kind: str, **fields: Any) -> None:
        """Append one event (and fsync it) -- never raises."""
        event = {"ts": round(time.time(), 6), "kind": str(kind)}
        event.update(fields)
        with self._lock:
            self._ring.append(event)
            try:
                self._handle.write(
                    json.dumps(event, sort_keys=True) + "\n")
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except (OSError, ValueError):  # pragma: no cover - disk
                pass

    def tail(self) -> Tuple[Dict[str, Any], ...]:
        """The last events recorded through this instance."""
        with self._lock:
            return tuple(self._ring)

    def close(self) -> None:
        with self._lock:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    @staticmethod
    def read_tail(path: str, limit: int = DEFAULT_TAIL_EVENTS
                  ) -> Tuple[Dict[str, Any], ...]:
        """The last *limit* valid events of a sidecar file.

        Invalid lines (truncated by a mid-write kill) and unreadable
        files yield fewer -- possibly zero -- events, never an error:
        the caller is already handling a dead worker.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return ()
        events: List[Dict[str, Any]] = []
        for line in reversed(lines):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict):
                events.append(event)
                if len(events) >= limit:
                    break
        return tuple(reversed(events))

    def __repr__(self) -> str:
        return f"FlightRecorder({self.path!r}, limit={self.limit})"


def _read_proc_stat(pid: int) -> Optional[Tuple[int, float]]:
    """``(rss_bytes, cpu_seconds)`` of *pid* from ``/proc``, or
    ``None`` where unavailable (non-Linux, vanished process)."""
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            data = handle.read().decode("ascii", "replace")
        # Split after the parenthesised comm field; the remainder is
        # purely numeric: state utime=field 12, stime=13, rss=22
        # (0-based within the remainder).
        rest = data.rsplit(")", 1)[1].split()
        ticks = int(rest[11]) + int(rest[12])
        pages = int(rest[21])
        page_size = os.sysconf("SC_PAGE_SIZE")
        clk_tck = os.sysconf("SC_CLK_TCK") or 100
        return pages * page_size, ticks / float(clk_tck)
    except (OSError, IndexError, ValueError, AttributeError):
        return None


class ResourceSampler(threading.Thread):
    """Daemon thread recording RSS/CPU time series per process.

    ``watch(label, pid)`` registers a process under a stable label
    (``"main"``, ``"process-0"``, ...); every *interval* seconds one
    ``(monotonic_ts, rss_bytes, cpu_seconds)`` sample is appended to
    that label's bounded series.  A vanished pid simply stops
    producing samples.  With a *registry*, samples also raise the
    worker-labelled ``repro_peak_rss_bytes`` gauge and the unlabelled
    ``repro_peak_rss_bytes_max`` roll-up.
    """

    def __init__(self, interval: float = 0.5,
                 registry: Optional[MetricsRegistry] = None,
                 maxlen: int = 2048):
        super().__init__(daemon=True, name="repro-resource-sampler")
        self.interval = float(interval)
        self.registry = registry
        self.maxlen = int(maxlen)
        self._lock = threading.Lock()
        self._pids: Dict[str, int] = {}
        self._series: Dict[str,
                           Deque[Tuple[float, int, float]]] = {}
        self._stopped = threading.Event()

    def watch(self, label: str, pid: int) -> None:
        """Start sampling *pid* under *label* (replaces a prior pid)."""
        with self._lock:
            self._pids[str(label)] = int(pid)
            self._series.setdefault(
                str(label), collections.deque(maxlen=self.maxlen))

    def unwatch(self, label: str) -> None:
        """Stop sampling *label* (its recorded series is kept)."""
        with self._lock:
            self._pids.pop(str(label), None)

    def sample_once(self) -> Dict[str, Tuple[float, int, float]]:
        """Take one sample of every watched process; returns the new
        ``{label: (ts, rss_bytes, cpu_seconds)}`` points."""
        with self._lock:
            pids = dict(self._pids)
        now = time.monotonic()
        taken: Dict[str, Tuple[float, int, float]] = {}
        self_pid = os.getpid()
        for label, pid in pids.items():
            stat = _read_proc_stat(pid)
            if stat is None:
                if pid != self_pid:
                    continue
                # Fallback without /proc: the high-water RSS and this
                # process's CPU clock still give a usable series.
                stat = (peak_rss_bytes(), time.process_time())
            rss, cpu = stat
            point = (now, rss, cpu)
            taken[label] = point
            with self._lock:
                series = self._series.get(label)
                if series is not None:
                    series.append(point)
            if self.registry is not None and rss > 0:
                self.registry.gauge("repro_peak_rss_bytes",
                                    worker=label).update_max(rss)
                self.registry.gauge(
                    "repro_peak_rss_bytes_max").update_max(rss)
        return taken

    def latest(self) -> Dict[str, Tuple[float, int, float]]:
        """The most recent sample per label (empty series omitted)."""
        with self._lock:
            return {label: series[-1]
                    for label, series in self._series.items()
                    if series}

    def timelines(self) -> Dict[str, List[Tuple[float, int, float]]]:
        """A copy of every recorded series."""
        with self._lock:
            return {label: list(series)
                    for label, series in self._series.items()}

    def run(self) -> None:
        while not self._stopped.wait(self.interval):
            self.sample_once()

    def stop(self, join: bool = True) -> None:
        self._stopped.set()
        if join and self.is_alive():
            self.join(timeout=2.0)

    def __repr__(self) -> str:
        with self._lock:
            return (f"ResourceSampler(interval={self.interval}, "
                    f"watching={sorted(self._pids)})")
