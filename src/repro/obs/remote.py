"""Cross-process telemetry: export a worker's observability state,
merge it into the parent's.

The process executor (:mod:`repro.exec`) runs engines in worker
*processes*, so everything :mod:`repro.obs` records inside a worker --
engine counters, matvec histograms, convergence series, spans, peak
RSS -- would die with the worker.  This module defines the payload
that rides home over the existing result pipe:

* :func:`export_telemetry` -- called in the worker after each task
  (and once more on clean shutdown): bundles the registry's
  :meth:`~repro.obs.metrics.MetricsRegistry.export_state`, the
  tracer's bounded
  :meth:`~repro.obs.trace.Tracer.export_segments` and the convergence
  records into one picklable dict, then resets all three so the next
  export ships a pure delta.
* :func:`merge_telemetry` -- called in the parent: folds the metrics
  into the parent registry with a ``worker="process-i"`` label
  (:meth:`~repro.obs.metrics.MetricsRegistry.merge`), re-parents the
  exported spans under the parent's live sweep span
  (:meth:`~repro.obs.trace.Tracer.adopt_segments`), and replays the
  convergence series -- so ``repro profile --shape`` shows one
  coherent tree and ``repro_engine_*_total`` are complete whether the
  sweep ran on threads or processes.

Roll-up convention: derived roll-up gauges (currently
``repro_peak_rss_bytes_max``) are *not* shipped -- the merging side
recomputes them from the worker-labelled samples, so a roll-up never
acquires a spurious ``worker=`` label.

Everything here is standard library only, like the rest of the
package.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .convergence import ConvergenceRecorder
from .metrics import MetricsRegistry
from .trace import Span, Tracer

#: Wire-format version of the telemetry payload.
TELEMETRY_VERSION = 1

#: Metric names recomputed by the merging side instead of shipped
#: (see the module docstring).
ROLLUP_METRICS = frozenset({"repro_peak_rss_bytes_max"})

#: Default bound on exported span records per payload.
SEGMENT_LIMIT = 512


def export_telemetry(registry: MetricsRegistry,
                     tracer: Optional[Tracer] = None,
                     convergence: Optional[ConvergenceRecorder] = None,
                     segment_limit: Optional[int] = SEGMENT_LIMIT,
                     reset: bool = True) -> Dict[str, Any]:
    """One picklable telemetry payload; resets the sources by default.

    With *reset* (the default) the registry, tracer and convergence
    recorder are cleared after the export, so repeated exports ship
    disjoint deltas and the parent can merge them blindly.
    """
    metrics = [entry for entry in registry.export_state()
               if entry["name"] not in ROLLUP_METRICS]
    segments: List[Dict[str, Any]] = []
    if tracer is not None:
        segments = tracer.export_segments(limit=segment_limit,
                                          clear=reset)
    records: List[Dict[str, Any]] = []
    if convergence is not None:
        records = [record.to_dict()
                   for record in convergence.records]
        if reset:
            convergence.clear()
    if reset:
        registry.reset()
    return {"version": TELEMETRY_VERSION,
            "metrics": metrics,
            "segments": segments,
            "convergence": records}


def merge_telemetry(payload: Dict[str, Any],
                    registry: MetricsRegistry,
                    tracer: Optional[Tracer] = None,
                    parent_span: Optional[Span] = None,
                    convergence: Optional[ConvergenceRecorder] = None,
                    worker: Optional[str] = None) -> None:
    """Fold one :func:`export_telemetry` payload into parent state.

    *worker* (e.g. ``"process-3"``) is attached as an extra label to
    every merged metric, overriding a worker label the snapshot may
    already carry (a worker records its own RSS under
    ``worker="main"``).  Spans attach under *parent_span* when a
    tracer is given; convergence series are replayed sample by sample.
    """
    extra = {"worker": worker} if worker is not None else None
    metrics = payload.get("metrics", ())
    registry.merge(metrics, extra_labels=extra)
    peak = max((float(entry.get("value", 0.0)) for entry in metrics
                if entry.get("name") == "repro_peak_rss_bytes"),
               default=0.0)
    if peak > 0.0:
        registry.gauge("repro_peak_rss_bytes_max").update_max(peak)
    if tracer is not None:
        segments = payload.get("segments", ())
        if segments:
            tracer.adopt_segments(list(segments), parent=parent_span)
    if convergence is not None:
        for record in payload.get("convergence", ()):
            series = convergence.start_series(
                str(record.get("kind", "series")),
                int(record.get("depth", 0)),
                **dict(record.get("attributes", {})))
            iterations = record.get("iterations", ())
            residuals = record.get("residuals", ())
            for iteration, residual in zip(iterations, residuals):
                series.record(int(iteration), float(residual))
