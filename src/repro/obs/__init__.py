"""``repro.obs`` -- zero-dependency observability for the checker.

The package is standard library only and imports nothing from the rest
of :mod:`repro`, so every layer (algorithms, numerics, mc, cli,
benchmarks) can depend on it without cycles.

Two module-level objects carry all state:

``REGISTRY``
    The process-wide :class:`~repro.obs.metrics.MetricsRegistry`.
    *Always on*: recording a counter is cheap enough that operational
    facts (``repro_deadline_missed_total``) are never silently lost,
    even with tracing disabled.

``OBS``
    The :class:`Observability` switchboard: an :attr:`enabled` flag,
    a :class:`~repro.obs.trace.Tracer`, a
    :class:`~repro.obs.convergence.ConvergenceRecorder` and a
    reference to ``REGISTRY``.  The flag gates everything *expensive*
    -- spans, per-iteration convergence samples, timing histograms,
    engine-stats publishing -- so the disabled path costs one
    attribute load at each instrumentation point.

Instrumented code uses the two helpers::

    from repro.obs import OBS, span

    with span("joint_vector", engine=self.name) as sp:
        ...
        sp.set(cache_hit=True)

:func:`span` returns a real tracer span when enabled and a shared
no-op context otherwise, so call sites stay branch-free.  Whole-run
capture (CLI ``--profile``, tests) uses :meth:`Observability.capture`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from .convergence import ConvergenceRecorder, SeriesRecord
from .httpd import MetricsServer, serve_metrics
from .metrics import (DEFAULT_BUCKETS, ENGINE_STAT_COUNTERS, Counter,
                      Gauge, Histogram, MetricsRegistry,
                      peak_rss_bytes, record_engine_stats)
from .recorder import FlightRecorder, ResourceSampler
from .remote import export_telemetry, merge_telemetry
from .trace import _CURRENT, Span, Tracer

__all__ = [
    "OBS", "REGISTRY", "Observability", "span",
    "Tracer", "Span", "MetricsRegistry", "Counter", "Gauge",
    "Histogram", "ConvergenceRecorder", "SeriesRecord",
    "DEFAULT_BUCKETS", "ENGINE_STAT_COUNTERS", "record_engine_stats",
    "peak_rss_bytes",
    "FlightRecorder", "ResourceSampler", "MetricsServer",
    "serve_metrics", "export_telemetry", "merge_telemetry",
]

#: Process-wide metrics registry -- always on (see module docstring).
REGISTRY = MetricsRegistry()


class _NullSpan:
    """Inert stand-in handed out while observability is disabled."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Observability:
    """The switchboard: one flag, one tracer, one recorder, the registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        #: Master switch read (unlocked) on every hot path.
        self.enabled = False
        self.tracer = Tracer()
        self.convergence = ConvergenceRecorder()
        self.metrics = registry if registry is not None else REGISTRY
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop recorded spans and convergence series (metrics stay --
        the registry has its own :meth:`~MetricsRegistry.reset`)."""
        self.tracer.clear()
        self.convergence.clear()

    @contextmanager
    def capture(self, reset_metrics: bool = True) -> Iterator["Observability"]:
        """Enable observability for a block, starting from a clean slate.

        Used by the CLI ``--profile`` path and the tests: clears the
        tracer and recorder (and, by default, the metrics registry),
        flips :attr:`enabled` on, and restores the previous flag on
        exit -- the captured spans/metrics stay readable afterwards.
        Serialised by a lock so two captures cannot interleave.
        """
        with self._lock:
            previous = self.enabled
            self.reset()
            if reset_metrics:
                self.metrics.reset()
            self.enabled = True
            try:
                yield self
            finally:
                self.enabled = previous


#: The process-wide switchboard used by all instrumentation points.
OBS = Observability()


def span(name: str, parent: Any = _CURRENT, **attributes: Any) -> Any:
    """A tracer span when :attr:`OBS.enabled`, else a shared no-op.

    Call sites use this unconditionally -- the disabled path costs one
    flag check and returns a singleton whose ``__enter__``/``set`` are
    inert, keeping hot loops branch-free and allocation-free.
    """
    if OBS.enabled:
        return OBS.tracer.span(name, parent=parent, **attributes)
    return _NULL_SPAN
