"""Exporters: JSON-lines traces, Prometheus text, human profiles.

Three audiences, three formats:

* machines replaying a run read the **JSON-lines trace**
  (:func:`write_jsonl` / :func:`parse_jsonl`, one flat span dict per
  line, tree recoverable from ``parent_id``);
* scrapers read the **Prometheus text exposition**
  (:func:`render_prometheus`, a thin veneer over
  :meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus`);
* humans read the **profile** (:func:`render_profile`): the span tree
  with per-phase wall/CPU time, cache hit ratios derived from the
  ``repro_engine_cache_*_total`` counters, and convergence summaries
  (Sericola truncation depth, uniformisation series length, final
  residuals).

:func:`span_shape` strips a tree down to names and nesting only --
the CI golden test compares that shape across runs, which is why span
*names* carry no parameters.
"""

from __future__ import annotations

import json
from typing import (IO, Any, Dict, Iterable, List, Optional, Sequence,
                    Tuple, Union)

from .convergence import ConvergenceRecorder
from .metrics import MetricsRegistry
from .trace import Span, Tracer

# ----------------------------------------------------------------------
# JSON lines


def write_jsonl(spans: Iterable[Span], handle: IO[str]) -> int:
    """Write one flat JSON object per span; returns the line count."""
    count = 0
    for span in spans:
        handle.write(json.dumps(span.to_dict(), sort_keys=True))
        handle.write("\n")
        count += 1
    return count


def dump_jsonl(tracer: Tracer) -> str:
    """The tracer's finished spans as a JSON-lines string."""
    import io

    buffer = io.StringIO()
    write_jsonl(tracer.spans(), buffer)
    return buffer.getvalue()


def parse_jsonl(source: Union[str, Iterable[str]]) -> List[Dict[str, Any]]:
    """Parse a JSON-lines trace back into flat span dicts.

    Accepts a whole string or an iterable of lines (an open file).
    Blank lines are skipped; anything else must be a JSON object with
    at least ``span_id`` and ``name`` -- malformed input raises
    ``ValueError`` so round-trip tests fail loudly.
    """
    if isinstance(source, str):
        source = source.splitlines()
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno} is not JSON: {exc}") from exc
        if not isinstance(record, dict) or "span_id" not in record \
                or "name" not in record:
            raise ValueError(f"trace line {lineno} is not a span record")
        records.append(record)
    return records


def build_tree(records: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Reassemble parsed span dicts into root trees.

    Each returned dict gains a ``children`` list (ordered as in the
    input, i.e. completion order).  Orphans -- spans whose parent is
    not in the trace -- become roots rather than being dropped.
    """
    by_id: Dict[int, Dict[str, Any]] = {}
    for record in records:
        node = dict(record)
        node["children"] = []
        by_id[int(node["span_id"])] = node
    roots: List[Dict[str, Any]] = []
    for record in records:
        node = by_id[int(record["span_id"])]
        parent_id = record.get("parent_id")
        parent = by_id.get(int(parent_id)) if parent_id is not None else None
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    return roots


# ----------------------------------------------------------------------
# Shape (for golden comparisons)


def span_shape(spans: Sequence[Span]) -> List[Dict[str, Any]]:
    """Names and nesting only -- no ids, no timings, no attributes.

    Children are sorted by name (completion order of threaded workers
    is nondeterministic) and *collapsed*: repeated identical child
    shapes are folded into one entry so a sweep over 11 grid cells and
    one over 7 produce the same shape.  This is the structure the CI
    golden test pins down.
    """

    def shape(span: Span) -> Dict[str, Any]:
        children = sorted((shape(c) for c in span.children),
                          key=lambda s: json.dumps(s, sort_keys=True))
        collapsed: List[Dict[str, Any]] = []
        for child in children:
            if not collapsed or collapsed[-1] != child:
                collapsed.append(child)
        return {"name": span.name, "children": collapsed}

    return [shape(span) for span in spans]


def record_shape(roots: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """:func:`span_shape` over parsed trace dicts.

    Operates on :func:`build_tree` output (``name`` + ``children``
    keys) with the same sorting and collapsing rules, so a shape
    computed from a JSON-lines trace on disk compares equal to one
    taken from the live tracer.
    """

    def shape(node: Dict[str, Any]) -> Dict[str, Any]:
        children = sorted((shape(c) for c in node.get("children", ())),
                          key=lambda s: json.dumps(s, sort_keys=True))
        collapsed: List[Dict[str, Any]] = []
        for child in children:
            if not collapsed or collapsed[-1] != child:
                collapsed.append(child)
        return {"name": node["name"], "children": collapsed}

    return [shape(node) for node in roots]


# ----------------------------------------------------------------------
# Human profile


def _format_seconds(value: Optional[float]) -> str:
    if value is None:
        return "   open"
    if value >= 1.0:
        return f"{value:7.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:6.2f}ms"
    return f"{value * 1e6:6.1f}us"


def _span_label(span: Span) -> str:
    interesting = {k: v for k, v in sorted(span.attributes.items())
                   if k in _LABEL_ATTRIBUTES}
    if not interesting:
        return span.name
    inner = ", ".join(f"{k}={v}" for k, v in interesting.items())
    return f"{span.name} [{inner}]"

#: Attributes worth showing inline in the tree rendering.
_LABEL_ATTRIBUTES = frozenset({
    "engine", "formula", "t", "r", "phases", "step", "depth", "worker",
    "round", "cache_hit", "points", "error"})


def render_span_tree(roots: Sequence[Span]) -> str:
    """The classic profiler tree: wall / CPU / name per line."""
    lines = ["    wall      cpu  span"]
    for root in roots:
        _render_span(root, 0, lines)
    return "\n".join(lines) + "\n"


def _render_span(span: Span, depth: int, lines: List[str]) -> None:
    indent = "  " * depth
    lines.append(f"{_format_seconds(span.wall_seconds)} "
                 f"{_format_seconds(span.cpu_seconds)}  "
                 f"{indent}{_span_label(span)}")
    for child in span.children:
        _render_span(child, depth + 1, lines)


def cache_hit_ratios(registry: MetricsRegistry) -> Dict[str, Tuple[int, int]]:
    """Per-engine ``(hits, misses)`` from the stable counters."""
    snapshot = registry.snapshot()
    ratios: Dict[str, Tuple[int, int]] = {}
    for name, field in (("repro_engine_cache_hits_total", 0),
                        ("repro_engine_cache_misses_total", 1)):
        for label, value in snapshot.get(name, {}).items():
            engine = _engine_from_label(label)
            hits, misses = ratios.get(engine, (0, 0))
            if field == 0:
                hits += int(value)
            else:
                misses += int(value)
            ratios[engine] = (hits, misses)
    return ratios


def _engine_from_label(label: str) -> str:
    for part in label.strip("{}").split(","):
        if part.startswith("engine="):
            return part.split("=", 1)[1].strip('"')
    return "unknown"


def render_profile(tracer: Tracer,
                   registry: MetricsRegistry,
                   convergence: Optional[ConvergenceRecorder] = None) -> str:
    """The human report: span tree, cache ratios, convergence, timings."""
    sections: List[str] = []

    roots = list(tracer.roots)
    if roots:
        sections.append("== span tree ==")
        sections.append(render_span_tree(roots).rstrip("\n"))

    ratios = cache_hit_ratios(registry)
    if ratios:
        sections.append("")
        sections.append("== cache ==")
        for engine in sorted(ratios):
            hits, misses = ratios[engine]
            total = hits + misses
            pct = 100.0 * hits / total if total else 0.0
            sections.append(f"{engine:>16}: {hits}/{total} hits "
                            f"({pct:.1f}%)")

    snapshot = registry.snapshot()
    scalars: List[Tuple[str, float]] = []
    for name, family in sorted(snapshot.items()):
        if name.startswith("repro_engine_cache_"):
            continue  # already shown as hit ratios
        for label, value in sorted(family.items()):
            if isinstance(value, dict):
                continue  # histograms go to the timings section
            scalars.append((f"{name}{label}", value))
    if scalars:
        sections.append("")
        sections.append("== counters & gauges ==")
        for key, value in scalars:
            rendered = (f"{int(value)}" if float(value).is_integer()
                        else f"{value:g}")
            sections.append(f"{key}: {rendered}")

    histograms = {name: family for name, family in snapshot.items()
                  if name.endswith("_seconds")}
    if histograms:
        sections.append("")
        sections.append("== timings ==")
        for name in sorted(histograms):
            for label, summary in sorted(histograms[name].items()):
                count = int(summary["count"])
                if not count:
                    continue
                sections.append(
                    f"{name}{label}: n={count} "
                    f"total={summary['sum']:.6f}s "
                    f"mean={summary['mean'] * 1e3:.3f}ms "
                    f"max={summary['max'] * 1e3:.3f}ms")

    if convergence is not None and convergence.records:
        sections.append("")
        sections.append("== convergence ==")
        for record in convergence.records:
            attrs = record.attributes
            context = ", ".join(f"{k}={v}"
                                for k, v in sorted(attrs.items()))
            residual = record.final_residual
            residual_text = ("n/a" if residual is None
                             else f"{residual:.3e}")
            sections.append(
                f"{record.kind}: depth={record.depth} "
                f"steps={record.steps} "
                f"final_residual={residual_text}"
                + (f" ({context})" if context else ""))

    return "\n".join(sections) + ("\n" if sections else "")
