"""Per-iteration convergence telemetry of the series-based engines.

The paper's engine comparison (Section 5, Tables 2--4) is ultimately a
statement about *convergence behaviour*: how deep the Sericola series
must run for a given ``epsilon``, how the uniformisation truncation
depth grows with ``lambda t``, where the time goes per iteration.
This module records exactly those series: the inner loops of
:mod:`repro.algorithms.sericola` and
:mod:`repro.numerics.uniformization` append one ``(iteration,
residual)`` sample per step -- behind the cheap
:attr:`repro.obs.OBS.enabled` flag, so the disabled path costs one
attribute load per loop iteration and nothing else.

The *residual* is the remaining Poisson tail mass after the iteration:
for both series it bounds the truncation error still outstanding, so
the recorded curve is a sound (and monotone) convergence certificate,
directly comparable to the engines' ``epsilon`` knobs.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional


class SeriesRecord:
    """One recorded series: identity, planned depth, sample curve.

    A record belongs to the single thread that runs its loop, so
    :meth:`record` is lock-free; creating records
    (:meth:`ConvergenceRecorder.start_series`) is serialised by the
    recorder.
    """

    __slots__ = ("kind", "attributes", "depth", "iterations",
                 "residuals")

    def __init__(self, kind: str, depth: int,
                 attributes: Optional[Dict[str, Any]] = None):
        #: Series family: ``"sericola_series"``,
        #: ``"uniformisation_series"``, ...
        self.kind = str(kind)
        #: Planned truncation depth (Fox--Glynn right point).
        self.depth = int(depth)
        #: Context (engine name, rate, bounds, ...).
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.iterations: List[int] = []
        self.residuals: List[float] = []

    def record(self, iteration: int, residual: float) -> None:
        """Append one ``(iteration, residual)`` sample."""
        self.iterations.append(int(iteration))
        self.residuals.append(float(residual))

    @property
    def steps(self) -> int:
        """Number of samples recorded (iterations actually run)."""
        return len(self.iterations)

    @property
    def final_residual(self) -> Optional[float]:
        """Residual after the last recorded iteration."""
        return self.residuals[-1] if self.residuals else None

    def summary(self) -> Dict[str, Any]:
        """JSON-ready condensation (no per-sample data)."""
        return {"kind": self.kind,
                "depth": self.depth,
                "steps": self.steps,
                "final_residual": self.final_residual,
                "attributes": dict(self.attributes)}

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready full record, samples included."""
        data = self.summary()
        data["iterations"] = list(self.iterations)
        data["residuals"] = list(self.residuals)
        return data

    def __repr__(self) -> str:
        return (f"SeriesRecord({self.kind!r}, depth={self.depth}, "
                f"steps={self.steps})")


class ConvergenceRecorder:
    """Thread-safe collection of :class:`SeriesRecord` objects."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[SeriesRecord] = []

    def start_series(self, kind: str, depth: int,
                     **attributes: Any) -> SeriesRecord:
        """Open (and register) a new series record."""
        record = SeriesRecord(kind, depth, attributes)
        with self._lock:
            self._records.append(record)
        return record

    @property
    def records(self) -> List[SeriesRecord]:
        """All records so far, in start order."""
        with self._lock:
            return list(self._records)

    def by_kind(self, kind: str) -> List[SeriesRecord]:
        """The records of one series family."""
        return [r for r in self.records if r.kind == kind]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __repr__(self) -> str:
        return f"ConvergenceRecorder({len(self.records)} series)"
