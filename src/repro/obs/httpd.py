"""A zero-dependency ``/metrics`` endpoint over the metrics registry.

:func:`serve_metrics` starts a background
:class:`http.server.ThreadingHTTPServer` whose ``GET /metrics`` (and
``GET /``) render the given
:class:`~repro.obs.metrics.MetricsRegistry` as Prometheus text
exposition -- the registry is read live on every scrape, so a running
sweep's counters are visible mid-flight.  This is the first brick of
the ROADMAP's model-checking-as-a-service item: the CLI exposes it as
``repro check --metrics-port`` and libraries embed it directly::

    from repro.obs.httpd import serve_metrics

    with serve_metrics(port=0) as server:   # port 0 = ephemeral
        print(server.url)                   # http://127.0.0.1:NNNNN/metrics
        ...                                 # run checks; scrape away

Standard library only, like the rest of :mod:`repro.obs`; the server
thread is a daemon, so an unclosed server never blocks interpreter
exit.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional

from .metrics import MetricsRegistry

#: Prometheus text exposition content type.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """A running metrics endpoint; close it (or use as a context
    manager) to stop serving."""

    def __init__(self, registry: MetricsRegistry,
                 host: str = "127.0.0.1", port: int = 0):
        self.registry = registry

        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0] not in ("/", "/metrics"):
                    self.send_error(404, "only /metrics is served")
                    return
                body = server.registry.render_prometheus().encode(
                    "utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: Any) -> None:
                pass  # scrapes are not worth stderr noise

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host = self._httpd.server_address[0]
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-metrics-{self.port}", daemon=True)
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=2.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"MetricsServer({self.url!r})"


def serve_metrics(registry: Optional[MetricsRegistry] = None,
                  host: str = "127.0.0.1",
                  port: int = 0) -> MetricsServer:
    """Serve *registry* (default: the process-wide ``REGISTRY``) as
    Prometheus text on ``http://host:port/metrics``.

    ``port=0`` binds an ephemeral port; read it back from the returned
    server's ``port``/``url``.  The server runs on a daemon thread
    until :meth:`MetricsServer.close`.
    """
    if registry is None:
        from repro.obs import REGISTRY
        registry = REGISTRY
    return MetricsServer(registry, host=host, port=port)
