"""Pass registry and shared analysis context.

A *pass* is a function ``pass_fn(context) -> Iterable[Diagnostic]``
registered under a family (``model``, ``formula``, ``engine``,
``srn``).  Passes are pure inspections: they must not run any
joint-distribution engine or mutate the model.  :func:`run_passes`
executes the registered passes of the requested families over one
:class:`AnalysisContext` and collects the findings into an
:class:`~repro.analysis.diagnostics.AnalysisReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.ctmc.ctmc import CTMC
from repro.logic import ast

#: The pass families, in execution order.
FAMILIES: Tuple[str, ...] = ("model", "formula", "engine", "srn")

PassFn = Callable[["AnalysisContext"], Iterable[Diagnostic]]

_PASSES: Dict[str, List[PassFn]] = {family: [] for family in FAMILIES}


def register_pass(family: str) -> Callable[[PassFn], PassFn]:
    """Decorator registering a pass under *family*."""
    if family not in _PASSES:
        raise ValueError(
            f"unknown pass family {family!r}; expected one of "
            f"{', '.join(FAMILIES)}")

    def decorator(fn: PassFn) -> PassFn:
        _PASSES[family].append(fn)
        return fn

    return decorator


def registered_passes(family: str) -> Tuple[PassFn, ...]:
    """The passes registered under *family* (read-only view)."""
    return tuple(_PASSES[family])


@dataclass(frozen=True)
class QueryProfile:
    """Static shape of the numerical workload a formula implies.

    Derived from the bound annotations of the temporal operators: the
    engine-compatibility passes size their cost estimates from the
    largest finite time/reward bounds, and demote incompatibilities to
    warnings when no operator actually needs the joint distribution
    (``needs_joint`` false).
    """

    time_bound: Optional[float] = None
    reward_bound: Optional[float] = None
    needs_joint: bool = False

    @classmethod
    def from_formula(cls,
                     formula: Optional[ast.Formula]) -> "QueryProfile":
        """Scan the formula for time/reward-bounded temporal operators."""
        if formula is None:
            return cls()
        time_bound: Optional[float] = None
        reward_bound: Optional[float] = None
        needs_joint = False
        for node in formula.subformulas():
            if not isinstance(node, (ast.Until, ast.Eventually,
                                     ast.Globally, ast.Next)):
                continue
            t_finite = math.isfinite(node.time.upper)
            r_finite = math.isfinite(node.reward.upper)
            if t_finite:
                time_bound = max(time_bound or 0.0, float(node.time.upper))
            if r_finite:
                reward_bound = max(reward_bound or 0.0,
                                   float(node.reward.upper))
            if (t_finite and r_finite
                    and not isinstance(node, ast.Next)):
                needs_joint = True
        return cls(time_bound=time_bound, reward_bound=reward_bound,
                   needs_joint=needs_joint)


@dataclass
class AnalysisContext:
    """Everything the passes may inspect.

    Any component may be ``None``; passes needing an absent component
    simply emit nothing.  ``engines`` holds the joint-distribution
    engine(s) whose compatibility with the model/query should be
    judged.  ``model_path`` enables file-level passes (duplicate
    ``.tra`` entries survive only in the file -- they are summed on
    load).
    """

    model: Optional[CTMC] = None
    formula: Optional[ast.StateFormula] = None
    engines: Sequence = ()
    net: Optional[object] = None
    model_path: Optional[str] = None
    query: QueryProfile = field(default_factory=QueryProfile)
    #: Scratch space shared between passes of one run (e.g. the SRN
    #: reachability graph, explored once).
    scratch: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.formula is not None:
            self.query = QueryProfile.from_formula(self.formula)


def run_passes(context: AnalysisContext,
               families: Optional[Sequence[str]] = None) -> AnalysisReport:
    """Run the registered passes of *families* (default: all) over
    *context* and collect the findings."""
    # Importing the pass modules registers their passes; deferred to
    # avoid import cycles during package initialisation.
    from repro.analysis import (engine_passes, formula_passes,  # noqa: F401
                                model_passes, srn_passes)
    selected = FAMILIES if families is None else tuple(families)
    for family in selected:
        if family not in _PASSES:
            raise ValueError(
                f"unknown pass family {family!r}; expected one of "
                f"{', '.join(FAMILIES)}")
    findings: List[Diagnostic] = []
    for family in FAMILIES:
        if family not in selected:
            continue
        for pass_fn in _PASSES[family]:
            findings.extend(pass_fn(context))
    return AnalysisReport(findings)
