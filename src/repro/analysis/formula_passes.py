"""Formula passes: static diagnostics over a parsed CSRL formula.

Codes ``F001``--``F009``; see ``docs/DIAGNOSTICS.md``.  Passes that
relate the formula to a model (vacuous until, unknown propositions)
evaluate *propositional* subformulas only -- nested ``P``/``S``/``R``
operators would need the numerical engines, which static analysis by
definition never runs.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Iterator, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.passes import AnalysisContext, register_pass
from repro.logic import ast

_TEMPORAL = (ast.Until, ast.Eventually, ast.Globally)


def _propositional_sat(formula: ast.Formula,
                       model) -> Optional[FrozenSet[int]]:
    """Satisfaction set of a propositional formula, ``None`` when the
    formula contains probabilistic/steady-state/reward operators."""
    n = model.num_states
    if isinstance(formula, ast.TrueFormula):
        return frozenset(range(n))
    if isinstance(formula, ast.FalseFormula):
        return frozenset()
    if isinstance(formula, ast.Atomic):
        return frozenset(model.states_with(formula.name))
    if isinstance(formula, ast.Not):
        operand = _propositional_sat(formula.operand, model)
        return None if operand is None else frozenset(range(n)) - operand
    if isinstance(formula, (ast.And, ast.Or, ast.Implies)):
        left = _propositional_sat(formula.left, model)
        right = _propositional_sat(formula.right, model)
        if left is None or right is None:
            return None
        if isinstance(formula, ast.And):
            return left & right
        if isinstance(formula, ast.Or):
            return left | right
        return (frozenset(range(n)) - left) | right
    return None


def _temporal_nodes(formula: ast.Formula):
    for node in formula.subformulas():
        if isinstance(node, _TEMPORAL):
            yield node


@register_pass("formula")
def unsupported_bound_combinations(
        context: AnalysisContext) -> Iterator[Diagnostic]:
    """F001: bound combinations outside the decidable fragment.

    Mirrors the rejections of :mod:`repro.mc.until`: reward intervals
    must be downward closed, and a time interval not starting at 0
    cannot be combined with a reward bound (paper, Section 6).
    """
    if context.formula is None:
        return
    seen: Set[str] = set()
    for node in _temporal_nodes(context.formula):
        location = str(node)
        if location in seen:
            continue
        if node.reward.lower > 0.0:
            seen.add(location)
            yield Diagnostic(
                code="F001",
                severity=Severity.ERROR,
                message=(f"reward interval {node.reward} does not "
                         f"start at 0; no computational procedure is "
                         f"available for such bounds (paper, "
                         f"Section 6)"),
                location=location,
                hint="use a downward-closed reward bound [0, r]",
                source="formula")
        elif node.time.lower > 0.0 and not node.reward.is_trivial:
            seen.add(location)
            yield Diagnostic(
                code="F001",
                severity=Severity.ERROR,
                message=(f"time interval {node.time} does not start "
                         f"at 0 while a reward bound is present; the "
                         f"joint procedures need both intervals to "
                         f"start at 0 (paper, Section 6)"),
                location=location,
                hint=("drop the reward bound, or use a time interval "
                      "[0, t]"),
                source="formula")


@register_pass("formula")
def trivial_thresholds(context: AnalysisContext) -> Iterator[Diagnostic]:
    """F002/F003: probability thresholds no measure can miss or meet."""
    if context.formula is None:
        return
    seen: Set[Tuple[str, str]] = set()
    for node in context.formula.subformulas():
        if not isinstance(node, (ast.Prob, ast.SteadyState)):
            continue
        location = str(node)
        threshold = f"{node.comparison}{node.bound:g}"
        if (threshold, location) in seen:
            continue
        trivially_true = ((node.comparison == ">=" and node.bound == 0.0)
                          or (node.comparison == "<=" and node.bound == 1.0))
        trivially_false = ((node.comparison == "<" and node.bound == 0.0)
                           or (node.comparison == ">" and node.bound == 1.0))
        if trivially_true:
            seen.add((threshold, location))
            yield Diagnostic(
                code="F002",
                severity=Severity.WARNING,
                message=(f"threshold {threshold} is trivially true: "
                         f"every probability satisfies it, so the "
                         f"operator holds in every state regardless "
                         f"of the model"),
                location=location,
                hint=("use a strict comparison or a non-trivial "
                      "bound; to read off the probability itself, "
                      "use the probability vector of the result"),
                source="formula")
        elif trivially_false:
            seen.add((threshold, location))
            yield Diagnostic(
                code="F003",
                severity=Severity.WARNING,
                message=(f"threshold {threshold} is trivially false: "
                         f"no probability satisfies it, so the "
                         f"operator holds in no state regardless of "
                         f"the model"),
                location=location,
                hint="probabilities lie in [0, 1]; fix the comparison",
                source="formula")


@register_pass("formula")
def unknown_propositions(
        context: AnalysisContext) -> Iterator[Diagnostic]:
    """F005: atomic propositions absent from the model's labelling."""
    if context.formula is None or context.model is None:
        return
    known = set(context.model.atomic_propositions)
    unknown = sorted(context.formula.atomic_propositions() - known)
    for name in unknown:
        yield Diagnostic(
            code="F005",
            severity=Severity.WARNING,
            message=(f"atomic proposition '{name}' labels no state of "
                     f"the model; its satisfaction set is empty"),
            location=name,
            hint=(f"known propositions: "
                  f"{', '.join(sorted(known)) or '(none)'}; check the "
                  f".lab file or the builder's labels"),
            source="formula")


def _aps_known(formula: ast.Formula, model) -> bool:
    return formula.atomic_propositions() <= set(
        model.atomic_propositions)


@register_pass("formula")
def vacuous_until(context: AnalysisContext) -> Iterator[Diagnostic]:
    """F004/F006: degenerate until operands.

    F004 (goal unsatisfiable) is suppressed when an unknown
    proposition (F005) already explains the empty goal set.
    """
    if context.formula is None or context.model is None:
        return
    model = context.model
    n = model.num_states
    seen: Set[Tuple[str, str]] = set()
    for node in _temporal_nodes(context.formula):
        if isinstance(node, ast.Globally):
            continue
        goal = (node.operand if isinstance(node, ast.Eventually)
                else node.right)
        location = str(node)
        goal_sat = _propositional_sat(goal, model)
        if (goal_sat is not None and not goal_sat
                and _aps_known(goal, model)
                and ("F004", location) not in seen):
            seen.add(("F004", location))
            yield Diagnostic(
                code="F004",
                severity=Severity.WARNING,
                message=(f"the goal '{goal}' is unsatisfiable in this "
                         f"model: the until can never hold and its "
                         f"probability is identically 0"),
                location=location,
                hint=("label some state with the goal proposition(s) "
                      "or fix the formula"),
                source="formula")
        if isinstance(node, ast.Eventually):
            continue
        safe = node.left
        if isinstance(safe, ast.TrueFormula):
            continue  # 'true U ...' is just how eventually desugars
        safe_sat = _propositional_sat(safe, model)
        if (safe_sat is not None and len(safe_sat) == n
                and ("F006", location) not in seen):
            seen.add(("F006", location))
            yield Diagnostic(
                code="F006",
                severity=Severity.INFO,
                message=(f"the safe set '{safe}' covers the whole "
                         f"state space: the until is equivalent to an "
                         f"eventually (F) over the same bounds"),
                location=location,
                hint="write it as F for clarity (same result)",
                source="formula")


def _allowed_interval(comparison: str,
                      bound: float) -> Tuple[float, float, bool, bool]:
    """The set ``{p in [0,1] : p <comparison> bound}`` as
    ``(lo, hi, lo_open, hi_open)``."""
    if comparison == "<":
        return (0.0, bound, False, True)
    if comparison == "<=":
        return (0.0, bound, False, False)
    if comparison == ">":
        return (bound, 1.0, True, False)
    return (bound, 1.0, False, False)


def _intersection_empty(a: Tuple[float, float, bool, bool],
                        b: Tuple[float, float, bool, bool]) -> bool:
    lo = max(a[0], b[0])
    hi = min(a[1], b[1])
    if lo > hi:
        return True
    if lo < hi:
        return False
    lo_open = (a[2] if a[0] == lo else False) or (b[2] if b[0] == lo
                                                  else False)
    hi_open = (a[3] if a[1] == hi else False) or (b[3] if b[1] == hi
                                                  else False)
    return lo_open or hi_open


def _conjuncts(node: ast.StateFormula):
    if isinstance(node, ast.And):
        yield from _conjuncts(node.left)
        yield from _conjuncts(node.right)
    else:
        yield node


@register_pass("formula")
def conflicting_probability_bounds(
        context: AnalysisContext) -> Iterator[Diagnostic]:
    """F007: a conjunction bounds the same path formula contradictorily."""
    if context.formula is None:
        return
    nested_ands = set()
    for node in context.formula.subformulas():
        if isinstance(node, ast.And):
            for child in (node.left, node.right):
                if isinstance(child, ast.And):
                    nested_ands.add(id(child))
    seen: Set[str] = set()
    for node in context.formula.subformulas():
        if not isinstance(node, ast.And) or id(node) in nested_ands:
            continue
        by_path: dict = {}
        for conjunct in _conjuncts(node):
            if isinstance(conjunct, ast.Prob):
                by_path.setdefault(conjunct.path, []).append(conjunct)
        for path, probs in by_path.items():
            if len(probs) < 2:
                continue
            for i in range(len(probs)):
                for j in range(i + 1, len(probs)):
                    a, b = probs[i], probs[j]
                    if not _intersection_empty(
                            _allowed_interval(a.comparison, a.bound),
                            _allowed_interval(b.comparison, b.bound)):
                        continue
                    location = str(node)
                    key = (f"{a.comparison}{a.bound:g}/"
                           f"{b.comparison}{b.bound:g}/{location}")
                    if key in seen:
                        continue
                    seen.add(key)
                    yield Diagnostic(
                        code="F007",
                        severity=Severity.WARNING,
                        message=(f"conflicting probability bounds on "
                                 f"the same path formula: "
                                 f"P{a.comparison}{a.bound:g} and "
                                 f"P{b.comparison}{b.bound:g} of "
                                 f"[ {path} ] cannot both hold, so "
                                 f"the conjunction is unsatisfiable"),
                        location=location,
                        hint="fix one of the two thresholds",
                        source="formula")


@register_pass("formula")
def reward_bound_never_binds(
        context: AnalysisContext) -> Iterator[Diagnostic]:
    """F008: a reward bound at or above the maximum accumulable reward."""
    if context.formula is None or context.model is None:
        return
    model = context.model
    max_reward = getattr(model, "max_reward", None)
    if max_reward is None or getattr(model, "has_impulse_rewards", False):
        return
    seen: Set[str] = set()
    for node in _temporal_nodes(context.formula):
        t = node.time.upper
        r = node.reward.upper
        if node.reward.is_trivial or not (math.isfinite(t)
                                          and math.isfinite(r)):
            continue
        if r < max_reward * t:
            continue
        location = str(node)
        if location in seen:
            continue
        seen.add(location)
        yield Diagnostic(
            code="F008",
            severity=Severity.INFO,
            message=(f"the reward bound {r:g} can never bind: at most "
                     f"max_reward * t = {max_reward:g} * {t:g} = "
                     f"{max_reward * t:g} reward accumulates within "
                     f"the time bound, so the query degenerates to a "
                     f"time-bounded one"),
            location=location,
            hint=("drop the reward bound (same result, cheaper "
                  "procedure) or tighten it below max_reward * t"),
            source="formula")


@register_pass("formula")
def point_time_interval(
        context: AnalysisContext) -> Iterator[Diagnostic]:
    """F009: a time interval collapsed to the single instant 0."""
    if context.formula is None:
        return
    seen: Set[str] = set()
    for node in _temporal_nodes(context.formula):
        if not (node.time.is_point and node.time.upper == 0.0):
            continue
        location = str(node)
        if location in seen:
            continue
        seen.add(location)
        yield Diagnostic(
            code="F009",
            severity=Severity.INFO,
            message=("the time interval is [0, 0]: no transition can "
                     "fire at time 0, so the operator only holds "
                     "where its goal already holds"),
            location=location,
            hint="state the goal directly, or widen the time bound",
            source="formula")
