"""SRN passes: structural diagnostics over a stochastic reward net.

Codes ``S001``--``S004``; see ``docs/DIAGNOSTICS.md``.  The
unboundedness heuristic (S003) is purely structural; the dead-
transition and never-marked-place passes (S001/S002) explore the
tangible reachability graph once (bounded, shared between passes via
the context scratch space) -- state-space *generation* is a static
inspection here, it runs no numerical engine.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.passes import AnalysisContext, register_pass
from repro.errors import StateSpaceError

#: Cap on the tangible markings explored for S001/S002.
EXPLORATION_LIMIT = 50_000


def _reachability(context: AnalysisContext):
    """The net's tangible reachability graph, explored once per run;
    ``(graph, failure_reason)`` with exactly one of the two set."""
    key = "srn_reachability"
    if key not in context.scratch:
        from repro.srn.reachability import explore
        try:
            context.scratch[key] = (
                explore(context.net, max_states=EXPLORATION_LIMIT), None)
        except StateSpaceError as exc:
            context.scratch[key] = (None, str(exc))
    return context.scratch[key]


@register_pass("srn")
def exploration_failed(context: AnalysisContext) -> Iterator[Diagnostic]:
    """S004: the reachability analysis could not finish."""
    if context.net is None:
        return
    _, reason = _reachability(context)
    if reason is not None:
        yield Diagnostic(
            code="S004",
            severity=Severity.INFO,
            message=(f"state-space exploration aborted ({reason}); "
                     f"the dead-transition and never-marked-place "
                     f"analyses were skipped"),
            hint=("bound the net (see any S003 finding) or reduce "
                  "the initial marking"),
            source="srn")


@register_pass("srn")
def dead_transitions(context: AnalysisContext) -> Iterator[Diagnostic]:
    """S001: timed transitions that never fire.

    A transition absent from every record of the tangible reachability
    graph is dead: its rate, guard and arcs are inert modelling
    baggage (or, more likely, a modelling mistake).  Immediate
    transitions are resolved away inside vanishing markings and cannot
    be judged from the tangible graph, so they are not analysed here.
    """
    net = context.net
    if net is None:
        return
    graph, _ = _reachability(context)
    if graph is None:
        return
    fired = {name for (_, _, _, name, _) in graph.transitions}
    dead = [t.name for t in net.transitions
            if not t.is_immediate and t.name not in fired]
    if dead:
        shown = ", ".join(dead[:6])
        if len(dead) > 6:
            shown += f", ... ({len(dead) - 6} more)"
        yield Diagnostic(
            code="S001",
            severity=Severity.WARNING,
            message=(f"{len(dead)} timed transition(s) never fire in "
                     f"any reachable marking"),
            location=f"transitions {shown}",
            hint=("check the input arcs, inhibitor arcs and guards; "
                  "a dead transition usually means an arc points at "
                  "the wrong place"),
            source="srn")


@register_pass("srn")
def never_marked_places(context: AnalysisContext) -> Iterator[Diagnostic]:
    """S002: places that hold no token in any reachable marking."""
    net = context.net
    if net is None:
        return
    graph, _ = _reachability(context)
    if graph is None:
        return
    names = net.place_names
    marked = [False] * len(names)
    for marking in graph.markings:
        for position in range(len(names)):
            if marking[position] > 0:
                marked[position] = True
    empty = [names[p] for p in range(len(names)) if not marked[p]]
    if empty:
        shown = ", ".join(empty[:6])
        if len(empty) > 6:
            shown += f", ... ({len(empty) - 6} more)"
        yield Diagnostic(
            code="S002",
            severity=Severity.INFO,
            message=(f"{len(empty)} place(s) never hold a token in "
                     f"any reachable tangible marking"),
            location=f"places {shown}",
            hint=("the place (and every label/guard reading it) is "
                  "inert; remove it or fix the arcs feeding it"),
            source="srn")


def _net_change(transition) -> dict:
    delta: dict = {}
    for position, multiplicity in transition.inputs:
        delta[position] = delta.get(position, 0) - multiplicity
    for position, multiplicity in transition.outputs:
        delta[position] = delta.get(position, 0) + multiplicity
    return delta


@register_pass("srn")
def unbounded_place_heuristic(
        context: AnalysisContext) -> Iterator[Diagnostic]:
    """S003: a transition that stays enabled while producing tokens.

    Structural heuristic: a transition without guard or inhibitors
    whose firing removes no token from any place (every net change is
    ``>= 0``) but adds one somewhere stays enabled forever once
    enabled -- the marking grows without bound and state-space
    generation cannot terminate.
    """
    net = context.net
    if net is None:
        return
    suspects: List[Tuple[str, str]] = []
    for transition in net.transitions:
        if transition.guard is not None or transition.inhibitors:
            continue
        delta = _net_change(transition)
        if not delta:
            continue
        if all(change >= 0 for change in delta.values()) and any(
                change > 0 for change in delta.values()):
            grown = [net.place_names[p] for p, change in
                     sorted(delta.items()) if change > 0]
            suspects.append((transition.name, ", ".join(grown)))
    for name, places in suspects:
        yield Diagnostic(
            code="S003",
            severity=Severity.WARNING,
            message=(f"transition '{name}' consumes no tokens but "
                     f"produces into {places}: once enabled it stays "
                     f"enabled, so the net is structurally unbounded"),
            location=f"transition {name}",
            hint=("add an input or inhibitor arc (or a guard) to "
                  "bound the production"),
            source="srn")
