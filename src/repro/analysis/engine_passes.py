"""Engine-compatibility passes: can an engine handle this workload?

For every joint-distribution engine the pass family judges, *without
running it*, whether the engine can answer the query at all
(:data:`~repro.algorithms.base.EngineCapabilities` -- e.g. impulse
rewards vs. the occupation-time algorithm) and what it would cost
(pseudo-Erlang state-space explosion, discretisation grid memory).

Codes ``E001``--``E007``; see ``docs/DIAGNOSTICS.md``.  Hard
incompatibilities are ``ERROR`` when the query actually needs the
joint distribution (a time+reward-bounded until is present) and are
demoted to ``WARNING`` when it does not -- the engine would then never
be invoked on the incompatible path.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Union

from repro.algorithms.base import JointEngine, get_engine
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.passes import (AnalysisContext, QueryProfile,
                                   register_pass)
from repro.numerics.poisson import right_truncation_point

#: Expanded pseudo-Erlang state count beyond which E002 warns.
ERLANG_STATE_WARNING = 100_000

#: Estimated discretisation working-set bytes beyond which E003 warns.
DGRID_MEMORY_WARNING = 512 * 2**20

#: Distinct reward levels beyond which the Sericola series' per-level
#: cost is worth a warning (E007).
SERICOLA_LEVEL_WARNING = 32

EngineLike = Union[str, JointEngine]


def _as_engine(engine: EngineLike) -> JointEngine:
    return get_engine(engine) if isinstance(engine, str) else engine


def _gate(query: Optional[QueryProfile]) -> Severity:
    """ERROR when the query needs the joint distribution, else the
    incompatibility is latent and only worth a WARNING."""
    if query is not None and query.needs_joint:
        return Severity.ERROR
    return Severity.WARNING


def engine_compatibility(engine: EngineLike,
                         model,
                         query: Optional[QueryProfile] = None
                         ) -> List[Diagnostic]:
    """Static compatibility verdict of one engine for one workload.

    Returns the diagnostics the engine-compatibility pass would emit;
    an empty list (or one without ``ERROR`` entries, see
    :func:`supports`) means the engine can be invoked safely.
    """
    engine = _as_engine(engine)
    if query is None:
        query = QueryProfile()
    diagnostics: List[Diagnostic] = list(
        _capability_findings(engine, model, query))
    if engine.name == "sericola":
        diagnostics.extend(_sericola_findings(engine, model, query))
    if engine.name == "erlang":
        diagnostics.extend(_erlang_findings(engine, model, query))
    if engine.name == "discretization":
        diagnostics.extend(_discretization_findings(engine, model, query))
    return diagnostics


def supports(engine: EngineLike,
             model,
             query: Optional[QueryProfile] = None) -> bool:
    """Whether *engine* can statically be expected to handle the
    workload (no ``ERROR``-severity incompatibility)."""
    return not any(d.severity is Severity.ERROR
                   for d in engine_compatibility(engine, model, query))


def _capability_findings(engine: JointEngine, model,
                         query: QueryProfile) -> Iterator[Diagnostic]:
    capabilities = type(engine).capabilities()
    if capabilities.natural_rewards_only and not _natural_rewards(model):
        yield Diagnostic(
            code="E005",
            severity=_gate(query),
            message=(f"the {engine.name} engine needs natural-number "
                     f"reward rates and impulse rewards, but the "
                     f"model's are not integers"),
            location=f"engine {engine.name}",
            hint=("rescale with model.scaled_rewards(integer_reward_"
                  "scale(model.rewards)) and scale the reward bound "
                  "by the same factor"),
            source="engine")
    if (not capabilities.impulse_rewards
            and getattr(model, "has_impulse_rewards", False)):
        impulse_count = model.impulse_matrix.nnz
        yield Diagnostic(
            code="E001",
            severity=_gate(query),
            message=(f"the {engine.name} engine handles state-based "
                     f"rewards only (paper, Section 2.1), but the "
                     f"model carries {impulse_count} impulse "
                     f"reward(s)"),
            location=f"engine {engine.name}",
            hint=("use the discretisation or pseudo-Erlang engine "
                  "(--engine discretization|erlang), or drop the "
                  "impulse rewards"),
            source="engine")


def _sericola_findings(engine: JointEngine, model,
                       query: QueryProfile) -> Iterator[Diagnostic]:
    distinct = getattr(model, "distinct_rewards", None)
    if distinct is None:
        return
    levels = len(distinct())
    if levels > SERICOLA_LEVEL_WARNING:
        yield Diagnostic(
            code="E007",
            severity=Severity.WARNING,
            message=(f"the model has {levels} distinct reward levels; "
                     f"the occupation-time series propagates one "
                     f"column block per level, so memory and work "
                     f"scale with levels * truncation depth * |S|"),
            location=f"engine {engine.name}",
            hint=("round rewards to fewer distinct levels, or use "
                  "the discretisation engine whose cost depends on "
                  "the bound r rather than the level count"),
            source="engine")


def _erlang_findings(engine: JointEngine, model,
                     query: QueryProfile) -> Iterator[Diagnostic]:
    phases = getattr(engine, "phases", None)
    if phases is None:
        return
    n = model.num_states
    expanded = n * phases + 1
    if expanded < ERLANG_STATE_WARNING:
        return
    r = query.reward_bound
    t = query.time_bound
    detail = ""
    if r is not None and r > 0.0 and t is not None:
        max_reward = float(getattr(model, "max_reward", 0.0))
        expanded_rate = model.max_exit_rate + phases * max_reward / r
        depth = right_truncation_point(expanded_rate * t, 1e-12)
        detail = (f"; its uniformisation rate grows to "
                  f"~{expanded_rate:.3g} (phase rate k/r), a "
                  f"predicted truncation depth of ~{depth} terms")
    yield Diagnostic(
        code="E002",
        severity=Severity.WARNING,
        message=(f"the pseudo-Erlang expansion with k={phases} phases "
                 f"creates a chain of n*k+1 = {expanded} states"
                 f"{detail}"),
        location=f"engine {engine.name}",
        hint=("reduce the phase count (accuracy degrades as 1/k), or "
              "use the Sericola or discretisation engine"),
        source="engine")


def _natural_rewards(model, tolerance: float = 1e-12) -> bool:
    """Whether state rewards *and* impulse rewards are all integers."""
    has_integer = getattr(model, "has_integer_rewards", None)
    if has_integer is not None and not has_integer():
        return False
    if getattr(model, "has_impulse_rewards", False):
        impulses = model.impulse_matrix.data
        if impulses.size and not bool(
                (abs(impulses - impulses.round()) <= tolerance).all()):
            return False
    return True


def _discretization_findings(engine: JointEngine, model,
                             query: QueryProfile
                             ) -> Iterator[Diagnostic]:
    step = getattr(engine, "step", None)
    if step is None:
        return
    max_exit = model.max_exit_rate
    if max_exit * step > 1.0:
        yield Diagnostic(
            code="E004",
            severity=_gate(query),
            message=(f"discretisation step d={step:g} is too coarse: "
                     f"max_exit_rate * d = {max_exit:g} * {step:g} = "
                     f"{max_exit * step:.3g} > 1 breaks the "
                     f"first-order scheme's probability "
                     f"interpretation"),
            location=f"engine {engine.name}",
            hint=f"use a step of at most {1.0 / max_exit:.6g}",
            source="engine")
    t = query.time_bound
    if t is not None:
        steps = t / step
        if abs(steps - round(steps)) > 1e-9 * max(1.0, abs(steps)):
            yield Diagnostic(
                code="E006",
                severity=_gate(query),
                message=(f"the time bound {t:g} is not a multiple of "
                         f"the discretisation step d={step:g}; the "
                         f"scheme only evaluates the joint "
                         f"distribution on the d-grid"),
                location=f"engine {engine.name}",
                hint=(f"choose a step dividing the time bound (e.g. "
                      f"d={t:g}/{max(1, math.ceil(steps)):d}) or "
                      f"round the bound to the grid"),
                source="engine")
    r = query.reward_bound
    if r is not None:
        cells = r / step + 1.0
        estimated_bytes = 16.0 * model.num_states * cells
        if estimated_bytes > DGRID_MEMORY_WARNING:
            yield Diagnostic(
                code="E003",
                severity=Severity.WARNING,
                message=(f"the discretisation grid needs ~{cells:.3g} "
                         f"reward cells per state (r/d + 1), an "
                         f"estimated working set of "
                         f"~{estimated_bytes / 2**20:.0f} MiB for "
                         f"{model.num_states} states"),
                location=f"engine {engine.name}",
                hint=("increase the step d, lower the reward bound, "
                      "or use the Sericola/pseudo-Erlang engine"),
                source="engine")


@register_pass("engine")
def engine_compatibility_pass(
        context: AnalysisContext) -> Iterator[Diagnostic]:
    """E001--E007 for every engine under analysis."""
    if context.model is None:
        return
    for engine in context.engines:
        yield from engine_compatibility(engine, context.model,
                                        context.query)
