"""Model passes: structural diagnostics over a CTMC/MRM.

Codes ``M001``--``M009``; see ``docs/DIAGNOSTICS.md`` for the full
catalogue.  All passes are pure graph/vector inspections (M009 runs a
capped partition refinement) -- no transient analysis, no engine runs.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.passes import AnalysisContext, register_pass
from repro.ctmc import graph
from repro.numerics.poisson import right_truncation_point

#: Exit-rate spread beyond which the uniformisation series is
#: considered stiff (M005).
STIFFNESS_RATIO = 1e5

#: Uniformisation workload ``max_exit_rate * t`` beyond which the
#: predicted Fox--Glynn truncation depth is worth a warning (M008).
UNIFORMIZATION_WORKLOAD = 1e4


def _states(model, indices: Sequence[int], limit: int = 6) -> str:
    """Render a state list as named locations, truncated for brevity."""
    indices = [int(s) for s in indices]
    shown = ", ".join(model.name_of(s) for s in indices[:limit])
    extra = len(indices) - limit
    if extra > 0:
        shown += f", ... ({extra} more)"
    noun = "state" if len(indices) == 1 else "states"
    return f"{noun} {shown}"


@register_pass("model")
def unreachable_states(context: AnalysisContext) -> Iterator[Diagnostic]:
    """M001: states unreachable from the initial distribution."""
    model = context.model
    if model is None or model.num_states == 0:
        return
    support = np.flatnonzero(model.initial_distribution)
    reached = graph.reachable(model, (int(s) for s in support))
    unreachable = sorted(set(range(model.num_states)) - reached)
    if unreachable:
        yield Diagnostic(
            code="M001",
            severity=Severity.WARNING,
            message=(f"{len(unreachable)} of {model.num_states} states "
                     f"are unreachable from the initial distribution"),
            location=_states(model, unreachable),
            hint=("remove the unreachable states (e.g. with 'repro "
                  "lump') or fix the initial distribution; they "
                  "inflate every propagation without affecting any "
                  "result"),
            source="model")


@register_pass("model")
def absorbing_reward_divergence(
        context: AnalysisContext) -> Iterator[Diagnostic]:
    """M002: absorbing states with positive reward rate."""
    model = context.model
    rewards = getattr(model, "rewards", None)
    if model is None or rewards is None:
        return
    divergent = [s for s in range(model.num_states)
                 if model.is_absorbing(s) and rewards[s] > 0.0]
    if divergent:
        yield Diagnostic(
            code="M002",
            severity=Severity.WARNING,
            message=(f"{len(divergent)} absorbing state(s) carry a "
                     f"positive reward rate: accumulated reward "
                     f"diverges there, so any finite reward bound is "
                     f"eventually exceeded with probability one"),
            location=_states(model, divergent),
            hint=("set the reward of absorbing states to zero unless "
                  "the divergence is intended (Theorem 1 does exactly "
                  "this for the states it absorbs)"),
            source="model")


@register_pass("model")
def all_zero_rewards(context: AnalysisContext) -> Iterator[Diagnostic]:
    """M003: an all-zero reward structure."""
    model = context.model
    rewards = getattr(model, "rewards", None)
    if model is None or rewards is None or model.num_states == 0:
        return
    if (not np.any(np.asarray(rewards) > 0.0)
            and not getattr(model, "has_impulse_rewards", False)):
        yield Diagnostic(
            code="M003",
            severity=Severity.INFO,
            message=("every reward rate is zero (and there are no "
                     "impulse rewards): Y_t == 0, so any reward bound "
                     "[0, r] is trivially met and reward-bounded "
                     "operators degenerate to time-bounded ones"),
            hint=("drop the reward bounds, or supply a .rew file / "
                  "reward vector if rewards were intended"),
            source="model")


@register_pass("model")
def zero_reward_cycles(context: AnalysisContext) -> Iterator[Diagnostic]:
    """M004: cycles through zero-reward states.

    Time passes inside such a cycle without accumulating reward, which
    breaks the time/reward duality (it needs strictly positive
    rewards) and forces the zero-reward elimination step of the
    reward-bounded until procedure.
    """
    model = context.model
    rewards = getattr(model, "rewards", None)
    if model is None or rewards is None:
        return
    rho = np.asarray(rewards, dtype=float)
    if not np.any(rho > 0.0):
        return  # covered by M003; every cycle is zero-reward then
    zero = np.flatnonzero(rho == 0.0)
    if zero.size == 0:
        return
    sub = sp.csr_matrix(model.rate_matrix[zero][:, zero])
    if getattr(model, "has_impulse_rewards", False):
        # A transition carrying an impulse *does* accumulate reward,
        # so it cannot be part of a reward-free cycle.
        impulses = model.impulse_matrix[zero][:, zero]
        sub = sub - sub.multiply(impulses > 0)
        sub.eliminate_zeros()
    if sub.nnz == 0:
        return
    n_components, labels = csgraph.connected_components(
        sub, directed=True, connection="strong")
    sizes = np.bincount(labels, minlength=n_components)
    diag = sub.diagonal()
    cyclic: List[int] = []
    for component in range(n_components):
        members = np.flatnonzero(labels == component)
        if sizes[component] > 1 or np.any(diag[members] > 0.0):
            cyclic.extend(int(zero[m]) for m in members)
    if cyclic:
        yield Diagnostic(
            code="M004",
            severity=Severity.WARNING,
            message=(f"{len(cyclic)} zero-reward state(s) lie on a "
                     f"cycle: paths can let time pass without "
                     f"accumulating reward, which rules out the "
                     f"time/reward duality and costs an extra "
                     f"zero-reward elimination in reward-bounded "
                     f"until checking"),
            location=_states(model, sorted(cyclic)),
            hint=("give the cycle states a positive reward rate if "
                  "one was intended; otherwise expect the checker to "
                  "eliminate them behind the scenes"),
            source="model")


@register_pass("model")
def rate_stiffness(context: AnalysisContext) -> Iterator[Diagnostic]:
    """M005: stiff exit-rate spread."""
    model = context.model
    if model is None:
        return
    exit_rates = model.exit_rates
    positive = exit_rates[exit_rates > 0.0]
    if positive.size < 2:
        return
    fastest = float(positive.max())
    slowest = float(positive.min())
    ratio = fastest / slowest
    if ratio < STIFFNESS_RATIO:
        return
    t_ref = context.query.time_bound
    horizon = t_ref if t_ref is not None else 1.0 / slowest
    depth = right_truncation_point(fastest * horizon, 1e-9)
    yield Diagnostic(
        code="M005",
        severity=Severity.WARNING,
        message=(f"stiff model: exit rates span a factor "
                 f"{ratio:.1e} ({slowest:g} .. {fastest:g}); "
                 f"uniformisation at rate {fastest:g} over a horizon "
                 f"of {horizon:g} needs a Fox-Glynn truncation depth "
                 f"of ~{depth} terms"),
        hint=("consider lumping fast states ('repro lump'), steady-"
              "state detection, or the discretisation engine whose "
              "cost does not grow with the rate spread"),
        source="model")


@register_pass("model")
def uniformization_workload(
        context: AnalysisContext) -> Iterator[Diagnostic]:
    """M008: large ``max_exit_rate * t`` uniformisation workload."""
    model = context.model
    t = context.query.time_bound
    if model is None or t is None:
        return
    workload = model.max_exit_rate * float(t)
    if workload < UNIFORMIZATION_WORKLOAD:
        return
    depth = right_truncation_point(workload, 1e-9)
    yield Diagnostic(
        code="M008",
        severity=Severity.WARNING,
        message=(f"uniformisation workload max_exit_rate * t = "
                 f"{model.max_exit_rate:g} * {float(t):g} = "
                 f"{workload:.3g}: the transient series needs "
                 f"~{depth} Fox-Glynn terms per query"),
        hint=("lower the time bound, lump the model, or budget the "
              "run ('repro check --certify --budget')"),
        source="model")


@register_pass("model")
def self_loops(context: AnalysisContext) -> Iterator[Diagnostic]:
    """M006: self-loop transitions."""
    model = context.model
    if model is None or model.num_states == 0:
        return
    diagonal = model.rate_matrix.diagonal()
    loops = np.flatnonzero(diagonal > 0.0)
    if loops.size:
        yield Diagnostic(
            code="M006",
            severity=Severity.INFO,
            message=(f"{loops.size} state(s) have self-loop "
                     f"transitions; they do not change the process "
                     f"distribution but inflate exit rates (and hence "
                     f"the uniformisation rate), and may carry "
                     f"impulse rewards"),
            location=_states(model, [int(s) for s in loops]),
            hint=("drop reward-free self-loops; keep them only when "
                  "an impulse reward on the loop is intended"),
            source="model")


@register_pass("model")
def lumpable_model(context: AnalysisContext) -> Iterator[Diagnostic]:
    """M009: the model admits a non-trivial ordinary lumping.

    Runs the same capped partition refinement the checker's automatic
    pre-pass uses (:mod:`repro.mc.prepass`), but respecting *every*
    label, so the reported quotient is valid whatever formula is later
    checked.  Informational: the pre-pass exploits this automatically
    unless it was disabled.
    """
    from repro.ctmc.lumping import try_lump
    from repro.mc.prepass import LUMP_MAX_PASSES, LUMP_MAX_STATES
    model = context.model
    if model is None or model.num_states == 0:
        return
    if model.num_states > LUMP_MAX_STATES:
        return  # refinement at this size is the pre-pass's business
    if getattr(model, "has_impulse_rewards", False):
        return  # impulse rewards rule the quotient construction out
    lumping = try_lump(model,
                       respect_initial=False,
                       max_passes=LUMP_MAX_PASSES)
    if lumping is None:
        return
    ratio = model.num_states / lumping.num_blocks
    yield Diagnostic(
        code="M009",
        severity=Severity.INFO,
        message=(f"the model is ordinarily lumpable: {model.num_states} "
                 f"states collapse to {lumping.num_blocks} blocks "
                 f"({ratio:.1f}x) with identical checking results"),
        hint=("the checker's pre-pass (lump=\"auto\") applies this "
              "automatically on models of >= 512 states; pass "
              "lump=True to force it, or run 'repro lump' to "
              "materialise the quotient"),
        source="model")


def _tra_duplicates(path: str) -> List[Tuple[int, int, int]]:
    """``(source, target, count)`` of duplicated ``.tra`` entries
    (1-based indices, count > 1)."""
    counts: Dict[Tuple[int, int], int] = {}
    with open(path) as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith(("%", "#")):
                continue
            parts = line.split()
            if parts[0].upper() in ("STATES", "TRANSITIONS"):
                continue
            if len(parts) != 3:
                continue  # malformed lines are load_mrm's business
            key = (int(parts[0]), int(parts[1]))
            counts[key] = counts.get(key, 0) + 1
    return [(s, t, c) for (s, t), c in sorted(counts.items()) if c > 1]


@register_pass("model")
def duplicate_transitions(
        context: AnalysisContext) -> Iterator[Diagnostic]:
    """M007: duplicated entries in the ``.tra`` file.

    ``load_mrm`` silently *sums* duplicated ``(source, target)``
    entries, so the in-memory rate differs from every individual line
    -- almost always a copy-paste mistake in the file.
    """
    base = context.model_path
    if base is None:
        return
    tra = f"{base}.tra"
    if not os.path.exists(tra):
        return
    duplicates = _tra_duplicates(tra)
    if not duplicates:
        return
    shown = ", ".join(f"({s}, {t}) x{c}" for s, t, c in duplicates[:6])
    extra = len(duplicates) - 6
    if extra > 0:
        shown += f", ... ({extra} more)"
    yield Diagnostic(
        code="M007",
        severity=Severity.WARNING,
        message=(f"{len(duplicates)} transition(s) appear multiple "
                 f"times in {os.path.basename(tra)}; duplicated "
                 f"entries are summed on load, so the effective rate "
                 f"differs from every individual line"),
        location=f"transitions {shown} (1-based, as in the file)",
        hint="merge the duplicated lines into one entry per transition",
        source="model")
