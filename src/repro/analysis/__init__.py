"""Static analysis of models, formulas and engine compatibility.

"Analyse first, compute second": every failure the checker can hit at
run time -- the occupation-time engine rejecting impulse rewards,
divergent accumulated reward in absorbing states, stiff uniformisation
rates blowing up the Fox--Glynn truncation -- is detectable by pure
inspection before any propagation starts.  This package runs
pass families over a model, a parsed CSRL formula and the selected
joint-distribution engine(s) and reports structured
:class:`Diagnostic` findings with stable codes (catalogued in
``docs/DIAGNOSTICS.md``).

Entry points
------------
* :func:`lint` -- the full pipeline over any combination of model,
  formula, engine(s) and SRN; this is what ``repro lint`` and
  :meth:`~repro.mc.checker.ModelChecker.lint` call.
* :func:`lint_model` / :func:`lint_formula` / :func:`lint_srn` --
  single-family conveniences.
* :func:`~repro.analysis.engine_passes.engine_compatibility` /
  :func:`~repro.analysis.engine_passes.supports` -- the per-engine
  ``supports(model, query)`` verdict used by the
  :class:`~repro.mc.certified.CertifiedChecker` to skip statically
  incompatible engines and by the checker's pre-flight gate.

>>> from repro.ctmc import ModelBuilder
>>> from repro.analysis import lint
>>> builder = ModelBuilder()
>>> _ = builder.add_state("up", labels=("up",), reward=1.0)
>>> _ = builder.add_state("down", labels=("down",), reward=0.0)
>>> builder.add_transition("up", "down", 0.1)
>>> builder.add_transition("down", "up", 2.0)
>>> lint(model=builder.build(),
...      formula="P>=0.5 [ up U[0,2][0,1] down ]",
...      engine="sericola").clean
True
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.diagnostics import (AnalysisReport, Diagnostic,
                                        Severity)
from repro.analysis.engine_passes import engine_compatibility, supports
from repro.analysis.passes import (AnalysisContext, QueryProfile,
                                   register_pass, run_passes)
from repro.logic import ast

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "Diagnostic",
    "QueryProfile",
    "Severity",
    "engine_compatibility",
    "lint",
    "lint_formula",
    "lint_model",
    "lint_srn",
    "register_pass",
    "run_passes",
    "supports",
]


def _normalize_formula(formula) -> Optional[ast.StateFormula]:
    if formula is None or isinstance(formula, ast.StateFormula):
        return formula
    from repro.logic.parser import parse_formula
    return parse_formula(formula)


def _normalize_engines(engine) -> tuple:
    from repro.algorithms.base import JointEngine, get_engine
    if engine is None:
        return ()
    if isinstance(engine, (str, JointEngine)):
        engine = [engine]
    return tuple(get_engine(entry) if isinstance(entry, str) else entry
                 for entry in engine)


def lint(model=None,
         formula=None,
         engine=None,
         net=None,
         model_path: Optional[str] = None,
         families: Optional[Sequence[str]] = None) -> AnalysisReport:
    """Run the static-analysis passes and collect the findings.

    Parameters
    ----------
    model:
        A :class:`~repro.ctmc.ctmc.CTMC` /
        :class:`~repro.ctmc.mrm.MarkovRewardModel` (or ``None``).
    formula:
        A CSRL formula (string or AST node), or ``None``.
    engine:
        Engine name(s) or :class:`~repro.algorithms.base.JointEngine`
        instance(s) whose compatibility should be judged; a single
        value or a sequence.
    net:
        A :class:`~repro.srn.net.StochasticRewardNet` for the SRN
        passes, or ``None``.
    model_path:
        Base path of the model's ``.tra/.lab/.rew`` files, enabling
        file-level passes (duplicate ``.tra`` entries).
    families:
        Restrict to these pass families (default: all).
    """
    context = AnalysisContext(model=model,
                              formula=_normalize_formula(formula),
                              engines=_normalize_engines(engine),
                              net=net,
                              model_path=model_path)
    return run_passes(context, families=families)


def lint_model(model,
               model_path: Optional[str] = None) -> AnalysisReport:
    """Model passes only (M-codes)."""
    return lint(model=model, model_path=model_path,
                families=("model",))


def lint_formula(formula, model=None) -> AnalysisReport:
    """Formula passes only (F-codes); model-aware checks need *model*."""
    return lint(model=model, formula=formula, families=("formula",))


def lint_srn(net) -> AnalysisReport:
    """SRN passes only (S-codes)."""
    return lint(net=net, families=("srn",))
