"""Structured diagnostics emitted by the static-analysis passes.

A :class:`Diagnostic` is one finding: a stable code (``M001``,
``F003``, ``E002``, ...), a :class:`Severity`, a human-readable
message, the location of the offending state/transition/AST node and a
fix hint.  :class:`AnalysisReport` is an immutable, ordered collection
of diagnostics with text and JSON renderings and the exit-code policy
of the ``repro lint`` command.

Every code is catalogued with rationale and fix in
``docs/DIAGNOSTICS.md``; codes are stable across releases so scripts
and CI gates can match on them.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Severity(enum.IntEnum):
    """Severity of a diagnostic; ordered ``INFO < WARNING < ERROR``."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        """Lowercase name used in text and JSON output."""
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "Severity":
        """Parse a lowercase severity name (``"warning"`` etc.)."""
        try:
            return cls[label.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {label!r}; expected one of "
                f"{', '.join(s.label for s in cls)}") from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass.

    Attributes
    ----------
    code:
        Stable identifier: ``M...`` model passes, ``F...`` formula
        passes, ``E...`` engine-compatibility passes, ``S...`` SRN
        passes.
    severity:
        ``ERROR`` means the checker is guaranteed (or overwhelmingly
        likely) to fail or give a meaningless answer; ``WARNING`` flags
        probable mistakes or expensive configurations; ``INFO`` notes
        benign structure worth knowing about.
    message:
        Human-readable one-line description.
    location:
        The offending state(s), transition(s) or formula fragment,
        empty when the finding is model- or formula-global.
    hint:
        Actionable fix suggestion (may be empty).
    source:
        The pass family that produced the finding (``model``,
        ``formula``, ``engine``, ``srn``).
    """

    code: str
    severity: Severity
    message: str
    location: str = ""
    hint: str = ""
    source: str = ""

    def as_dict(self) -> Dict[str, str]:
        """JSON-ready representation."""
        return {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
            "location": self.location,
            "hint": self.hint,
            "source": self.source,
        }

    def render(self) -> str:
        """Multi-line text rendering (used by ``repro lint``)."""
        lines = [f"{self.severity.label}[{self.code}] {self.message}"]
        if self.location:
            lines.append(f"    at: {self.location}")
        if self.hint:
            lines.append(f"    hint: {self.hint}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return f"{self.severity.label}[{self.code}] {self.message}"


def _sort_key(diagnostic: Diagnostic) -> Tuple[int, str, str]:
    return (-int(diagnostic.severity), diagnostic.code,
            diagnostic.location)


class AnalysisReport:
    """An ordered, immutable collection of diagnostics.

    Diagnostics are sorted most severe first (ties by code, then
    location) so text output, JSON output and golden tests are
    deterministic regardless of pass execution order.
    """

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()):
        self._diagnostics: Tuple[Diagnostic, ...] = tuple(
            sorted(diagnostics, key=_sort_key))

    # -- collection protocol -------------------------------------------

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._diagnostics)

    def __len__(self) -> int:
        return len(self._diagnostics)

    def __getitem__(self, index: int) -> Diagnostic:
        return self._diagnostics[index]

    @property
    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        return self._diagnostics

    def merged(self, other: "AnalysisReport") -> "AnalysisReport":
        """A new report holding the diagnostics of both (de-duplicated
        on the full diagnostic content)."""
        seen = dict.fromkeys(self._diagnostics)
        seen.update(dict.fromkeys(other._diagnostics))
        return AnalysisReport(seen)

    # -- severity queries ----------------------------------------------

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self._diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> List[Diagnostic]:
        return self.by_severity(Severity.INFO)

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    @property
    def has_warnings(self) -> bool:
        return bool(self.warnings)

    @property
    def clean(self) -> bool:
        """True when no diagnostics at all were emitted."""
        return not self._diagnostics

    @property
    def max_severity(self) -> Optional[Severity]:
        """The worst severity present, or ``None`` for a clean report."""
        if not self._diagnostics:
            return None
        return max(d.severity for d in self._diagnostics)

    def codes(self) -> List[str]:
        """Sorted distinct codes present in the report."""
        return sorted({d.code for d in self._diagnostics})

    # -- rendering ------------------------------------------------------

    def summary(self) -> str:
        """One-line count summary, e.g. ``1 error, 2 warnings``."""
        parts = []
        for severity in (Severity.ERROR, Severity.WARNING, Severity.INFO):
            count = len(self.by_severity(severity))
            if count:
                plural = "" if count == 1 else "s"
                parts.append(f"{count} {severity.label}{plural}")
        return ", ".join(parts) if parts else "no diagnostics"

    def to_text(self, header: str = "") -> str:
        """Full text rendering: optional header, one block per
        diagnostic, count summary last."""
        lines: List[str] = []
        if header:
            lines.append(header)
        for diagnostic in self._diagnostics:
            lines.append(diagnostic.render())
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self, indent: int = 2) -> str:
        """Machine-readable rendering (stable key order)."""
        payload = {
            "diagnostics": [d.as_dict() for d in self._diagnostics],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
            },
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    # -- exit-code policy ----------------------------------------------

    def exit_code(self, fail_on: str = "error") -> int:
        """The ``repro lint`` exit code: 2 when errors are present,
        1 when warnings are present and *fail_on* is ``"warning"``,
        0 otherwise."""
        if fail_on not in ("warning", "error"):
            raise ValueError(
                f"fail_on must be 'warning' or 'error', got {fail_on!r}")
        if self.has_errors:
            return 2
        if fail_on == "warning" and self.has_warnings:
            return 1
        return 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.summary()})"
