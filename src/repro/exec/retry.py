"""Retry policies and circuit breakers for the process executor.

Two small, independently testable pieces of fault-tolerance policy:

* :class:`RetryPolicy` -- bounded retries with exponential backoff and
  *deterministic* jitter: the jitter for attempt ``a`` of task key
  ``k`` is a pure function of ``(seed, k, a)`` (a BLAKE2b hash mapped
  to ``[0, 1)``), so two runs of the same sweep space their retries
  identically and tests can assert exact delays.  Jitter affects only
  *when* a retry runs, never *what* it computes, so the bit-identical
  results contract is untouched.
* :class:`CircuitBreaker` -- a per-key (engine/backend) failure gate:
  after ``failure_threshold`` consecutive failures it *opens* and
  vetoes further work for ``cooldown`` seconds, then *half-opens* to
  let one probe through.  The process executor records worker
  failures per engine here, and the
  :class:`~repro.mc.certified.CertifiedChecker` consults the shared
  :data:`BREAKERS` registry before invoking an engine -- a repeatedly
  crashing engine/backend is skipped exactly like a statically vetoed
  one, feeding the existing fallback chain.

Breaker state transitions are counted in the always-on metrics
registry (``repro_breaker_open_total{key=...}``).
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.errors import NumericalError
from repro.obs import REGISTRY


def _unit_hash(*parts) -> float:
    """A deterministic uniform-ish sample in ``[0, 1)`` from *parts*."""
    digest = hashlib.blake2b(
        ":".join(str(part) for part in parts).encode("utf-8"),
        digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Attributes
    ----------
    max_retries:
        Retries *after* the first attempt; a task is given up on (and
        surfaces as a :class:`~repro.errors.WorkerError`) once it has
        failed ``max_retries + 1`` times.
    base_delay:
        Backoff before the first retry, in seconds; retry ``a`` waits
        ``base_delay * 2**(a-1)`` (capped at :attr:`max_delay`) plus
        jitter.
    max_delay:
        Upper bound on the un-jittered backoff.
    jitter:
        Fraction of the backoff added as deterministic jitter:
        the actual delay is ``backoff * (1 + jitter * u)`` with
        ``u = hash(seed, key, attempt) in [0, 1)``.
    seed:
        Jitter seed -- fixed so repeated runs schedule identically.
    """

    max_retries: int = 3
    base_delay: float = 0.05
    max_delay: float = 5.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.max_retries < 0:
            raise NumericalError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0.0 or self.max_delay < 0.0:
            raise NumericalError("backoff delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise NumericalError(
                f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, key, attempt: int) -> float:
        """Seconds to wait before retry *attempt* (1-based) of *key*."""
        if attempt <= 0:
            return 0.0
        backoff = min(self.base_delay * 2.0 ** (attempt - 1),
                      self.max_delay)
        return backoff * (1.0 + self.jitter
                          * _unit_hash(self.seed, key, attempt))

    def gives_up(self, failures: int) -> bool:
        """Whether a task that failed *failures* times is abandoned."""
        return failures > self.max_retries


class CircuitBreaker:
    """Consecutive-failure gate with open/half-open/closed states.

    All mutation is lock-protected; :meth:`allow` is the single entry
    point callers use before dispatching work.
    """

    def __init__(self, key: str, failure_threshold: int = 5,
                 cooldown: float = 30.0):
        if failure_threshold < 1:
            raise NumericalError(
                f"failure_threshold must be >= 1, got "
                f"{failure_threshold}")
        self.key = key
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._half_open_probe = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"``."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._opened_at is None:
            return "closed"
        if time.monotonic() - self._opened_at >= self.cooldown:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """Whether new work may be dispatched behind this breaker.

        Closed: always.  Open: never.  Half-open: exactly one probe is
        let through per cooldown window; its outcome (via
        :meth:`record_success` / :meth:`record_failure`) closes or
        re-opens the breaker.
        """
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "open":
                return False
            if self._half_open_probe:
                return False
            self._half_open_probe = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._opened_at = None
            self._half_open_probe = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            was_open = self._opened_at is not None
            if self._half_open_probe:
                # The probe failed: restart the cooldown window.
                self._opened_at = time.monotonic()
                self._half_open_probe = False
                return
            if (not was_open and self._consecutive_failures
                    >= self.failure_threshold):
                self._opened_at = time.monotonic()
                REGISTRY.counter("repro_breaker_open_total",
                                 key=self.key).inc()

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.key!r}, state={self.state}, "
                f"failures={self.consecutive_failures}/"
                f"{self.failure_threshold})")


class BreakerRegistry:
    """Process-wide map of circuit breakers, keyed by engine/backend.

    The process executor records per-engine worker failures here and
    the certified checker's fallback chain reads it -- one shared
    ledger, so a breaker opened by a crashing sweep also protects
    subsequent certified queries.
    """

    def __init__(self, failure_threshold: int = 5,
                 cooldown: float = 30.0):
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def breaker(self, key: str) -> CircuitBreaker:
        """The breaker for *key*, created closed on first use."""
        with self._lock:
            existing = self._breakers.get(key)
            if existing is None:
                existing = CircuitBreaker(
                    key, failure_threshold=self.failure_threshold,
                    cooldown=self.cooldown)
                self._breakers[key] = existing
            return existing

    def get(self, key: str) -> Optional[CircuitBreaker]:
        """The breaker for *key* if one exists (no creation)."""
        with self._lock:
            return self._breakers.get(key)

    def is_open(self, key: str) -> bool:
        """Whether dispatch behind *key* is currently vetoed."""
        breaker = self.get(key)
        return breaker is not None and not breaker.allow()

    def reset(self) -> None:
        """Drop every breaker (tests and long-running daemons)."""
        with self._lock:
            self._breakers.clear()

    def open_keys(self) -> "list[str]":
        """Keys whose breakers are not closed (open or half-open).

        The process executor's progress line and ``repro check -v``
        use this to show which engine/backend combinations are
        currently being vetoed.
        """
        return [breaker.key for breaker in self
                if breaker.state != "closed"]

    def __iter__(self) -> Iterator[CircuitBreaker]:
        with self._lock:
            return iter(list(self._breakers.values()))


#: The process-wide breaker registry shared by the process executor
#: (writer) and the certified checker's fallback chain (reader).
BREAKERS = BreakerRegistry()
