"""The worker-process side of the process shard executor.

One worker is one OS process running :func:`worker_main` over a duplex
pipe to the parent.  The protocol is deliberately tiny -- six message
types each way -- and **content-addressed**: the parent never ships a
model until the worker says it does not have it.

Parent -> worker::

    ("sweep", sweep_id, fingerprint, engine_spec,
              times, rewards, target)      start serving this sweep
    ("model", fingerprint, blob)           pickled model payload
    ("task", seq, linear, i, j, attempt)   evaluate one grid cell
    ("stop",)                              exit cleanly

Worker -> parent::

    ("ready", worker_id)                   alive, protocol begins
    ("need_model", fingerprint)            BLAKE2b handshake miss
    ("sweep_ok", sweep_id)                 sweep context installed
    ("heartbeat", monotonic_ts)            liveness (background thread)
    ("result", seq, data, checksum, stats) cell result, raw float64
                                           bytes + BLAKE2b checksum +
                                           engine-stats delta
    ("error", seq, type, message, tb)      the engine raised
    ("telemetry", worker_id, payload)      observability delta (obs
                                           runs only): piggybacked
                                           after each result/error
                                           and drained once more on a
                                           clean stop -- see
                                           :mod:`repro.obs.remote`

Design notes:

* **Fingerprint handshake** -- the worker caches models by content
  fingerprint across sweeps, so a long-lived worker pays the pickle
  cost once per distinct model, and a respawned worker re-requests
  automatically.  Engines are rebuilt from their
  :meth:`~repro.algorithms.base.JointEngine.spec` (accuracy knobs +
  kernel request), never pickled -- backends may hold unpicklable
  jitted state.
* **Heartbeats** -- a daemon thread beats every ``interval`` seconds
  whatever the compute thread is doing (the kernels release the GIL),
  so the parent can tell "still crunching" from "frozen".  The same
  thread watches the parent pid: if the parent dies -- including
  ``kill -9``, where no cleanup ever runs -- the worker notices its
  reparenting and exits immediately, so no orphan can outlive the
  parent.
* **Checksummed results** -- the result bytes are hashed *before* the
  send, so any corruption in transport (or injected by the fault
  harness after hashing) is detected by the parent and retried rather
  than silently merged into the grid.
* **Fault injection** -- when a :class:`~repro.exec.faultinject.\
FaultPlan` is active (explicit spec or the ``REPRO_FAULTS``
  environment variable), the worker consults it per ``(cell,
  attempt)`` right before computing; see :mod:`repro.exec.faultinject`
  for the kinds.
* **Flight recorder** -- every task-level event (start, injected
  fault, completion with its stats delta, engine error) is appended
  to an fsynced per-worker JSONL sidecar
  (:class:`~repro.obs.recorder.FlightRecorder`) *before* the risky
  step runs, so after a crash or hang kill the parent can read what
  this worker was doing when it died.
* **Telemetry** -- when the parent captured observability
  (``obs_enabled``), the worker enables its own :data:`repro.obs.OBS`
  from a clean slate and ships a picklable delta of registry state,
  spans and convergence records after each task and once more on a
  clean stop (:func:`repro.obs.remote.export_telemetry`); the parent
  merges and re-parents them.  Disabled, no telemetry message is ever
  sent -- the wire traffic is byte-identical to an unobserved run.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import signal
import threading
import time
import traceback
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.exec.faultinject import FaultPlan
from repro.obs import OBS, REGISTRY
from repro.obs.recorder import FlightRecorder
from repro.obs.remote import export_telemetry

#: Injected hangs sleep this long; the parent's heartbeat-staleness
#: kill always fires first.
HANG_SECONDS = 3600.0


def _checksum(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


class _Heartbeat(threading.Thread):
    """Beats on the pipe and watches the parent process.

    ``pause()`` silences the beat (the injected-hang fault uses it so
    the parent's staleness detector, not a timeout, finds the hang).
    The parent-death watch always runs: when ``os.getppid()`` changes,
    the parent is gone and the worker hard-exits -- this is what keeps
    ``kill -9`` of the parent from leaving orphans.
    """

    def __init__(self, conn, send_lock: threading.Lock,
                 interval: float):
        super().__init__(daemon=True)
        self.conn = conn
        self.send_lock = send_lock
        self.interval = interval
        self.parent = os.getppid()
        self._paused = threading.Event()
        self._stopped = threading.Event()

    def pause(self) -> None:
        self._paused.set()

    def stop(self) -> None:
        self._stopped.set()

    def run(self) -> None:
        while not self._stopped.wait(self.interval):
            if os.getppid() != self.parent:
                os._exit(2)
            if self._paused.is_set():
                continue
            try:
                with self.send_lock:
                    self.conn.send(("heartbeat", time.monotonic()))
            except (BrokenPipeError, OSError):
                os._exit(2)


class _SweepContext:
    """The installed sweep: model, rebuilt engine, grid axes, target."""

    def __init__(self, sweep_id: int, fingerprint: str,
                 engine_spec: Dict[str, Any], times, rewards, target):
        from repro.algorithms.base import get_engine
        self.sweep_id = sweep_id
        self.fingerprint = fingerprint
        self.times = list(times)
        self.rewards = list(rewards)
        self.target = list(target)
        options = dict(engine_spec.get("options", {}))
        self.engine = get_engine(engine_spec["engine"], **options)
        self.model = None  # installed once the payload arrives


def _apply_pre_fault(fault: Optional[str],
                     heartbeat: _Heartbeat) -> None:
    """Faults that fire before the engine runs."""
    if fault == "crash":
        os._exit(13)
    if fault == "oom":
        os.kill(os.getpid(), signal.SIGKILL)
    if fault == "hang":
        heartbeat.pause()
        time.sleep(HANG_SECONDS)
        os._exit(3)  # pragma: no cover - the parent kills us first


def _corrupt(data: bytes) -> bytes:
    """Flip one byte -- guaranteed to fail the checksum."""
    flipped = bytearray(data)
    flipped[0] ^= 0xFF
    return bytes(flipped)


def _send_telemetry(conn, send_lock: threading.Lock,
                    worker_id: int) -> None:
    """Ship (and reset) this worker's observability delta."""
    payload = export_telemetry(REGISTRY, OBS.tracer, OBS.convergence)
    try:
        with send_lock:
            conn.send(("telemetry", worker_id, payload))
    except (BrokenPipeError, OSError):
        pass  # parent is gone; the heartbeat watch will exit us


def _run_task(context: _SweepContext, message: Tuple,
              plan: FaultPlan, heartbeat: _Heartbeat,
              conn, send_lock: threading.Lock,
              recorder: Optional[FlightRecorder] = None,
              worker_id: int = 0,
              obs_enabled: bool = False) -> None:
    _, seq, linear, i, j, attempt = message
    fault = plan.fault_for(int(linear), int(attempt))
    started = time.monotonic()
    if recorder is not None:
        recorder.record("task_start", seq=int(seq),
                        cell=[int(i), int(j)],
                        t=context.times[i], r=context.rewards[j],
                        attempt=int(attempt))
        if fault is not None:
            recorder.record("fault", seq=int(seq), fault=fault)
    if plan.sleep > 0.0:
        time.sleep(plan.sleep)
    _apply_pre_fault(fault, heartbeat)
    engine = context.engine
    before = engine.stats.as_dict()
    try:
        vector = engine.joint_probability_vector(
            context.model, context.times[i], context.rewards[j],
            context.target)
    except BaseException as exc:  # noqa: BLE001 - shipped to parent
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        if recorder is not None:
            recorder.record("task_error", seq=int(seq),
                            error=type(exc).__name__,
                            message=str(exc))
        with send_lock:
            conn.send(("error", seq, type(exc).__name__, str(exc),
                       traceback.format_exc()))
        if obs_enabled:
            _send_telemetry(conn, send_lock, worker_id)
        return
    after = engine.stats.as_dict()
    delta = {key: after[key] - before[key] for key in after}
    if recorder is not None:
        recorder.record("task_done", seq=int(seq),
                        seconds=round(time.monotonic() - started, 6),
                        delta={key: value for key, value
                               in delta.items() if value})
    data = np.ascontiguousarray(vector, dtype="<f8").tobytes()
    checksum = _checksum(data)
    if fault == "corrupt":
        data = _corrupt(data)
    with send_lock:
        conn.send(("result", seq, data, checksum, delta))
    if obs_enabled:
        _send_telemetry(conn, send_lock, worker_id)


def worker_main(conn, worker_id: int, heartbeat_interval: float,
                fault_spec: Optional[str],
                obs_enabled: bool = False,
                recorder_path: Optional[str] = None) -> None:
    """Entry point of one worker process (see the module docstring)."""
    plan = (FaultPlan.parse(fault_spec) if fault_spec is not None
            else FaultPlan.from_env())
    if obs_enabled:
        # Start from a clean slate: under the fork start method this
        # process inherited the parent's registry and spans, which the
        # parent already owns -- shipping them back would double-count.
        REGISTRY.reset()
        OBS.reset()
        OBS.enable()
    else:
        OBS.disable()
    recorder = (FlightRecorder(recorder_path)
                if recorder_path else None)
    send_lock = threading.Lock()
    heartbeat = _Heartbeat(conn, send_lock, heartbeat_interval)
    heartbeat.start()
    models: Dict[str, Any] = {}
    context: Optional[_SweepContext] = None
    try:
        with send_lock:
            conn.send(("ready", worker_id))
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent is gone
            kind = message[0]
            if kind == "stop":
                if obs_enabled:
                    # Final drain: whatever accumulated since the last
                    # task (idle spans, stragglers) goes home before
                    # the pipe closes.
                    _send_telemetry(conn, send_lock, worker_id)
                break
            elif kind == "sweep":
                context = _SweepContext(*message[1:])
                model = models.get(context.fingerprint)
                if model is None:
                    with send_lock:
                        conn.send(("need_model", context.fingerprint))
                else:
                    context.model = model
                    with send_lock:
                        conn.send(("sweep_ok", context.sweep_id))
            elif kind == "model":
                _, fingerprint, blob = message
                models[fingerprint] = pickle.loads(blob)
                if (context is not None
                        and context.fingerprint == fingerprint):
                    context.model = models[fingerprint]
                    with send_lock:
                        conn.send(("sweep_ok", context.sweep_id))
            elif kind == "task":
                if context is None or context.model is None:
                    with send_lock:
                        conn.send(("error", message[1], "ProtocolError",
                                   "task before sweep context", ""))
                    continue
                _run_task(context, message, plan, heartbeat, conn,
                          send_lock, recorder=recorder,
                          worker_id=worker_id,
                          obs_enabled=obs_enabled)
            # Unknown kinds are ignored: forward protocol compatibility.
    finally:
        heartbeat.stop()
        if recorder is not None:
            recorder.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
