"""Deterministic fault injection for the process executor's workers.

The chaos test suite (and the CI chaos leg) needs workers that fail on
purpose -- crash, hang, return corrupted bytes, get OOM-killed -- at
*chosen, reproducible* points, so a faulty run can be compared
bit-for-bit against a fault-free one.  This module is that harness:

* A :class:`FaultPlan` decides, purely as a function of ``(seed, cell
  index, attempt)``, whether a fault fires and which kind.  Nothing is
  random at run time; two runs of the same plan inject identically.
* Faults fire on early *attempts* only (``attempts=1`` by default:
  first attempt faults, the retry succeeds), so a chaos run always
  converges to the fault-free grid -- the executor's retry machinery,
  not luck, is what completes the sweep.
* Plans are parsed from a spec string, supplied either programmatically
  (``ProcessShardExecutor(faults=...)``) or through the
  ``REPRO_FAULTS`` environment variable, which worker processes read
  at startup -- so the CI leg can chaos-test any workload without code
  changes.

Spec grammar (``;``-separated clauses)::

    rate=0.2              fraction of cells faulted (hash-selected)
    kinds=crash,hang      fault kinds to rotate through (default all)
    seed=42               selection hash seed (default 0)
    attempts=1            fault while attempt < this (default 1)
    crash@3,7             explicit linear cell indices per kind
    hang@5                (override/augment the rate-based selection)
    corrupt@0 oom@2       ...
    sleep=0.25            throttle: sleep this long before every cell
                          (not a fault; slows cells down so tests can
                          interrupt mid-sweep deterministically)

Fault kinds (applied inside the worker, see
:mod:`repro.exec.worker`):

``crash``
    ``os._exit(13)`` -- the process dies without cleanup.
``oom``
    ``SIGKILL`` to itself -- simulates the kernel OOM killer.
``hang``
    stops heartbeating and sleeps forever -- exercises the executor's
    heartbeat staleness detection and kill-and-respawn path.
``corrupt``
    flips a byte of the result payload *after* the checksum was
    computed -- simulates transport corruption; the parent detects the
    checksum mismatch and retries.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.errors import NumericalError

#: Environment variable worker processes read their plan from.
FAULTS_ENV = "REPRO_FAULTS"

KINDS: Tuple[str, ...] = ("crash", "hang", "corrupt", "oom")


def _unit_hash(*parts) -> float:
    digest = hashlib.blake2b(
        ":".join(str(part) for part in parts).encode("utf-8"),
        digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected worker faults.

    ``fault_for(cell, attempt)`` is the single decision point: it
    returns the fault kind to inject for that attempt of that cell, or
    ``None``.  Explicit per-kind cell sets win over the rate-based
    selection.
    """

    rate: float = 0.0
    kinds: Tuple[str, ...] = KINDS
    seed: int = 0
    attempts: int = 1
    sleep: float = 0.0
    explicit: Dict[str, FrozenSet[int]] = field(default_factory=dict)

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise NumericalError(
                f"fault rate must be in [0, 1], got {self.rate}")
        for kind in self.kinds:
            if kind not in KINDS:
                raise NumericalError(
                    f"unknown fault kind {kind!r}; known: "
                    f"{', '.join(KINDS)}")
        for kind in self.explicit:
            if kind not in KINDS:
                raise NumericalError(
                    f"unknown fault kind {kind!r}; known: "
                    f"{', '.join(KINDS)}")

    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, spec: Optional[str]) -> "FaultPlan":
        """A plan from the spec grammar (``None``/empty = no faults)."""
        if not spec or not spec.strip():
            return cls()
        rate, seed, attempts, sleep = 0.0, 0, 1, 0.0
        kinds: Tuple[str, ...] = KINDS
        explicit: Dict[str, FrozenSet[int]] = {}
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if "@" in clause:
                kind, _, cells = clause.partition("@")
                kind = kind.strip()
                try:
                    indices = frozenset(
                        int(piece) for piece in cells.split(",")
                        if piece.strip())
                except ValueError:
                    raise NumericalError(
                        f"bad fault clause {clause!r}: cell indices "
                        f"must be integers") from None
                explicit[kind] = explicit.get(kind,
                                              frozenset()) | indices
                continue
            key, sep, value = clause.partition("=")
            if not sep:
                raise NumericalError(
                    f"bad fault clause {clause!r}: expected key=value "
                    f"or kind@cells")
            key, value = key.strip(), value.strip()
            try:
                if key == "rate":
                    rate = float(value)
                elif key == "seed":
                    seed = int(value)
                elif key == "attempts":
                    attempts = int(value)
                elif key == "sleep":
                    sleep = float(value)
                elif key == "kinds":
                    kinds = tuple(k.strip()
                                  for k in value.replace("|", ",")
                                  .split(",") if k.strip())
                else:
                    raise NumericalError(
                        f"unknown fault knob {key!r}")
            except ValueError:
                raise NumericalError(
                    f"bad fault clause {clause!r}: cannot parse "
                    f"{value!r}") from None
        return cls(rate=rate, kinds=kinds, seed=seed,
                   attempts=attempts, sleep=sleep, explicit=explicit)

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan":
        """The plan named by ``REPRO_FAULTS`` (empty plan when unset)."""
        environ = os.environ if environ is None else environ
        return cls.parse(environ.get(FAULTS_ENV))

    # ------------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether this plan can inject anything at all."""
        return (self.rate > 0.0 or bool(self.explicit)
                or self.sleep > 0.0)

    def fault_for(self, cell: int, attempt: int) -> Optional[str]:
        """The fault kind to inject for *attempt* of linear *cell*.

        Explicit ``kind@cell`` clauses always fire (on eligible
        attempts); otherwise the rate-based hash selection applies.
        """
        if attempt >= self.attempts:
            return None
        for kind, cells in self.explicit.items():
            if cell in cells:
                return kind
        if self.rate <= 0.0 or not self.kinds:
            return None
        if _unit_hash(self.seed, "select", cell) >= self.rate:
            return None
        pick = _unit_hash(self.seed, "kind", cell)
        return self.kinds[int(pick * len(self.kinds)) % len(self.kinds)]

    def faulted_cells(self, num_cells: int) -> Dict[int, str]:
        """The full schedule for first attempts over *num_cells* cells
        (what the chaos tests assert the injection rate with)."""
        schedule = {}
        for cell in range(num_cells):
            kind = self.fault_for(cell, 0)
            if kind is not None:
                schedule[cell] = kind
        return schedule

    def __repr__(self) -> str:
        parts = []
        if self.rate:
            parts.append(f"rate={self.rate}")
            parts.append(f"kinds={','.join(self.kinds)}")
            parts.append(f"seed={self.seed}")
        for kind, cells in sorted(self.explicit.items()):
            parts.append(
                f"{kind}@{','.join(str(c) for c in sorted(cells))}")
        if self.sleep:
            parts.append(f"sleep={self.sleep}")
        if self.attempts != 1:
            parts.append(f"attempts={self.attempts}")
        return f"FaultPlan({'; '.join(parts) or 'inactive'})"
