"""Fault-tolerant sweep execution across worker processes.

The package behind ``executor="process"``: crash-isolated worker
processes with heartbeat hang detection (:mod:`repro.exec.worker`,
:mod:`repro.exec.executor`), bounded retries and per-engine circuit
breakers (:mod:`repro.exec.retry`), durable JSONL sweep checkpoints
(:mod:`repro.exec.checkpoint`), and a deterministic fault-injection
harness for chaos testing (:mod:`repro.exec.faultinject`).

See ``docs/EXECUTION.md`` for the execution model and guarantees.
"""

from repro.exec.checkpoint import SweepCheckpoint, sweep_header
from repro.exec.executor import (EXECUTOR_NAMES, ProcessShardExecutor,
                                 ThreadShardExecutor, breaker_key,
                                 resolve_executor)
from repro.exec.faultinject import FAULTS_ENV, FaultPlan
from repro.exec.retry import (BREAKERS, BreakerRegistry,
                              CircuitBreaker, RetryPolicy)

__all__ = [
    "BREAKERS",
    "BreakerRegistry",
    "CircuitBreaker",
    "EXECUTOR_NAMES",
    "FAULTS_ENV",
    "FaultPlan",
    "ProcessShardExecutor",
    "RetryPolicy",
    "SweepCheckpoint",
    "ThreadShardExecutor",
    "breaker_key",
    "resolve_executor",
    "sweep_header",
]
